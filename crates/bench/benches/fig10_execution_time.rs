//! Criterion bench regenerating Fig. 10 (execution time vs electronic
//! accelerators).

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, Criterion};
use lightator_bench::fig10;

fn bench_fig10(c: &mut Criterion) {
    let data = fig10::generate().expect("fig10 harness must succeed");
    println!("{}", fig10::render(&data));

    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("execution_time_comparison", |b| {
        b.iter(|| fig10::generate().expect("fig10 harness must succeed"));
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
