//! The electronic reference backend: digital fp32 execution of compiled
//! plans, charged at an [`ElectronicBaseline`]'s latency/power model.
//!
//! [`ElectronicReference`] makes the Fig. 10 electronic designs (and the
//! GPU baseline) *executable* targets of the platform: it lowers the same
//! [`CompiledPlan`] a photonic session uses, but runs the lowered model
//! digitally in fp32 — no weight quantization to MR transmissions, no
//! analog noise — while every [`Backend::performance`] report carries the
//! electronic design's execution time and board power. This turns
//! photonic-vs-electronic agreement into a differential property (the
//! `backend_differential` test in `lightator-core`) instead of a
//! hand-checked table.
//!
//! The frame counter is maintained exactly like the photonic executor's —
//! one index per `forward`, one per batch element, one per frame batch —
//! so seek/replay semantics are identical across backends even though the
//! digital path draws no noise.

use lightator_core::backend::{Backend, BackendId, LoweredPlan};
use lightator_core::plan::CompiledPlan;
use lightator_core::platform::{PlatformConfig, Workload};
use lightator_core::sim::SimulationReport;
use lightator_core::{CoreError, Result};
use lightator_nn::spec::NetworkSpec;
use lightator_nn::tensor::Tensor;
use lightator_photonics::units::Energy;

use crate::electronic::ElectronicBaseline;

/// Lowercases a design name into the id segment after the family prefix
/// (`"RTX 3060 Ti"` → `"rtx-3060-ti"`).
pub(crate) fn slug(name: &str) -> String {
    name.to_lowercase().replace(' ', "-")
}

/// An [`ElectronicBaseline`] as an executable [`Backend`].
///
/// Executes workloads digitally in fp32 through the shared
/// [`CompiledPlan`] lowering while charging the electronic design's
/// analytical latency/power model. Its [`BackendId`] is
/// `electronic:<design>` (`electronic:eyeriss`, `electronic:rtx-3060-ti`).
#[derive(Debug, Clone)]
pub struct ElectronicReference {
    baseline: ElectronicBaseline,
    id: BackendId,
}

impl ElectronicReference {
    /// Wraps an electronic baseline as a backend.
    #[must_use]
    pub fn new(baseline: ElectronicBaseline) -> Self {
        let id = BackendId::new(format!("electronic:{}", slug(baseline.name())));
        Self { baseline, id }
    }

    /// The underlying analytical model.
    #[must_use]
    pub fn baseline(&self) -> &ElectronicBaseline {
        &self.baseline
    }
}

impl Backend for ElectronicReference {
    fn id(&self) -> BackendId {
        self.id.clone()
    }

    fn name(&self) -> String {
        format!("{} (electronic fp32 reference)", self.baseline.name())
    }

    fn precision(&self, _config: &PlatformConfig) -> String {
        "[32:32]".to_string()
    }

    fn lower(
        &self,
        workload: &Workload,
        config: &PlatformConfig,
        seed: u64,
    ) -> Result<Box<dyn LoweredPlan>> {
        let plan = CompiledPlan::compile(workload, config, seed)?;
        Ok(Box::new(ElectronicLowered {
            plan,
            next_frame: 0,
            plan_reuse: true,
        }))
    }

    fn performance(
        &self,
        network: &NetworkSpec,
        _config: &PlatformConfig,
    ) -> Result<SimulationReport> {
        let frame_latency = self.baseline.execution_time(network);
        let power = self.baseline.power();
        let frame_energy = Energy::from_pj(power.watts() * frame_latency.seconds() * 1e12);
        Ok(SimulationReport {
            network: network.name().to_string(),
            precision: "[32:32]".to_string(),
            layers: Vec::new(),
            frame_latency,
            max_power: power,
            average_power: power,
            frame_energy,
        })
    }
}

/// A workload lowered onto the electronic reference: the shared
/// [`CompiledPlan`] executed digitally in fp32.
///
/// The pre-encoded MR weight bank in the plan is carried but unused — the
/// digital path runs the lowered model's fp32 weights directly. Cache-hit
/// accounting mirrors the photonic executor so [`PlanStats`] reads the
/// same on every backend.
///
/// [`PlanStats`]: lightator_core::plan::PlanStats
#[derive(Debug, Clone)]
pub struct ElectronicLowered {
    plan: CompiledPlan,
    next_frame: u64,
    plan_reuse: bool,
}

impl ElectronicLowered {
    fn model_forward(plan: &mut CompiledPlan, input: &Tensor) -> Result<Tensor> {
        let model = plan.model_mut().ok_or_else(|| CoreError::ModelMismatch {
            reason: "this plan carries no lowered model to execute".to_string(),
        })?;
        Ok(model.forward(input)?)
    }
}

impl LoweredPlan for ElectronicLowered {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.next_frame += 1;
        if self.plan_reuse {
            self.plan.record_hits(1);
        }
        Self::model_forward(&mut self.plan, input)
    }

    fn forward_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.next_frame += inputs.len() as u64;
        if self.plan_reuse {
            self.plan.record_hits(inputs.len() as u64);
        }
        inputs
            .iter()
            .map(|input| Self::model_forward(&mut self.plan, input))
            .collect()
    }

    fn forward_frame_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.next_frame += 1;
        if self.plan_reuse {
            self.plan.record_hits(1);
        }
        inputs
            .iter()
            .map(|input| Self::model_forward(&mut self.plan, input))
            .collect()
    }

    fn next_frame_index(&self) -> u64 {
        self.next_frame
    }

    fn set_next_frame_index(&mut self, index: u64) {
        self.next_frame = index;
    }

    fn plan(&self) -> &CompiledPlan {
        &self.plan
    }

    fn plan_mut(&mut self) -> &mut CompiledPlan {
        &mut self.plan
    }

    fn plan_reuse(&self) -> bool {
        self.plan_reuse
    }

    fn set_plan_reuse(&mut self, enabled: bool) {
        self.plan_reuse = enabled;
    }

    fn clone_box(&self) -> Box<dyn LoweredPlan> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_core::platform::{ImageKernel, Platform};

    #[test]
    fn ids_slug_the_design_name() {
        let gpu = ElectronicReference::new(ElectronicBaseline::gpu_rtx3060ti());
        assert_eq!(gpu.id().as_str(), "electronic:rtx-3060-ti");
        let eyeriss = ElectronicReference::new(ElectronicBaseline::eyeriss());
        assert_eq!(eyeriss.id().as_str(), "electronic:eyeriss");
        assert_eq!(
            eyeriss.precision(Platform::paper().unwrap().config()),
            "[32:32]"
        );
    }

    #[test]
    fn performance_charges_the_electronic_model() {
        let backend = ElectronicReference::new(ElectronicBaseline::eyeriss());
        let platform = Platform::paper().expect("platform");
        let net = NetworkSpec::lenet();
        let report = backend
            .performance(&net, platform.config())
            .expect("report");
        let expected = ElectronicBaseline::eyeriss().execution_time(&net);
        assert_eq!(report.frame_latency.seconds(), expected.seconds());
        assert_eq!(report.max_power.watts(), 0.278);
        assert_eq!(report.precision, "[32:32]");
        let joules = report.frame_energy.joules();
        assert!((joules - 0.278 * expected.seconds()).abs() < 1e-12);
    }

    #[test]
    fn lowered_plans_execute_digitally_and_count_frames() {
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform");
        let backend = ElectronicReference::new(ElectronicBaseline::envision());
        let workload = Workload::ImageKernel {
            kernel: ImageKernel::Sharpen,
        };
        let mut lowered = backend
            .lower(&workload, platform.config(), 7)
            .expect("lowered");
        let shape = lowered
            .plan()
            .model()
            .expect("model")
            .input_shape()
            .to_vec();
        let n: usize = shape.iter().product();
        let input = Tensor::from_vec((0..n).map(|i| i as f32 / n as f32).collect(), &shape)
            .expect("tensor");
        let out = lowered.forward(&input).expect("forward");
        assert_eq!(lowered.next_frame_index(), 1);
        assert_eq!(lowered.plan().stats().cache_hits, 1);
        assert_eq!(lowered.plan().stats().encodes, 1);

        // The digital path is exactly the lowered model's fp32 forward.
        let mut reference = lowered.plan().model().expect("model").clone();
        let expected = reference.forward(&input).expect("digital");
        assert_eq!(out.data(), expected.data());

        // Batch and frame-batch advance the counter like the photonic
        // executor: one index per element vs one per frame.
        lowered
            .forward_batch(&[input.clone(), input.clone()])
            .expect("batch");
        assert_eq!(lowered.next_frame_index(), 3);
        lowered
            .forward_frame_batch(&[input.clone(), input])
            .expect("frame batch");
        assert_eq!(lowered.next_frame_index(), 4);
    }
}
