//! Exporter round trip: the Chrome trace-event JSON produced by
//! `lightator_telemetry::export` parses under the workspace's own JSON
//! validator (`lightator_bench::emit::validate`) — the same recursive-
//! descent scanner CI runs over every `BENCH_*.json` artifact — and the
//! event names survive the trip. The trace comes from a real traced
//! session, so the test covers every event shape the executor emits
//! (spans with durations and energies, markers, string args).

use lightator_suite::bench::emit;
use lightator_suite::core::ca::CaConfig;
use lightator_suite::sensor::frame::RgbFrame;
use lightator_suite::telemetry::{export, TraceEvent, TraceRecorder};
use lightator_suite::{ImageKernel, Platform, Workload};
use std::sync::Arc;

/// A traced Sobel session's export validates and keeps its event names.
#[test]
fn chrome_trace_round_trips_through_the_json_validator() {
    let platform = Platform::builder()
        .sensor_resolution(8, 8)
        .compressive_acquisition(CaConfig::default())
        .build()
        .expect("platform");
    let mut session = platform
        .session(Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        })
        .expect("session");
    let recorder = Arc::new(TraceRecorder::new());
    session.attach_recorder(recorder.clone());
    let frame = RgbFrame::filled(8, 8, [0.4, 0.3, 0.2]).expect("frame");
    for _ in 0..3 {
        session.run(&frame).expect("run");
    }

    let events = recorder.events();
    assert!(!events.is_empty(), "the session must emit events");
    let json = export::chrome_trace(&events);

    // The validator collects every string under a "name" key — for a
    // Chrome trace that is exactly the per-event names.
    let names = emit::validate(&json).expect("exported trace is valid JSON");
    for stage in ["kernel:sobel-x", "weight_encode", "mac_rows", "readout"] {
        assert!(
            names.iter().any(|name| name == stage),
            "exported names {names:?} must include {stage:?}"
        );
    }
}

/// Synthetic events with every kind (span, marker, counter) and
/// display-escaped args survive export as valid JSON.
#[test]
fn every_event_kind_exports_as_valid_json() {
    let events = [
        TraceEvent::span("stage", "mac_rows", "session:demo", 10.0, 250.0, 1234.5)
            .with_arg("rows", 16)
            .with_arg("note", "quotes \" and backslash \\ escape"),
        TraceEvent::instant("request", "admit", "router", 42.0).with_arg("ticket", 7),
        TraceEvent::counter("cache", "plan_hits", "session:demo", 99.0, 3.0),
    ];
    let json = export::chrome_trace(&events);
    let names = emit::validate(&json).expect("exported events are valid JSON");
    for name in ["mac_rows", "admit", "plan_hits"] {
        assert!(names.iter().any(|n| n == name));
    }
}
