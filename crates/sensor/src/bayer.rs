//! Bayer colour-filter-array model.
//!
//! The Lightator imager is an RGB sensor with the classic Bayer mosaic
//! (paper Fig. 2): each physical pixel sees only one colour, arranged in
//! 2×2 tiles of `R G / G B`. The compressive acquisitor consumes the mosaic
//! directly — its RGB-to-grayscale weights are applied per photosite — so
//! the sensor model must expose both the mosaic layout and the per-site
//! colour assignment.

use crate::error::{Result, SensorError};
use crate::frame::{Channel, GrayFrame, RgbFrame};
use serde::{Deserialize, Serialize};

/// The 2×2 Bayer tile layouts supported by the sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BayerPattern {
    /// `R G` over `G B` — the layout drawn in the paper's Fig. 2.
    #[default]
    Rggb,
    /// `B G` over `G R`.
    Bggr,
    /// `G R` over `B G`.
    Grbg,
    /// `G B` over `R G`.
    Gbrg,
}

impl BayerPattern {
    /// Colour seen by the photosite at `(row, col)`.
    #[must_use]
    pub fn channel_at(self, row: usize, col: usize) -> Channel {
        let (r, c) = (row % 2, col % 2);
        match self {
            BayerPattern::Rggb => match (r, c) {
                (0, 0) => Channel::Red,
                (1, 1) => Channel::Blue,
                _ => Channel::Green,
            },
            BayerPattern::Bggr => match (r, c) {
                (0, 0) => Channel::Blue,
                (1, 1) => Channel::Red,
                _ => Channel::Green,
            },
            BayerPattern::Grbg => match (r, c) {
                (0, 1) => Channel::Red,
                (1, 0) => Channel::Blue,
                _ => Channel::Green,
            },
            BayerPattern::Gbrg => match (r, c) {
                (0, 1) => Channel::Blue,
                (1, 0) => Channel::Red,
                _ => Channel::Green,
            },
        }
    }

    /// Fraction of photosites assigned to a channel (green gets half).
    #[must_use]
    pub fn channel_share(self, channel: Channel) -> f64 {
        match channel {
            Channel::Green => 0.5,
            _ => 0.25,
        }
    }
}

/// A raw Bayer mosaic: one intensity per photosite plus the pattern needed
/// to interpret it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayerMosaic {
    pattern: BayerPattern,
    frame: GrayFrame,
}

impl BayerMosaic {
    /// Samples an RGB frame through the colour filter array, producing the
    /// raw mosaic the photodiodes actually integrate.
    ///
    /// # Errors
    ///
    /// Propagates frame-construction errors (cannot occur for a valid input
    /// frame).
    pub fn from_rgb(frame: &RgbFrame, pattern: BayerPattern) -> Result<Self> {
        let mut data = Vec::with_capacity(frame.height() * frame.width());
        for row in 0..frame.height() {
            for col in 0..frame.width() {
                let rgb = frame.pixel(row, col)?;
                let channel = pattern.channel_at(row, col);
                data.push(rgb[channel.index()]);
            }
        }
        Ok(Self {
            pattern,
            frame: GrayFrame::new(frame.height(), frame.width(), data)?,
        })
    }

    /// The Bayer pattern of this mosaic.
    #[must_use]
    pub fn pattern(&self) -> BayerPattern {
        self.pattern
    }

    /// Mosaic height in photosites.
    #[must_use]
    pub fn height(&self) -> usize {
        self.frame.height()
    }

    /// Mosaic width in photosites.
    #[must_use]
    pub fn width(&self) -> usize {
        self.frame.width()
    }

    /// Raw intensity at a photosite.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::PixelOutOfRange`] for out-of-frame coordinates.
    pub fn intensity(&self, row: usize, col: usize) -> Result<f64> {
        self.frame.value(row, col)
    }

    /// Colour of a photosite.
    #[must_use]
    pub fn channel_at(&self, row: usize, col: usize) -> Channel {
        self.pattern.channel_at(row, col)
    }

    /// The underlying single-channel frame.
    #[must_use]
    pub fn as_gray(&self) -> &GrayFrame {
        &self.frame
    }

    /// Simple bilinear-free demosaicking by 2×2 tile averaging: each output
    /// RGB pixel covers one Bayer tile (half the resolution in each
    /// dimension). This is the reference reconstruction used to validate the
    /// compressive acquisitor.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidDimensions`] if the mosaic does not have
    /// even dimensions.
    pub fn demosaic_tiles(&self) -> Result<RgbFrame> {
        if !self.height().is_multiple_of(2) || !self.width().is_multiple_of(2) {
            return Err(SensorError::InvalidDimensions {
                height: self.height(),
                width: self.width(),
            });
        }
        let oh = self.height() / 2;
        let ow = self.width() / 2;
        let mut data = Vec::with_capacity(oh * ow * 3);
        for trow in 0..oh {
            for tcol in 0..ow {
                let mut sums = [0.0f64; 3];
                let mut counts = [0usize; 3];
                for dr in 0..2 {
                    for dc in 0..2 {
                        let row = trow * 2 + dr;
                        let col = tcol * 2 + dc;
                        let ch = self.channel_at(row, col);
                        sums[ch.index()] += self.intensity(row, col)?;
                        counts[ch.index()] += 1;
                    }
                }
                for i in 0..3 {
                    data.push(if counts[i] == 0 {
                        0.0
                    } else {
                        sums[i] / counts[i] as f64
                    });
                }
            }
        }
        RgbFrame::new(oh, ow, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rggb_layout_matches_paper_figure() {
        let p = BayerPattern::Rggb;
        assert_eq!(p.channel_at(0, 0), Channel::Red);
        assert_eq!(p.channel_at(0, 1), Channel::Green);
        assert_eq!(p.channel_at(1, 0), Channel::Green);
        assert_eq!(p.channel_at(1, 1), Channel::Blue);
        // The pattern tiles with period 2.
        assert_eq!(p.channel_at(2, 2), Channel::Red);
        assert_eq!(p.channel_at(3, 3), Channel::Blue);
    }

    #[test]
    fn all_patterns_have_two_greens_per_tile() {
        for pattern in [
            BayerPattern::Rggb,
            BayerPattern::Bggr,
            BayerPattern::Grbg,
            BayerPattern::Gbrg,
        ] {
            let mut counts = [0usize; 3];
            for r in 0..2 {
                for c in 0..2 {
                    counts[pattern.channel_at(r, c).index()] += 1;
                }
            }
            assert_eq!(counts[Channel::Green.index()], 2, "{pattern:?}");
            assert_eq!(counts[Channel::Red.index()], 1, "{pattern:?}");
            assert_eq!(counts[Channel::Blue.index()], 1, "{pattern:?}");
        }
    }

    #[test]
    fn channel_share_sums_to_one() {
        let p = BayerPattern::Rggb;
        let total: f64 = Channel::ALL.iter().map(|&c| p.channel_share(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mosaic_samples_the_right_channel() {
        // A frame with distinct per-channel values everywhere.
        let frame = RgbFrame::filled(4, 4, [0.9, 0.5, 0.1]).expect("valid");
        let mosaic = BayerMosaic::from_rgb(&frame, BayerPattern::Rggb).expect("valid");
        assert_eq!(mosaic.intensity(0, 0).expect("ok"), 0.9); // red site
        assert_eq!(mosaic.intensity(0, 1).expect("ok"), 0.5); // green site
        assert_eq!(mosaic.intensity(1, 1).expect("ok"), 0.1); // blue site
    }

    #[test]
    fn demosaic_recovers_uniform_frames() {
        let frame = RgbFrame::filled(8, 8, [0.25, 0.5, 0.75]).expect("valid");
        let mosaic = BayerMosaic::from_rgb(&frame, BayerPattern::Rggb).expect("valid");
        let rgb = mosaic.demosaic_tiles().expect("ok");
        assert_eq!(rgb.height(), 4);
        assert_eq!(rgb.width(), 4);
        for row in 0..4 {
            for col in 0..4 {
                let px = rgb.pixel(row, col).expect("ok");
                assert!((px[0] - 0.25).abs() < 1e-12);
                assert!((px[1] - 0.5).abs() < 1e-12);
                assert!((px[2] - 0.75).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn demosaic_requires_even_dimensions() {
        let frame = RgbFrame::filled(3, 4, [0.2, 0.2, 0.2]).expect("valid");
        let mosaic = BayerMosaic::from_rgb(&frame, BayerPattern::Rggb).expect("valid");
        assert!(mosaic.demosaic_tiles().is_err());
    }
}
