//! Analog noise and non-ideality injection.
//!
//! The functional accuracy experiments (paper Table 1) run quantized DNNs
//! through the photonic MAC datapath. This module centralises the stochastic
//! error sources applied to analog quantities: relative amplitude noise on
//! VCSEL outputs, detector-referred additive noise, and the finite resolution
//! of MR tuning DACs.
//!
//! Gaussian samples are generated with a Box–Muller transform on top of the
//! `rand` uniform generator so no extra dependency is required.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the analog non-idealities applied to the photonic MAC.
///
/// All noise magnitudes are expressed relative to the full-scale signal so
/// the same configuration applies regardless of the absolute laser power
/// chosen for a link budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Relative RMS amplitude noise of each modulated VCSEL (RIN + driver).
    pub vcsel_relative_sigma: f64,
    /// Detector-referred additive RMS noise relative to full scale
    /// (shot + thermal, folded into one knob for architecture studies).
    pub detector_relative_sigma: f64,
    /// RMS error of the realised MR weight caused by finite tuning-DAC
    /// resolution and thermal drift, in absolute weight units.
    pub weight_sigma: f64,
    /// Whether inter-channel crosstalk should be applied by arm simulations.
    pub apply_crosstalk: bool,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            vcsel_relative_sigma: 0.004,
            detector_relative_sigma: 0.003,
            weight_sigma: 0.004,
            apply_crosstalk: true,
        }
    }
}

impl NoiseConfig {
    /// A perfectly ideal (noise-free, crosstalk-free) configuration.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            vcsel_relative_sigma: 0.0,
            detector_relative_sigma: 0.0,
            weight_sigma: 0.0,
            apply_crosstalk: false,
        }
    }

    /// Returns `true` when every stochastic term is zero.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.vcsel_relative_sigma == 0.0
            && self.detector_relative_sigma == 0.0
            && self.weight_sigma == 0.0
            && !self.apply_crosstalk
    }

    /// Scales every stochastic term by `factor` (useful for sensitivity
    /// sweeps / the noise ablation bench).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            vcsel_relative_sigma: self.vcsel_relative_sigma * factor,
            detector_relative_sigma: self.detector_relative_sigma * factor,
            weight_sigma: self.weight_sigma * factor,
            apply_crosstalk: self.apply_crosstalk,
        }
    }
}

/// A reusable Gaussian sampler built on the Box–Muller transform.
///
/// ```
/// use lightator_photonics::noise::GaussianSampler;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut sampler = GaussianSampler::new();
/// let x = sampler.sample(&mut rng, 0.0, 1.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    cached: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached Box–Muller spare, re-aligning the sampler with the
    /// underlying RNG stream.
    ///
    /// Call this whenever the RNG is reseeded (e.g. at a frame boundary of
    /// the frame-indexed noise streams): the spare was drawn from the *old*
    /// stream and would otherwise leak across the reseed.
    pub fn reset(&mut self) {
        self.cached = None;
    }

    /// Draws one sample from `N(mean, sigma²)`.
    ///
    /// A `sigma` of zero returns `mean` exactly without consuming entropy.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return mean;
        }
        let standard = if let Some(z) = self.cached.take() {
            z
        } else {
            // Box–Muller: generate two independent standard normals and cache one.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let radius = (-2.0 * u1.ln()).sqrt();
            let angle = 2.0 * std::f64::consts::PI * u2;
            self.cached = Some(radius * angle.sin());
            radius * angle.cos()
        };
        mean + sigma * standard
    }
}

/// Applies the configured non-idealities to analog quantities.
#[derive(Debug, Clone)]
pub struct NoiseInjector {
    config: NoiseConfig,
    sampler: GaussianSampler,
}

impl NoiseInjector {
    /// Creates an injector for a configuration.
    #[must_use]
    pub fn new(config: NoiseConfig) -> Self {
        Self {
            config,
            sampler: GaussianSampler::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Re-aligns the injector with a freshly (re)seeded RNG stream by
    /// clearing the sampler's cached spare (see [`GaussianSampler::reset`]).
    pub fn reset(&mut self) {
        self.sampler.reset();
    }

    /// Perturbs a normalised VCSEL intensity (full scale = 1.0). The result
    /// is clamped to `[0, 1]` because intensity cannot be negative nor exceed
    /// the saturated laser output.
    pub fn perturb_intensity<R: Rng + ?Sized>(&mut self, rng: &mut R, intensity: f64) -> f64 {
        let noisy = self
            .sampler
            .sample(rng, intensity, self.config.vcsel_relative_sigma);
        noisy.clamp(0.0, 1.0)
    }

    /// Perturbs a realised MR weight (transmission in `[0, 1]`).
    pub fn perturb_weight<R: Rng + ?Sized>(&mut self, rng: &mut R, weight: f64) -> f64 {
        let noisy = self.sampler.sample(rng, weight, self.config.weight_sigma);
        noisy.clamp(0.0, 1.0)
    }

    /// Adds detector-referred noise to a normalised MAC result (full scale
    /// = 1.0 per accumulated term; the caller passes the already-summed
    /// value so the noise is applied once per detection event, as in
    /// hardware).
    pub fn perturb_detection<R: Rng + ?Sized>(&mut self, rng: &mut R, value: f64) -> f64 {
        self.sampler
            .sample(rng, value, self.config.detector_relative_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_config_reports_ideal() {
        assert!(NoiseConfig::ideal().is_ideal());
        assert!(!NoiseConfig::default().is_ideal());
    }

    #[test]
    fn scaled_config_scales_all_terms() {
        let doubled = NoiseConfig::default().scaled(2.0);
        let base = NoiseConfig::default();
        assert!((doubled.vcsel_relative_sigma - 2.0 * base.vcsel_relative_sigma).abs() < 1e-15);
        assert!(
            (doubled.detector_relative_sigma - 2.0 * base.detector_relative_sigma).abs() < 1e-15
        );
        assert!((doubled.weight_sigma - 2.0 * base.weight_sigma).abs() < 1e-15);
    }

    #[test]
    fn gaussian_sampler_zero_sigma_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sampler = GaussianSampler::new();
        assert_eq!(sampler.sample(&mut rng, 0.7, 0.0), 0.7);
    }

    #[test]
    fn gaussian_sampler_statistics_are_reasonable() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sampler = GaussianSampler::new();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng, 1.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "sample mean {mean}");
        assert!(
            (var.sqrt() - 0.5).abs() < 0.02,
            "sample sigma {}",
            var.sqrt()
        );
    }

    #[test]
    fn perturbed_values_stay_in_physical_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut injector = NoiseInjector::new(NoiseConfig::default().scaled(20.0));
        for _ in 0..1_000 {
            let i = injector.perturb_intensity(&mut rng, 0.98);
            assert!((0.0..=1.0).contains(&i));
            let w = injector.perturb_weight(&mut rng, 0.02);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn ideal_injector_is_transparent() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut injector = NoiseInjector::new(NoiseConfig::ideal());
        assert_eq!(injector.perturb_intensity(&mut rng, 0.33), 0.33);
        assert_eq!(injector.perturb_weight(&mut rng, 0.66), 0.66);
        assert_eq!(injector.perturb_detection(&mut rng, -0.4), -0.4);
    }

    #[test]
    fn detection_noise_can_be_negative() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut injector = NoiseInjector::new(NoiseConfig {
            detector_relative_sigma: 0.5,
            ..NoiseConfig::default()
        });
        let mut saw_below = false;
        for _ in 0..200 {
            if injector.perturb_detection(&mut rng, 0.0) < 0.0 {
                saw_below = true;
                break;
            }
        }
        assert!(
            saw_below,
            "detector noise must be able to push values negative"
        );
    }
}
