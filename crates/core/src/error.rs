//! Error type for the Lightator core.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the Lightator optical core, mapper and simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Human-readable description of the violated constraint (why the
        /// value was rejected, not just what it was).
        constraint: String,
    },
    /// A layer cannot be mapped onto the optical core.
    UnmappableLayer {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A model and its description disagree (e.g. a non-classifier network).
    ModelMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An error bubbled up from the photonic device models.
    Photonics(lightator_photonics::PhotonicsError),
    /// An error bubbled up from the sensor models.
    Sensor(lightator_sensor::SensorError),
    /// An error bubbled up from the DNN stack.
    Nn(lightator_nn::NnError),
}

impl CoreError {
    /// Builds an [`CoreError::InvalidConfig`] carrying the violated
    /// constraint alongside the offending name and value.
    #[must_use]
    pub fn invalid_config(name: &'static str, value: f64, constraint: impl Into<String>) -> Self {
        Self::InvalidConfig {
            name,
            value,
            constraint: constraint.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig {
                name,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "invalid value {value} for configuration parameter `{name}`: {constraint}"
                )
            }
            Self::UnmappableLayer { reason } => write!(f, "layer cannot be mapped: {reason}"),
            Self::ModelMismatch { reason } => write!(f, "model mismatch: {reason}"),
            Self::Photonics(err) => write!(f, "photonic device error: {err}"),
            Self::Sensor(err) => write!(f, "sensor error: {err}"),
            Self::Nn(err) => write!(f, "dnn error: {err}"),
        }
    }
}

impl StdError for CoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Self::Photonics(err) => Some(err),
            Self::Sensor(err) => Some(err),
            Self::Nn(err) => Some(err),
            _ => None,
        }
    }
}

impl From<lightator_photonics::PhotonicsError> for CoreError {
    fn from(err: lightator_photonics::PhotonicsError) -> Self {
        Self::Photonics(err)
    }
}

impl From<lightator_sensor::SensorError> for CoreError {
    fn from(err: lightator_sensor::SensorError) -> Self {
        Self::Sensor(err)
    }
}

impl From<lightator_nn::NnError> for CoreError {
    fn from(err: lightator_nn::NnError) -> Self {
        Self::Nn(err)
    }
}

/// Convenience result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let err: CoreError = lightator_nn::NnError::BackwardBeforeForward.into();
        assert!(err.to_string().contains("dnn"));
        assert!(err.source().is_some());
        let err = CoreError::UnmappableLayer {
            reason: "too wide".into(),
        };
        assert!(err.to_string().contains("too wide"));
        assert!(err.source().is_none());
    }

    #[test]
    fn invalid_config_explains_the_violated_constraint() {
        let err = CoreError::invalid_config("ca_banks", 1000.0, "must not exceed the 96 banks");
        let text = err.to_string();
        assert!(text.contains("ca_banks"));
        assert!(text.contains("1000"));
        assert!(
            text.contains("must not exceed the 96 banks"),
            "constraint missing from `{text}`"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
