//! Architecture-level simulator.
//!
//! The paper's "custom in-house simulator" consumes the network's layer
//! parameters together with the circuit-level constants and produces, per
//! layer, the execution time and the component power breakdown, plus
//! platform-level figures of merit (frames per second, KFPS/W). This module
//! is that simulator.

use crate::config::LightatorConfig;
use crate::energy::{ComponentPower, EnergyModel};
use crate::error::Result;
use crate::mapping::{HardwareMapper, LayerMapping};
use lightator_nn::quant::PrecisionSchedule;
use lightator_nn::spec::{LayerSpec, NetworkSpec};
use lightator_photonics::units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// The three timing phases a layer's latency decomposes into.
///
/// For an optically mapped layer: DAC weight encoding (reload passes), the
/// optical MAC-row sweep, and electronic readout/activation. Layers that
/// stay in the electronic periphery (max pool) spend everything in the
/// readout phase. The phases sum exactly to the layer's
/// [`latency`](LayerReport::latency), which per-stage trace attribution
/// relies on.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerPhases {
    /// Electronic DAC weight-reload time.
    pub weight_encode: Time,
    /// Optical MAC-row compute time.
    pub mac: Time,
    /// Electronic post-processing (readout, activation, buffering) time.
    pub readout: Time,
}

impl LayerPhases {
    /// Sum of the three phases — the layer latency.
    #[must_use]
    pub fn total(&self) -> Time {
        self.weight_encode + self.mac + self.readout
    }
}

/// Per-layer simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer index in the network (0-based, matching `L1..Ln` minus one).
    pub index: usize,
    /// Layer kind (`conv`, `fc`, `pool`).
    pub kind: String,
    /// How the layer was mapped, if it runs on the optical core.
    pub mapping: Option<LayerMapping>,
    /// Execution latency of the layer.
    pub latency: Time,
    /// Phase decomposition of `latency` (weight-encode / MAC rows / readout).
    pub phases: LayerPhases,
    /// Component power while the layer executes.
    pub power: ComponentPower,
    /// Energy consumed by the layer (power × latency).
    pub energy: Energy,
    /// MAC operations executed.
    pub macs: usize,
}

/// Whole-network simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Network name.
    pub network: String,
    /// Precision schedule label (e.g. `[4:4]` or `[4:4][3:4]`).
    pub precision: String,
    /// Per-layer results.
    pub layers: Vec<LayerReport>,
    /// End-to-end latency of one frame.
    pub frame_latency: Time,
    /// Peak platform power (Table 1's "Max Power").
    pub max_power: Power,
    /// Latency-weighted average power.
    pub average_power: Power,
    /// Total energy per frame.
    pub frame_energy: Energy,
}

impl SimulationReport {
    /// Frames per second.
    #[must_use]
    pub fn fps(&self) -> f64 {
        if self.frame_latency.seconds() == 0.0 {
            return 0.0;
        }
        1.0 / self.frame_latency.seconds()
    }

    /// Kilo-frames per second per watt of peak power — the figure of merit
    /// of Table 1.
    #[must_use]
    pub fn kfps_per_watt(&self) -> f64 {
        if self.max_power.watts() == 0.0 {
            return 0.0;
        }
        self.fps() / 1e3 / self.max_power.watts()
    }

    /// Total MAC count of the simulated network.
    #[must_use]
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|l| l.macs).sum()
    }
}

/// The Lightator architecture simulator.
#[derive(Debug, Clone)]
pub struct ArchitectureSimulator {
    config: LightatorConfig,
    mapper: HardwareMapper,
    energy: EnergyModel,
}

impl ArchitectureSimulator {
    /// Creates a simulator for a platform configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`](crate::CoreError::InvalidConfig)
    /// if the configuration is invalid.
    pub fn new(config: LightatorConfig) -> Result<Self> {
        config.validate()?;
        let mapper = HardwareMapper::new(config.geometry)?;
        let energy = EnergyModel::new(config.clone())?;
        Ok(Self {
            config,
            mapper,
            energy,
        })
    }

    /// The platform configuration.
    #[must_use]
    pub fn config(&self) -> &LightatorConfig {
        &self.config
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Phase timing of one optically mapped layer.
    fn layer_phases(&self, layer: &LayerSpec, mapping: &LayerMapping) -> LayerPhases {
        let timing = &self.config.timing;
        let optical_cycle = self.config.power.optical_cycle();
        let electronic_cycle = self.config.power.electronic_cycle();

        let compute =
            optical_cycle * (mapping.compute_cycles * timing.optical_cycles_per_wave) as f64;
        // Weight reloads rewrite every occupied bank through its DACs; banks
        // reload in parallel, so the cost is per reload pass.
        let reload = electronic_cycle
            * (mapping.weight_reloads * timing.weight_reload_cycles_per_bank) as f64;
        // Electronic post-processing (activation function, buffering).
        let outputs = layer.output_elements();
        let post = electronic_cycle
            * (outputs.div_ceil(1024) * timing.electronic_post_cycles_per_kilo_output) as f64;
        LayerPhases {
            weight_encode: reload,
            mac: compute,
            readout: post,
        }
    }

    /// Phase timing of a layer that stays in the electronic periphery (max
    /// pool): everything is post-processing.
    fn electronic_layer_phases(&self, layer: &LayerSpec) -> LayerPhases {
        let electronic_cycle = self.config.power.electronic_cycle();
        let outputs = layer.output_elements();
        LayerPhases {
            weight_encode: Time::zero(),
            mac: Time::zero(),
            readout: electronic_cycle
                * (outputs.div_ceil(1024)
                    * self.config.timing.electronic_post_cycles_per_kilo_output
                    * 2) as f64,
        }
    }

    /// Power of an electronically executed layer: controller + buffers only.
    fn electronic_layer_power(&self) -> ComponentPower {
        ComponentPower {
            misc: Power::from_mw(self.config.power.controller_power_mw),
            ..ComponentPower::default()
        }
    }

    /// Simulates one network under a precision schedule.
    ///
    /// When compressive acquisition is enabled in the configuration, an extra
    /// CA pass over the input frame is prepended (the paper's Fig. 9 setup,
    /// which reduces first-layer power by shrinking its input).
    ///
    /// # Errors
    ///
    /// Propagates mapping errors for layers the optical core cannot execute.
    pub fn simulate(
        &self,
        network: &NetworkSpec,
        schedule: PrecisionSchedule,
    ) -> Result<SimulationReport> {
        let mappings = self.mapper.map_network(network.layers())?;
        let mut layers = Vec::with_capacity(network.layers().len());
        let mut weighted_index = 0usize;
        let mut frame_latency = Time::zero();
        let mut frame_energy = Energy::zero();
        let mut max_power = Power::zero();

        for (index, (layer, mapping)) in network.layers().iter().zip(&mappings).enumerate() {
            let precision = schedule.for_layer(weighted_index);
            let is_first_layer = index == 0;
            let (phases, power) = match mapping {
                Some(mapping) => (
                    self.layer_phases(layer, mapping),
                    self.energy.layer_power(mapping, precision, is_first_layer),
                ),
                None => (
                    self.electronic_layer_phases(layer),
                    self.electronic_layer_power(),
                ),
            };
            if layer.is_weighted() {
                weighted_index += 1;
            }
            let latency = phases.total();
            let energy = Energy::from_pj(power.total().watts() * latency.seconds() * 1e12);
            frame_latency += latency;
            frame_energy += energy;
            max_power = max_power.max(power.total());
            layers.push(LayerReport {
                index,
                kind: layer.kind_name().to_string(),
                mapping: *mapping,
                latency,
                phases,
                power,
                energy,
                macs: layer.mac_count(),
            });
        }

        // Table 1's "Max Power" column reports the platform's peak power for
        // the configuration (all banks engaged), which large networks reach
        // and small networks do not exceed.
        let platform_peak = self.energy.max_power(schedule.for_layer(1)).total();
        let max_power = max_power.max(Power::zero()).min(platform_peak).max(
            // never report below the largest per-layer draw
            layers
                .iter()
                .map(|l| l.power.total())
                .fold(Power::zero(), Power::max),
        );

        let average_power = if frame_latency.seconds() > 0.0 {
            Power::from_watts(frame_energy.joules() / frame_latency.seconds())
        } else {
            Power::zero()
        };

        Ok(SimulationReport {
            network: network.name().to_string(),
            precision: schedule.label(),
            layers,
            frame_latency,
            max_power,
            average_power,
            frame_energy,
        })
    }

    /// Platform peak power for a network under a (possibly mixed) precision
    /// schedule — the "Max Power" column of Table 1.
    ///
    /// For mixed-precision schedules the banks holding the first layer's
    /// weights keep their DAC slices at the first layer's precision while the
    /// remaining banks run at the lower precision, so the peak is the
    /// arm-share-weighted blend of the two uniform peaks. For uniform
    /// schedules this reduces to the uniform peak.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors.
    pub fn platform_max_power(
        &self,
        network: &NetworkSpec,
        schedule: PrecisionSchedule,
    ) -> Result<Power> {
        let mappings = self.mapper.map_network(network.layers())?;
        let first_mapping = network
            .layers()
            .iter()
            .zip(&mappings)
            .find(|(layer, _)| layer.is_weighted())
            .and_then(|(_, mapping)| *mapping);
        let arms = self.config.geometry.arms().max(1);
        let share = first_mapping
            .map(|m| {
                let engaged = m.strides_per_cycle.min(m.total_strides) * m.arms_per_stride;
                (engaged.min(arms)) as f64 / arms as f64
            })
            .unwrap_or(0.0);
        let peak_first = self.energy.max_power(schedule.for_layer(0)).total();
        let peak_rest = self.energy.max_power(schedule.for_layer(1)).total();
        Ok(peak_first * share + peak_rest * (1.0 - share))
    }

    /// Simulates the network preceded by a compressive-acquisition pass that
    /// shrinks the input frame (mean pooling across channels + strided
    /// weighted sum, paper step 2). Returns the report plus the relative
    /// first-layer energy saving the CA provides, the quantity the paper
    /// highlights for Fig. 9 (a 42.2 % reduction).
    ///
    /// # Errors
    ///
    /// Propagates mapping/simulation errors.
    pub fn simulate_with_ca(
        &self,
        network: &NetworkSpec,
        schedule: PrecisionSchedule,
        pooling_window: usize,
    ) -> Result<(SimulationReport, f64)> {
        let baseline = self.simulate(network, schedule)?;
        // With CA enabled the first conv layer sees a spatially reduced
        // input: rebuild the spec with the reduced first-layer geometry.
        let reduced = reduce_first_layer(network, pooling_window);
        let compressed = self.simulate(&reduced, schedule)?;
        let first_energy_before = baseline
            .layers
            .first()
            .map(|l| l.energy.joules())
            .unwrap_or(0.0);
        let first_energy_after = compressed
            .layers
            .first()
            .map(|l| l.energy.joules())
            .unwrap_or(0.0);
        let saving = if first_energy_before > 0.0 {
            1.0 - first_energy_after / first_energy_before
        } else {
            0.0
        };
        Ok((compressed, saving))
    }
}

/// Builds a copy of `network` whose first convolution runs on an input frame
/// spatially reduced by `window` (the effect of the CA pass).
fn reduce_first_layer(network: &NetworkSpec, window: usize) -> NetworkSpec {
    use lightator_nn::spec::NetworkSpecBuilder;
    let window = window.max(1);
    let [c, h, w] = network.input_shape();
    let mut builder = NetworkSpecBuilder::new(
        &format!("{}+CA", network.name()),
        [c, (h / window).max(1), (w / window).max(1)],
    );
    let mut first_conv_seen = false;
    for layer in network.layers() {
        builder = match layer {
            LayerSpec::Conv(conv) => {
                first_conv_seen = true;
                builder
                    .conv(conv.out_channels, conv.kernel, conv.stride, conv.padding)
                    .unwrap_or_else(|_| {
                        NetworkSpecBuilder::new(network.name(), network.input_shape())
                    })
            }
            LayerSpec::Pool(pool) => {
                // Pooling windows may no longer divide the reduced map; skip
                // pools that became degenerate.
                match builder
                    .clone()
                    .pool_strided(pool.window, pool.stride, pool.average)
                {
                    Ok(b) => b,
                    Err(_) => builder,
                }
            }
            LayerSpec::Linear(linear) => builder
                .linear(linear.out_features)
                .unwrap_or_else(|_| NetworkSpecBuilder::new(network.name(), network.input_shape())),
        };
        let _ = first_conv_seen;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_nn::quant::{Precision, PrecisionSchedule};

    fn simulator() -> ArchitectureSimulator {
        ArchitectureSimulator::new(LightatorConfig::paper()).expect("valid")
    }

    #[test]
    fn lenet_simulation_produces_seven_layer_reports() {
        let report = simulator()
            .simulate(
                &NetworkSpec::lenet(),
                PrecisionSchedule::Uniform(Precision::w4a4()),
            )
            .expect("ok");
        assert_eq!(report.layers.len(), 7);
        assert!(report.frame_latency.ns() > 0.0);
        assert!(report.fps() > 0.0);
        assert!(report.kfps_per_watt() > 0.0);
        assert_eq!(report.total_macs(), NetworkSpec::lenet().total_macs());
    }

    #[test]
    fn lower_precision_raises_kfps_per_watt() {
        let sim = simulator();
        let net = NetworkSpec::vgg9(10);
        let p44 = sim
            .simulate(&net, PrecisionSchedule::Uniform(Precision::w4a4()))
            .expect("ok");
        let p34 = sim
            .simulate(&net, PrecisionSchedule::Uniform(Precision::w3a4()))
            .expect("ok");
        let p24 = sim
            .simulate(&net, PrecisionSchedule::Uniform(Precision::w2a4()))
            .expect("ok");
        assert!(p34.max_power.watts() < p44.max_power.watts());
        assert!(p24.max_power.watts() < p34.max_power.watts());
        assert!(p34.kfps_per_watt() > p44.kfps_per_watt());
        assert!(p24.kfps_per_watt() > p34.kfps_per_watt());
    }

    #[test]
    fn mixed_precision_sits_between_uniform_configurations() {
        let sim = simulator();
        let net = NetworkSpec::vgg9(100);
        let uniform_hi = sim
            .simulate(&net, PrecisionSchedule::Uniform(Precision::w4a4()))
            .expect("ok");
        let uniform_lo = sim
            .simulate(&net, PrecisionSchedule::Uniform(Precision::w3a4()))
            .expect("ok");
        let mixed = sim
            .simulate(
                &net,
                PrecisionSchedule::Mixed {
                    first: Precision::w4a4(),
                    rest: Precision::w3a4(),
                },
            )
            .expect("ok");
        assert!(mixed.max_power.watts() <= uniform_hi.max_power.watts() + 1e-9);
        assert!(mixed.max_power.watts() >= uniform_lo.max_power.watts() - 1e-9);
    }

    #[test]
    fn larger_networks_take_longer() {
        let sim = simulator();
        let schedule = PrecisionSchedule::Uniform(Precision::w4a4());
        let lenet = sim.simulate(&NetworkSpec::lenet(), schedule).expect("ok");
        let vgg9 = sim.simulate(&NetworkSpec::vgg9(10), schedule).expect("ok");
        let alexnet = sim.simulate(&NetworkSpec::alexnet(), schedule).expect("ok");
        assert!(vgg9.frame_latency.ns() > lenet.frame_latency.ns());
        assert!(alexnet.frame_latency.ns() > vgg9.frame_latency.ns());
    }

    #[test]
    fn dacs_dominate_vgg9_power_breakdown() {
        // Fig. 9: "consistently across all layers, DACs contribute to more
        // than 85% of the total power consumption".
        let report = simulator()
            .simulate(
                &NetworkSpec::vgg9(10),
                PrecisionSchedule::Uniform(Precision::w3a4()),
            )
            .expect("ok");
        let conv_layers: Vec<&LayerReport> =
            report.layers.iter().filter(|l| l.kind == "conv").collect();
        assert!(!conv_layers.is_empty());
        for layer in conv_layers {
            assert!(
                layer.power.dac_share() > 0.5,
                "layer {} DAC share {}",
                layer.index,
                layer.power.dac_share()
            );
        }
    }

    #[test]
    fn ca_compression_reduces_first_layer_power() {
        let sim = simulator();
        let (report, saving) = sim
            .simulate_with_ca(
                &NetworkSpec::vgg9(10),
                PrecisionSchedule::Uniform(Precision::w3a4()),
                2,
            )
            .expect("ok");
        assert!(!report.layers.is_empty());
        // Fig. 9 reports a 42.2% first-layer power reduction; require a
        // meaningful saving without demanding the exact number.
        assert!(saving > 0.15, "CA saving {saving}");
        assert!(saving < 0.95);
    }

    #[test]
    fn max_power_is_bounded_by_platform_peak() {
        let sim = simulator();
        let schedule = PrecisionSchedule::Uniform(Precision::w4a4());
        let report = sim.simulate(&NetworkSpec::vgg16(), schedule).expect("ok");
        let peak = sim.energy_model().max_power(Precision::w4a4()).total();
        assert!(report.max_power.watts() <= peak.watts() + 1e-9);
    }

    #[test]
    fn average_power_not_above_max_power() {
        let report = simulator()
            .simulate(
                &NetworkSpec::vgg9(10),
                PrecisionSchedule::Uniform(Precision::w4a4()),
            )
            .expect("ok");
        assert!(report.average_power.watts() <= report.max_power.watts() + 1e-9);
    }

    #[test]
    fn layer_phases_sum_exactly_to_layer_latency() {
        let report = simulator()
            .simulate(
                &NetworkSpec::lenet(),
                PrecisionSchedule::Uniform(Precision::w4a4()),
            )
            .expect("ok");
        for layer in &report.layers {
            assert_eq!(
                layer.phases.total().ns(),
                layer.latency.ns(),
                "layer {} phase decomposition must be exact",
                layer.index
            );
            if layer.mapping.is_none() {
                assert!(layer.phases.weight_encode.is_zero());
                assert!(layer.phases.mac.is_zero());
            } else {
                assert!(layer.phases.mac.ns() > 0.0);
            }
        }
    }

    #[test]
    fn energy_is_consistent_with_power_and_latency() {
        let report = simulator()
            .simulate(
                &NetworkSpec::lenet(),
                PrecisionSchedule::Uniform(Precision::w4a4()),
            )
            .expect("ok");
        let summed: f64 = report.layers.iter().map(|l| l.energy.joules()).sum();
        assert!((summed - report.frame_energy.joules()).abs() < 1e-12);
    }
}
