//! Compiled-plan reuse: lower the workload once, stream frames forever.
//!
//! The seed executor re-encoded the quantized MR weights on every call —
//! per output stride on the single-scene `run` path, per `run_batch` call
//! on the batched path. A `Session` now compiles its workload into a
//! `CompiledPlan` at open and every entry point reuses the pre-encoded
//! weight bank. This bench measures that win on repeated small batches and
//! asserts the headline ratio (single-scene simulation throughput — frames
//! simulated per wall-clock second; simulated per-frame latency is identical
//! in both modes — plan-cached vs
//! the seed's per-call-encode path via `Session::set_plan_reuse(false)`)
//! is **≥ 1.3×**, then emits the numbers as `BENCH_plan_reuse.json`.
//!
//! Smoke mode (`LIGHTATOR_BENCH_SMOKE=1`, used by the CI bench-smoke step)
//! runs one short round — enough to exercise the harness and validate the
//! emitted JSON without asserting the ratio on noisy shared runners.

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lightator_bench::emit::{self, BenchMetric};
use lightator_core::platform::{Platform, Session, Workload};
use lightator_nn::layers::{Activation, Conv2d, Flatten, Linear};
use lightator_nn::model::Sequential;
use lightator_photonics::noise::NoiseConfig;
use lightator_sensor::frame::RgbFrame;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SENSOR: usize = 16;
const SMALL_BATCH: usize = 2;

/// A classifier with a weighty linear stage: exactly the shape where
/// per-call encoding (weights *and* per-row activation quantization on the
/// unencoded path) hurts most.
fn classifier() -> Sequential {
    let mut rng = SmallRng::seed_from_u64(21);
    // CA halves the 16x16 sensor to [1, 8, 8].
    let mut model = Sequential::new(&[1, 8, 8]);
    model.push(Conv2d::new(1, 2, 3, 1, 1, &mut rng).expect("conv"));
    model.push(Activation::relu());
    model.push(Flatten::new());
    model.push(Linear::new(2 * 8 * 8, 16, &mut rng).expect("linear"));
    model.push(Activation::relu());
    model.push(Linear::new(16, 4, &mut rng).expect("head"));
    model
}

fn scenes(count: usize) -> Vec<RgbFrame> {
    let mut rng = SmallRng::seed_from_u64(33);
    (0..count)
        .map(|_| {
            let data: Vec<f64> = (0..SENSOR * SENSOR * 3).map(|_| rng.gen::<f64>()).collect();
            RgbFrame::new(SENSOR, SENSOR, data).expect("frame")
        })
        .collect()
}

fn session() -> Session {
    Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .noise(NoiseConfig::ideal())
        .build()
        .expect("platform")
        .session(Workload::Classify {
            model: classifier(),
        })
        .expect("session")
}

/// The optical 3×3 filter workload on a 32×32 sensor: the path where
/// per-call encoding hurts most (the seed re-quantized *and* re-programmed
/// the MR row for every output stride).
fn kernel_session() -> Session {
    Platform::builder()
        .sensor_resolution(2 * SENSOR, 2 * SENSOR)
        .noise(NoiseConfig::ideal())
        .build()
        .expect("platform")
        .session(Workload::ImageKernel {
            kernel: lightator_core::platform::ImageKernel::SobelX,
        })
        .expect("session")
}

/// Frames per wall-clock second of simulation for `rounds` repetitions of
/// the given closure (which must process `frames_per_round` frames).
fn throughput(rounds: usize, frames_per_round: usize, mut run: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        run();
    }
    (rounds * frames_per_round) as f64 / start.elapsed().as_secs_f64()
}

fn bench_plan_reuse(c: &mut Criterion) {
    let smoke = std::env::var("LIGHTATOR_BENCH_SMOKE").is_ok();
    let frames = scenes(SMALL_BATCH);
    let single = &frames[0];

    // Criterion-visible timings.
    let mut cached = session();
    c.bench_function("plan_reuse/run_cached", |b| {
        b.iter(|| black_box(cached.run(single).expect("run")));
    });
    let mut per_call = session();
    per_call.set_plan_reuse(false);
    c.bench_function("plan_reuse/run_per_call_encode", |b| {
        b.iter(|| black_box(per_call.run(single).expect("run")));
    });

    // Headline measurement: sustained simulation throughput (frames
    // simulated per wall-clock second) over repeated small
    // workloads, interleaved so the two paths see the same machine state.
    let rounds = if smoke { 2 } else { 6 };
    let reps = if smoke { 2 } else { 10 };
    let kernel_scene = {
        // The kernel session runs the doubled sensor; fill a matching scene.
        let mut rng = SmallRng::seed_from_u64(35);
        let side = 2 * SENSOR;
        let data: Vec<f64> = (0..side * side * 3).map(|_| rng.gen::<f64>()).collect();
        RgbFrame::new(side, side, data).expect("frame")
    };
    let mut cached_kernel = kernel_session();
    let mut per_call_kernel = kernel_session();
    per_call_kernel.set_plan_reuse(false);
    let mut cached_run = session();
    let mut per_call_run = session();
    per_call_run.set_plan_reuse(false);
    let mut cached_batch = session();
    let mut per_call_batch = session();
    per_call_batch.set_plan_reuse(false);
    // Warm-up.
    black_box(cached_kernel.run(&kernel_scene).expect("warm-up"));
    black_box(per_call_kernel.run(&kernel_scene).expect("warm-up"));
    black_box(cached_run.run(single).expect("warm-up"));
    black_box(per_call_run.run(single).expect("warm-up"));
    black_box(cached_batch.run_batch(&frames).expect("warm-up"));
    black_box(per_call_batch.run_batch(&frames).expect("warm-up"));

    let mut kernel_ratios = Vec::new();
    let mut single_ratios = Vec::new();
    let mut batch_ratios = Vec::new();
    let mut cached_fps = 0.0f64;
    for _ in 0..rounds {
        let per_call_tp = throughput(reps, 1, || {
            black_box(per_call_kernel.run(&kernel_scene).expect("run"));
        });
        let cached_tp = throughput(reps, 1, || {
            black_box(cached_kernel.run(&kernel_scene).expect("run"));
        });
        cached_fps = cached_fps.max(cached_tp);
        kernel_ratios.push(cached_tp / per_call_tp);

        let per_call_tp = throughput(reps, 1, || {
            black_box(per_call_run.run(single).expect("run"));
        });
        let cached_tp = throughput(reps, 1, || {
            black_box(cached_run.run(single).expect("run"));
        });
        single_ratios.push(cached_tp / per_call_tp);

        let per_call_tp = throughput(reps, SMALL_BATCH, || {
            black_box(per_call_batch.run_batch(&frames).expect("run_batch"));
        });
        let cached_tp = throughput(reps, SMALL_BATCH, || {
            black_box(cached_batch.run_batch(&frames).expect("run_batch"));
        });
        batch_ratios.push(cached_tp / per_call_tp);
    }
    let median = |ratios: &mut Vec<f64>| -> f64 {
        ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite ratios"));
        ratios[ratios.len() / 2]
    };
    let kernel_speedup = median(&mut kernel_ratios);
    let single_speedup = median(&mut single_ratios);
    let batch_speedup = median(&mut batch_ratios);

    println!(
        "plan-cached image-kernel simulation throughput vs per-call encode: {kernel_speedup:.2}x \
         (target >= 1.3x, typically ~2.3x)"
    );
    println!(
        "plan-cached classify single-scene simulation throughput vs per-call encode: \
         {single_speedup:.2}x"
    );
    println!(
        "plan-cached classify batch-of-{SMALL_BATCH} simulation throughput vs per-call encode: \
         {batch_speedup:.2}x"
    );

    let path = emit::emit(
        "plan_reuse",
        &[
            BenchMetric::new("kernel_single_scene_speedup", kernel_speedup, "x"),
            BenchMetric::new("classify_single_scene_speedup", single_speedup, "x"),
            BenchMetric::new("classify_small_batch_speedup", batch_speedup, "x"),
            BenchMetric::new(
                "cached_kernel_sim_throughput",
                cached_fps,
                "frames simulated per wall-clock second",
            ),
        ],
    )
    .expect("BENCH_plan_reuse.json written and validated");
    println!("wrote {}", path.display());

    assert!(
        smoke || kernel_speedup >= 1.3,
        "plan reuse must sustain >= 1.3x simulation throughput over the per-call-encode \
         path, measured {kernel_speedup:.2}x"
    );
}

criterion_group!(benches, bench_plan_reuse);
criterion_main!(benches);
