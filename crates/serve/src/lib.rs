//! `lightator-serve`: a sharded, micro-batching inference server on top of
//! the [`Platform`](lightator_core::platform::Platform) facade.
//!
//! The paper's throughput story (KFPS per watt) only pays off when frames
//! keep flowing; this crate turns the per-batch weight-stationary win of
//! `Session::run_batch` into system-level throughput. It is std-only
//! (`std::thread` + `Mutex`/`Condvar`, no async runtime):
//!
//! * a [`ServerBuilder`] mirrors the `PlatformBuilder` idiom: shards per
//!   workload group, `max_batch`, bounded `queue_depth`, a flush deadline
//!   in simulated time, per-shard seed stride;
//! * a **shard pool** of worker threads, each owning its own seeded
//!   `Session` — one virtual Lightator chip with its own simulated
//!   timeline;
//! * a **dynamic micro-batcher** drains each group's bounded queue into
//!   `run_batch` calls of up to `max_batch` frames (flush on deadline or
//!   queue-empty), so the quantized MR weights are programmed once per
//!   batch — batched frames after the first skip the weight-encode
//!   stages entirely, which is the amortization the adaptive controller
//!   harvests;
//! * an optional **latency-SLO controller** ([`SloConfig`], AIMD): each
//!   shard grows its batch limit and flush deadline while observed queue
//!   wait sits under `target_queue_wait`, and backs the deadline off
//!   multiplicatively on overshoot, trading batch amortization against
//!   tail latency automatically;
//! * **work stealing**: idle shards drain the fullest sibling sub-queue
//!   in their `(workload, backend)` group ([`ServeConfig::steal`]),
//!   keeping every virtual chip busy under skewed load without changing
//!   a single report bit;
//! * **priority lanes** ([`Priority::Interactive`] /
//!   [`Priority::Batch`], [`Server::submit_with_priority`]): weighted
//!   draining lets interactive requests overtake queued batch work,
//!   bounded by [`ServeConfig::interactive_weight`];
//! * an **open-loop soak harness** ([`load`]): seeded Poisson or bursty
//!   arrival schedules on the simulated clock, mixed-kind traffic, and
//!   exact `offered == admitted + dropped` accounting via
//!   [`Server::submit_at`];
//! * a **router** dispatches typed [`Request`]s to the matching workload
//!   group (classify / acquire / image kernel / video stream — streams get
//!   their own shard queue with weighted tickets, one frame index per
//!   carried frame);
//! * **heterogeneous backends**: each workload group can be pinned to a
//!   registered execution backend ([`ServerBuilder::workload_on`], or
//!   `serve.backend.<label>` keys in [`ServeConfig`]); groups are keyed by
//!   `(workload, backend)` and [`Server::submit_on`] routes between two
//!   registrations of the same workload;
//! * **admission control** rejects with [`ServeError::Overloaded`] when a
//!   queue is full instead of blocking forever;
//! * **telemetry** ([`MetricsSnapshot`]) reports sustained throughput,
//!   p50/p95/p99/p99.9 queueing latency, queue depth, the per-shard
//!   batch-size distribution, and per-backend frame/energy/plan totals
//!   ([`metrics::BackendSnapshot`]);
//! * **tracing** ([`ServerBuilder::trace_recorder`]) replays every
//!   request's lifecycle (admit → queue → batch-form → execute → respond)
//!   and per-frame stage decomposition onto a shared
//!   [`TraceRecorder`](lightator_telemetry::TraceRecorder), timestamped in
//!   simulated time and exportable as a Perfetto-loadable `trace.json`;
//! * **graceful shutdown** drains all in-flight work before the workers
//!   exit.
//!
//! Serving is **deterministic**: every admitted request gets a ticket (its
//! global frame index), shards execute contiguous-ticket batches at those
//! indices, and the analog-noise stream is a pure function of
//! `(seed, frame index)` — so a multi-shard pool produces bit-identical
//! reports to one sequential `Session`, analog noise included.
//!
//! # Quickstart
//!
//! ```
//! use lightator_core::platform::{Platform, Workload};
//! use lightator_sensor::frame::RgbFrame;
//! use lightator_serve::{Request, Server};
//!
//! # fn main() -> Result<(), lightator_serve::ServeError> {
//! let platform = Platform::builder().sensor_resolution(8, 8).build()?;
//! let server = Server::builder(platform)
//!     .shards(2)
//!     .max_batch(4)
//!     .queue_depth(32)
//!     .workload(Workload::Acquire)
//!     .build()?;
//!
//! let frame = RgbFrame::filled(8, 8, [0.7, 0.4, 0.2]).expect("valid frame");
//! let report = server.run(Request::Acquire { frame })?;
//! assert_eq!(report.workload, "acquire");
//!
//! let metrics = server.shutdown();
//! assert_eq!(metrics.completed, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod load;
pub mod metrics;
pub mod request;
pub mod server;

mod queue;
mod shard;

pub use config::{ServeConfig, SloConfig};
pub use error::{Result, ServeError};
pub use load::{run_soak, ArrivalProcess, SoakConfig, SoakOutcome, TrafficMix};
pub use metrics::{BackendSnapshot, MetricsSnapshot, ShardSnapshot, StageTotals};
pub use request::{Pending, Priority, Request, Response};
pub use server::{Server, ServerBuilder};
