//! Shared helpers for the experiment harness, built on the
//! [`Platform`] facade.

use lightator_core::platform::Platform;
use lightator_core::sim::ArchitectureSimulator;
use lightator_core::CoreError;
use lightator_nn::quant::{Precision, PrecisionSchedule};

/// The three uniform precisions evaluated throughout the paper.
pub const PRECISIONS: [Precision; 3] = [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()];

/// The five Lightator variants of Table 1 (three uniform, two mixed).
#[must_use]
pub fn lightator_variants() -> Vec<(String, PrecisionSchedule)> {
    let uniform = PRECISIONS
        .iter()
        .map(|&p| (format!("Lightator {p}"), PrecisionSchedule::Uniform(p)));
    let mixed = [Precision::w3a4(), Precision::w2a4()].map(|rest| {
        let schedule = PrecisionSchedule::Mixed {
            first: Precision::w4a4(),
            rest,
        };
        (format!("Lightator-MX {}", schedule.label()), schedule)
    });
    uniform.chain(mixed).collect()
}

/// Builds the paper-default platform — the harness's single front door.
///
/// # Errors
///
/// Propagates configuration errors (cannot occur for the paper defaults).
pub fn platform() -> Result<Platform, CoreError> {
    Platform::paper()
}

/// The paper-default architecture simulator, resolved through the platform.
///
/// # Errors
///
/// Propagates configuration errors (cannot occur for the paper defaults).
pub fn simulator() -> Result<ArchitectureSimulator, CoreError> {
    Ok(platform()?.simulator().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_lightator_variants_match_table_one() {
        let variants = lightator_variants();
        assert_eq!(variants.len(), 5);
        assert_eq!(variants[0].0, "Lightator [4:4]");
        assert_eq!(variants[3].0, "Lightator-MX [4:4][3:4]");
    }

    #[test]
    fn platform_and_simulator_build() {
        assert!(platform().is_ok());
        assert!(simulator().is_ok());
    }

    #[test]
    fn precisions_use_the_canonical_constructors() {
        assert_eq!(
            PRECISIONS,
            [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()]
        );
    }
}
