//! Smoke tests for the experiment harness: every table and figure of the
//! paper regenerates and reproduces its qualitative claims.

use lightator_bench_smoke::*;

/// The smoke checks recompute the key quantities directly from the public
/// API (rather than calling into `lightator_bench::table1` etc.) so they
/// stay meaningful even if the harness's own aggregation changes.
mod lightator_bench_smoke {
    pub use lightator_suite::baselines::electronic::ElectronicBaseline;
    pub use lightator_suite::baselines::optical::OpticalBaseline;
    pub use lightator_suite::core::config::LightatorConfig;
    pub use lightator_suite::core::sim::ArchitectureSimulator;
    pub use lightator_suite::nn::quant::{Precision, PrecisionSchedule};
    pub use lightator_suite::nn::spec::NetworkSpec;
}

/// Table 1's central claims: Lightator's power is an order of magnitude below
/// every photonic baseline and two orders below the GPU, while its efficiency
/// beats the best baseline.
#[test]
fn table1_power_and_efficiency_claims() {
    let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("simulator");
    let lenet = NetworkSpec::lenet();
    let vgg9 = NetworkSpec::vgg9(100);

    let lightator_power = sim
        .platform_max_power(&vgg9, PrecisionSchedule::Uniform(Precision::w3a4()))
        .expect("power")
        .watts();
    let lightator_fps = sim
        .simulate(&lenet, PrecisionSchedule::Uniform(Precision::w3a4()))
        .expect("sim")
        .fps();
    let lightator_kfpsw = lightator_fps / 1e3 / lightator_power;

    // Against photonic baselines.
    let mut best_baseline_kfpsw = 0.0f64;
    for design in OpticalBaseline::table1_designs() {
        assert!(
            design.max_power().watts() > 10.0 * lightator_power,
            "{} power {} not >> Lightator {}",
            design.name(),
            design.max_power().watts(),
            lightator_power
        );
        best_baseline_kfpsw = best_baseline_kfpsw.max(design.kfps_per_watt(&lenet));
    }
    assert!(
        lightator_kfpsw > best_baseline_kfpsw,
        "Lightator {lightator_kfpsw} KFPS/W must beat the best baseline {best_baseline_kfpsw}"
    );

    // Against the GPU (paper: ~73x lower power).
    let gpu = ElectronicBaseline::gpu_rtx3060ti();
    assert!(gpu.power().watts() / lightator_power > 30.0);
}

/// Fig. 10's claim: Lightator runs AlexNet and VGG16 several times faster
/// than all four electronic edge accelerators.
#[test]
fn fig10_lightator_is_faster_than_electronic_designs() {
    let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("simulator");
    let schedule = PrecisionSchedule::Uniform(Precision::w4a4());
    for network in [NetworkSpec::alexnet(), NetworkSpec::vgg16()] {
        let lightator_ms = sim
            .simulate(&network, schedule)
            .expect("sim")
            .frame_latency
            .ms();
        for design in ElectronicBaseline::fig10_designs() {
            let other_ms = design.execution_time(&network).ms();
            assert!(
                other_ms / lightator_ms > 3.0,
                "{} is only {:.1}x slower than Lightator on {}",
                design.name(),
                other_ms / lightator_ms,
                network.name()
            );
        }
    }
}

/// Fig. 8's claim: reducing the weight bit-width from \[4:4\] to \[2:4\] yields
/// a ~2x-3x power saving on LeNet, layer by layer.
#[test]
fn fig8_bit_width_scaling_saves_power() {
    let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("simulator");
    let lenet = NetworkSpec::lenet();
    let hi = sim
        .simulate(&lenet, PrecisionSchedule::Uniform(Precision::w4a4()))
        .expect("sim");
    let lo = sim
        .simulate(&lenet, PrecisionSchedule::Uniform(Precision::w2a4()))
        .expect("sim");
    for (layer_hi, layer_lo) in hi.layers.iter().zip(&lo.layers) {
        assert!(layer_hi.power.total().watts() >= layer_lo.power.total().watts());
    }
    let gain = hi.frame_energy.joules() / lo.frame_energy.joules();
    assert!(gain > 1.5 && gain < 5.0, "energy gain {gain}");
}

/// Fig. 9's claim: DACs dominate every weighted layer's power on VGG9.
#[test]
fn fig9_dacs_dominate() {
    let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("simulator");
    let report = sim
        .simulate(
            &NetworkSpec::vgg9(10),
            PrecisionSchedule::Uniform(Precision::w3a4()),
        )
        .expect("sim");
    for layer in report
        .layers
        .iter()
        .filter(|l| l.kind == "conv" || l.kind == "fc")
    {
        assert!(
            layer.power.dac_share() > 0.5,
            "layer {} DAC share {:.2}",
            layer.index,
            layer.power.dac_share()
        );
    }
}
