//! Error type shared by the photonic device models.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the photonic device models.
///
/// ```
/// use lightator_photonics::PhotonicsError;
/// let err = PhotonicsError::WeightOutOfRange { weight: 1.5 };
/// assert!(err.to_string().contains("1.5"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PhotonicsError {
    /// A weight outside the representable transmission range was requested.
    WeightOutOfRange {
        /// The offending weight value.
        weight: f64,
    },
    /// A requested detuning exceeds the tunable range of the device.
    DetuningOutOfRange {
        /// Requested detuning in nanometres.
        requested_nm: f64,
        /// Maximum supported detuning in nanometres.
        max_nm: f64,
    },
    /// A drive level beyond the supported number of levels was requested.
    DriveLevelOutOfRange {
        /// Requested level.
        level: u16,
        /// Number of supported levels.
        levels: u16,
    },
    /// A configuration parameter was invalid (non-positive, NaN, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
    },
    /// Vector lengths passed to a multi-element operation disagree.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// More WDM channels were requested than the grid supports.
    ChannelOutOfRange {
        /// Requested channel index.
        channel: usize,
        /// Number of channels in the grid.
        channels: usize,
    },
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WeightOutOfRange { weight } => {
                write!(
                    f,
                    "weight {weight} is outside the representable range [0, 1]"
                )
            }
            Self::DetuningOutOfRange {
                requested_nm,
                max_nm,
            } => write!(
                f,
                "requested detuning of {requested_nm} nm exceeds the tunable range of {max_nm} nm"
            ),
            Self::DriveLevelOutOfRange { level, levels } => write!(
                f,
                "drive level {level} is outside the supported range of {levels} levels"
            ),
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            Self::LengthMismatch { expected, actual } => write!(
                f,
                "length mismatch: expected {expected} elements, got {actual}"
            ),
            Self::ChannelOutOfRange { channel, channels } => write!(
                f,
                "channel index {channel} is outside the WDM grid of {channels} channels"
            ),
        }
    }
}

impl StdError for PhotonicsError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, PhotonicsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<PhotonicsError> = vec![
            PhotonicsError::WeightOutOfRange { weight: 2.0 },
            PhotonicsError::DetuningOutOfRange {
                requested_nm: 5.0,
                max_nm: 2.0,
            },
            PhotonicsError::DriveLevelOutOfRange {
                level: 99,
                levels: 16,
            },
            PhotonicsError::InvalidParameter {
                name: "q_factor",
                value: -1.0,
            },
            PhotonicsError::LengthMismatch {
                expected: 9,
                actual: 3,
            },
            PhotonicsError::ChannelOutOfRange {
                channel: 12,
                channels: 9,
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhotonicsError>();
    }
}
