//! Regenerates Fig. 9: VGG9 layer-wise power breakdown on Lightator \[3:4\].

use lightator_bench::fig9;

fn main() {
    match fig9::generate() {
        Ok(data) => print!("{}", fig9::render(&data)),
        Err(err) => {
            eprintln!("fig9 harness failed: {err}");
            std::process::exit(1);
        }
    }
}
