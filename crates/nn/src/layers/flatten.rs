//! Flatten layer bridging convolutional and fully-connected stages.

use crate::error::{NnError, Result};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Flattens any input tensor into a 1-D vector, remembering the original
/// shape so gradients can be folded back.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Output shape for any input shape.
    #[must_use]
    pub fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for uniformity with the other layers.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.cached_shape = Some(input.shape().to_vec());
        input.reshaped(&[input.len()])
    }

    /// Backward pass: reshapes the gradient back to the cached input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if `forward` has not run or
    /// a shape error if the gradient length differs.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?
            .clone();
        grad_output.reshaped(&shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut flat = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 2, 2]).expect("ok");
        let y = flat.forward(&x).expect("ok");
        assert_eq!(y.shape(), &[12]);
        let g = flat.backward(&y).expect("ok");
        assert_eq!(g.shape(), &[3, 2, 2]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn backward_requires_forward() {
        let mut flat = Flatten::new();
        assert!(flat.backward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn output_shape_is_product() {
        let flat = Flatten::new();
        assert_eq!(flat.output_shape(&[16, 5, 5]), vec![400]);
    }
}
