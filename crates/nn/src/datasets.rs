//! Procedurally generated, class-structured synthetic datasets.
//!
//! The paper evaluates on MNIST, CIFAR-10 and CIFAR-100. Those image files
//! are not available in this environment, so the reproduction substitutes
//! procedurally generated datasets with the same tensor shapes and class
//! counts (see DESIGN.md §5). Each class is defined by a deterministic
//! prototype pattern (an oriented sinusoidal grating plus a class-specific
//! blob); samples are noisy, slightly shifted instances of their class
//! prototype. The resulting classification task is learnable by the same
//! topologies the paper trains, and — crucially for the reproduction — its
//! accuracy degrades with weight quantization and analog noise the same way
//! a natural-image task does.

use crate::error::{NnError, Result};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One labelled sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input tensor of shape `[C, H, W]`, values in `[0, 1]`.
    pub input: Tensor,
    /// Class label in `0..classes`.
    pub label: usize,
}

/// A labelled dataset split into train and test portions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    classes: usize,
    input_shape: [usize; 3],
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl Dataset {
    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Shape of every input tensor.
    #[must_use]
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// Training samples.
    #[must_use]
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Test samples.
    #[must_use]
    pub fn test(&self) -> &[Sample] {
        &self.test
    }
}

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of classes.
    pub classes: usize,
    /// Channels (1 = grayscale, 3 = RGB).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Additive noise amplitude applied to every pixel.
    pub noise: f64,
    /// Maximum spatial jitter (in pixels) applied to each sample.
    pub max_shift: usize,
}

impl SyntheticConfig {
    /// MNIST-like configuration: 10 classes of 1×28×28 images.
    #[must_use]
    pub fn mnist_like() -> Self {
        Self {
            classes: 10,
            channels: 1,
            height: 28,
            width: 28,
            train_per_class: 30,
            test_per_class: 10,
            noise: 0.08,
            max_shift: 2,
        }
    }

    /// CIFAR-10-like configuration: 10 classes of 3×32×32 images.
    #[must_use]
    pub fn cifar10_like() -> Self {
        Self {
            classes: 10,
            channels: 3,
            height: 32,
            width: 32,
            train_per_class: 30,
            test_per_class: 10,
            noise: 0.08,
            max_shift: 2,
        }
    }

    /// CIFAR-100-like configuration: 100 classes of 3×32×32 images.
    #[must_use]
    pub fn cifar100_like() -> Self {
        Self {
            classes: 100,
            channels: 3,
            height: 32,
            width: 32,
            train_per_class: 8,
            test_per_class: 3,
            noise: 0.08,
            max_shift: 2,
        }
    }

    /// A very small configuration for fast unit tests.
    #[must_use]
    pub fn tiny(classes: usize) -> Self {
        Self {
            classes,
            channels: 1,
            height: 12,
            width: 12,
            train_per_class: 12,
            test_per_class: 4,
            noise: 0.05,
            max_shift: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidDataset`] for zero classes, channels,
    /// dimensions or sample counts.
    pub fn validate(&self) -> Result<()> {
        if self.classes == 0
            || self.channels == 0
            || self.height == 0
            || self.width == 0
            || self.train_per_class == 0
        {
            return Err(NnError::InvalidDataset {
                reason: "classes, channels, dimensions and train_per_class must be non-zero"
                    .to_string(),
            });
        }
        if !self.noise.is_finite() || self.noise < 0.0 {
            return Err(NnError::InvalidDataset {
                reason: format!(
                    "noise amplitude {} must be a non-negative number",
                    self.noise
                ),
            });
        }
        Ok(())
    }
}

/// The value of class `label`'s prototype pattern at `(channel, row, col)`.
///
/// The pattern is an oriented sinusoidal grating whose orientation, frequency
/// and phase are deterministic functions of the class, superposed with a
/// class-positioned Gaussian blob. Channels see phase-shifted copies so RGB
/// datasets carry colour structure.
fn prototype_value(
    label: usize,
    classes: usize,
    channel: usize,
    row: f64,
    col: f64,
    height: f64,
    width: f64,
) -> f64 {
    let t = label as f64 / classes.max(1) as f64;
    let angle = t * std::f64::consts::PI;
    let frequency = 2.0 + 4.0 * t;
    let phase = t * 7.0 + channel as f64 * 0.9;
    let u = (row / height) - 0.5;
    let v = (col / width) - 0.5;
    let axis = u * angle.cos() + v * angle.sin();
    let grating = 0.5 + 0.35 * (axis * frequency * std::f64::consts::TAU + phase).sin();

    // Class-specific blob position on a ring.
    let blob_row = 0.5 + 0.3 * (t * std::f64::consts::TAU).sin();
    let blob_col = 0.5 + 0.3 * (t * std::f64::consts::TAU).cos();
    let dr = row / height - blob_row;
    let dc = col / width - blob_col;
    let blob = 0.45 * (-(dr * dr + dc * dc) / 0.02).exp();

    (grating * 0.7 + blob).clamp(0.0, 1.0)
}

/// Generates a synthetic dataset.
///
/// # Errors
///
/// Returns [`NnError::InvalidDataset`] for an invalid configuration.
pub fn generate<R: Rng + ?Sized>(
    name: &str,
    config: SyntheticConfig,
    rng: &mut R,
) -> Result<Dataset> {
    config.validate()?;
    let mut train = Vec::with_capacity(config.classes * config.train_per_class);
    let mut test = Vec::with_capacity(config.classes * config.test_per_class);
    for label in 0..config.classes {
        for sample_index in 0..config.train_per_class + config.test_per_class {
            let sample = generate_sample(label, config, rng)?;
            if sample_index < config.train_per_class {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
    }
    Ok(Dataset {
        name: name.to_string(),
        classes: config.classes,
        input_shape: [config.channels, config.height, config.width],
        train,
        test,
    })
}

fn generate_sample<R: Rng + ?Sized>(
    label: usize,
    config: SyntheticConfig,
    rng: &mut R,
) -> Result<Sample> {
    let (c_n, h_n, w_n) = (config.channels, config.height, config.width);
    let shift_r = if config.max_shift == 0 {
        0i64
    } else {
        rng.gen_range(-(config.max_shift as i64)..=config.max_shift as i64)
    };
    let shift_c = if config.max_shift == 0 {
        0i64
    } else {
        rng.gen_range(-(config.max_shift as i64)..=config.max_shift as i64)
    };
    let mut data = Vec::with_capacity(c_n * h_n * w_n);
    for channel in 0..c_n {
        for row in 0..h_n {
            for col in 0..w_n {
                let r = (row as i64 + shift_r).rem_euclid(h_n as i64) as f64;
                let c = (col as i64 + shift_c).rem_euclid(w_n as i64) as f64;
                let clean =
                    prototype_value(label, config.classes, channel, r, c, h_n as f64, w_n as f64);
                let noise = (rng.gen::<f64>() * 2.0 - 1.0) * config.noise;
                data.push(((clean + noise).clamp(0.0, 1.0)) as f32);
            }
        }
    }
    Ok(Sample {
        input: Tensor::from_vec(data, &[c_n, h_n, w_n])?,
        label,
    })
}

/// Generates the MNIST-like dataset used wherever the paper uses MNIST.
///
/// # Errors
///
/// Never fails for the built-in configuration.
pub fn synthetic_mnist<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    generate("synthetic-mnist", SyntheticConfig::mnist_like(), rng)
}

/// Generates the CIFAR-10-like dataset used wherever the paper uses CIFAR-10.
///
/// # Errors
///
/// Never fails for the built-in configuration.
pub fn synthetic_cifar10<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    generate("synthetic-cifar10", SyntheticConfig::cifar10_like(), rng)
}

/// Generates the CIFAR-100-like dataset used wherever the paper uses
/// CIFAR-100.
///
/// # Errors
///
/// Never fails for the built-in configuration.
pub fn synthetic_cifar100<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    generate("synthetic-cifar100", SyntheticConfig::cifar100_like(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(SyntheticConfig::tiny(0).validate().is_err());
        let mut bad = SyntheticConfig::tiny(2);
        bad.noise = -1.0;
        assert!(bad.validate().is_err());
        assert!(SyntheticConfig::mnist_like().validate().is_ok());
    }

    #[test]
    fn generated_dataset_has_declared_shape_and_counts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = SyntheticConfig::tiny(3);
        let ds = generate("tiny", config, &mut rng).expect("ok");
        assert_eq!(ds.classes(), 3);
        assert_eq!(ds.train().len(), 3 * config.train_per_class);
        assert_eq!(ds.test().len(), 3 * config.test_per_class);
        assert_eq!(ds.input_shape(), [1, 12, 12]);
        for s in ds.train().iter().chain(ds.test()) {
            assert_eq!(s.input.shape(), &[1, 12, 12]);
            assert!(s.label < 3);
            assert!(s.input.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn every_class_is_represented_in_both_splits() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ds = generate("tiny", SyntheticConfig::tiny(4), &mut rng).expect("ok");
        for label in 0..4 {
            assert!(ds.train().iter().any(|s| s.label == label));
            assert!(ds.test().iter().any(|s| s.label == label));
        }
    }

    #[test]
    fn class_prototypes_are_distinguishable() {
        // The mean absolute difference between prototypes of two different
        // classes must exceed the within-class noise, otherwise the synthetic
        // task would be unlearnable.
        let mut rng = SmallRng::seed_from_u64(3);
        let config = SyntheticConfig {
            noise: 0.0,
            max_shift: 0,
            ..SyntheticConfig::tiny(5)
        };
        let ds = generate("tiny", config, &mut rng).expect("ok");
        let a = &ds.train()[0];
        let b = ds
            .train()
            .iter()
            .find(|s| s.label != a.label)
            .expect("exists");
        let diff: f32 = a
            .input
            .data()
            .iter()
            .zip(b.input.data())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.input.len() as f32;
        assert!(diff > 0.05, "inter-class mean difference {diff} too small");
    }

    #[test]
    fn same_seed_reproduces_dataset() {
        let config = SyntheticConfig::tiny(2);
        let a = generate("a", config, &mut SmallRng::seed_from_u64(9)).expect("ok");
        let b = generate("b", config, &mut SmallRng::seed_from_u64(9)).expect("ok");
        assert_eq!(a.train()[0].input, b.train()[0].input);
    }

    #[test]
    fn named_generators_match_paper_shapes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(
            synthetic_mnist(&mut rng).expect("ok").input_shape(),
            [1, 28, 28]
        );
        assert_eq!(
            synthetic_cifar10(&mut rng).expect("ok").input_shape(),
            [3, 32, 32]
        );
        let c100 = synthetic_cifar100(&mut rng).expect("ok");
        assert_eq!(c100.input_shape(), [3, 32, 32]);
        assert_eq!(c100.classes(), 100);
    }
}
