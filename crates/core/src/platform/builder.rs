//! Platform configuration and construction: [`PlatformConfig`], the fluent
//! [`PlatformBuilder`] and the validated [`Platform`] front door.
//!
//! A [`Platform`] is immutable once built: [`PlatformBuilder::build`]
//! validates the whole configuration exactly once (geometry, periphery,
//! sensor, CA divisibility) so that opening sessions and compiling plans
//! can assume a consistent device. The builder ships the paper's presets
//! and chainable setters for every knob a deployment tunes.

use crate::backend::{Backend, BackendId, PhotonicBackend};
use crate::ca::CaConfig;
use crate::config::{LightatorConfig, OcGeometry, PeripheryCounts, TimingConfig};
use crate::error::{CoreError, Result};
use crate::platform::session::Session;
use crate::platform::workload::Workload;
use crate::sim::{ArchitectureSimulator, SimulationReport};
use lightator_nn::quant::{Precision, PrecisionSchedule};
use lightator_nn::spec::NetworkSpec;
use lightator_photonics::noise::NoiseConfig;
use lightator_sensor::array::SensorArrayConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Complete, serialisable description of one Lightator platform: hardware,
/// sensor, acquisition mode, precision schedule and the analog noise seed.
///
/// Build values through [`PlatformBuilder`]; round-trip them through
/// [`PlatformConfig::to_text`] / [`PlatformConfig::from_text`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Optical core, periphery, power, noise and timing parameters.
    pub hardware: LightatorConfig,
    /// The ADC-less sensor design in front of the optical core.
    pub sensor: SensorArrayConfig,
    /// Compressive-acquisition configuration (`None` bypasses the CA banks).
    pub ca: Option<CaConfig>,
    /// Precision schedule applied to every weighted layer.
    pub schedule: PrecisionSchedule,
    /// Seed of the analog-noise stream (deterministic runs for a fixed seed).
    pub seed: u64,
    /// Worker threads each session tiles its MAC loops across
    /// (1 = sequential). Tiling is bit-exact for any worker count — noise
    /// draws are keyed by `(seed, frame, channel, element)`, not by
    /// evaluation order — so this knob trades wall-clock time only.
    pub workers: usize,
}

impl PlatformConfig {
    /// Shape of the tensor the acquisition path feeds to the first DNN
    /// layer (`[1, h, w]`): the CA-compressed map when CA is enabled, the
    /// raw photosite grid otherwise.
    #[must_use]
    pub fn acquired_shape(&self) -> [usize; 3] {
        match &self.ca {
            Some(ca) => [
                1,
                self.sensor.height / ca.pooling_window,
                self.sensor.width / ca.pooling_window,
            ],
            None => [1, self.sensor.height, self.sensor.width],
        }
    }
}

/// Fluent builder for a [`Platform`].
///
/// All setters are chainable; [`PlatformBuilder::build`] validates the whole
/// configuration once and returns rich [`CoreError::InvalidConfig`] errors
/// naming the violated constraint.
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    config: PlatformConfig,
    backends: Vec<Arc<dyn Backend>>,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::paper()
    }
}

impl PlatformBuilder {
    /// The paper's platform: 96×6×9 optical core, 256×256 sensor, 2×2 CA,
    /// uniform `[4:4]` precision, default analog noise.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            config: PlatformConfig {
                hardware: LightatorConfig::paper(),
                sensor: SensorArrayConfig::paper_default()
                    // The paper constants are fixed at compile time and
                    // covered by sensor-crate tests. lightator: allow(no-unwrap)
                    .expect("paper sensor defaults are valid"),
                ca: Some(CaConfig::default()),
                schedule: PrecisionSchedule::Uniform(Precision::w4a4()),
                seed: 7,
                workers: crate::exec::default_workers(),
            },
            backends: Vec::new(),
        }
    }

    /// Low-power preset: uniform `[2:4]` weights (gating half the DAC
    /// slices) and aggressive 4×4 compressive acquisition.
    #[must_use]
    pub fn low_power() -> Self {
        Self::paper()
            .precision(PrecisionSchedule::Uniform(Precision::w2a4()))
            .compressive_acquisition(CaConfig {
                pooling_window: 4,
                rgb_to_grayscale: true,
            })
    }

    /// High-throughput preset: the paper's mixed `[4:4][2:4]` schedule
    /// (first-layer fidelity, low-power deeper layers) with 2×2 CA — the
    /// configuration family with the best KFPS/W in Table 1.
    #[must_use]
    pub fn high_throughput() -> Self {
        Self::paper().precision(PrecisionSchedule::Mixed {
            first: Precision::w4a4(),
            rest: Precision::w2a4(),
        })
    }

    /// Sets the optical-core geometry.
    #[must_use]
    pub fn geometry(mut self, geometry: OcGeometry) -> Self {
        self.config.hardware.geometry = geometry;
        self
    }

    /// Sets the electronic periphery block counts.
    #[must_use]
    pub fn periphery(mut self, periphery: PeripheryCounts) -> Self {
        self.config.hardware.periphery = periphery;
        self
    }

    /// Sets the platform timing parameters.
    #[must_use]
    pub fn timing(mut self, timing: TimingConfig) -> Self {
        self.config.hardware.timing = timing;
        self
    }

    /// Sets the analog noise / non-ideality configuration.
    #[must_use]
    pub fn noise(mut self, noise: NoiseConfig) -> Self {
        self.config.hardware.noise = noise;
        self
    }

    /// Sets the precision schedule applied to weighted layers.
    #[must_use]
    pub fn precision(mut self, schedule: PrecisionSchedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Enables compressive acquisition with the given configuration.
    #[must_use]
    pub fn compressive_acquisition(mut self, ca: CaConfig) -> Self {
        self.config.ca = Some(ca);
        self.config.hardware.use_compressive_acquisition = true;
        self
    }

    /// Disables compressive acquisition (full-resolution raw readout).
    #[must_use]
    pub fn without_compressive_acquisition(mut self) -> Self {
        self.config.ca = None;
        self.config.hardware.use_compressive_acquisition = false;
        self
    }

    /// Sets the sensor resolution (photosites), keeping the paper's pixel
    /// and comparator designs.
    #[must_use]
    pub fn sensor_resolution(mut self, height: usize, width: usize) -> Self {
        self.config.sensor.height = height;
        self.config.sensor.width = width;
        self
    }

    /// Sets the analog-noise seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the number of worker threads each session tiles its MAC loops
    /// across (1 = sequential, the default unless the
    /// `LIGHTATOR_DEFAULT_WORKERS` environment variable overrides it).
    /// Tiling is bit-exact for any worker count, so this knob trades
    /// wall-clock time only, never results.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Registers an execution backend, making its [`BackendId`] resolvable
    /// through [`Platform::backend`] / [`Platform::session_on`].
    ///
    /// The photonic default is always resolvable and never needs
    /// registration. Registering a backend whose id matches an earlier
    /// registration (or `"photonic"`) overrides the earlier resolution.
    #[must_use]
    pub fn register_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backends.push(backend);
        self
    }

    /// Validates the configuration once and builds the platform.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the violated
    /// constraint: invalid optical-core geometry or periphery, a zero-sized
    /// sensor, a CA window that does not divide the sensor resolution, or a
    /// degenerate CA configuration.
    pub fn build(self) -> Result<Platform> {
        let Self { config, backends } = self;
        config.hardware.validate()?;
        // Noise sigmas are RMS magnitudes: a negative value would silently
        // sign-flip every draw of its channel (and NaN would poison all of
        // them), so reject both here rather than at draw time.
        let sigmas = [
            (
                "vcsel_relative_sigma",
                config.hardware.noise.vcsel_relative_sigma,
            ),
            (
                "detector_relative_sigma",
                config.hardware.noise.detector_relative_sigma,
            ),
            ("weight_sigma", config.hardware.noise.weight_sigma),
        ];
        for (name, sigma) in sigmas {
            if !sigma.is_finite() || sigma < 0.0 {
                return Err(CoreError::invalid_config(
                    name,
                    sigma,
                    format!(
                        "noise sigmas are RMS magnitudes and must be finite and \
                         non-negative; use NoiseConfig::scaled with a non-negative \
                         factor (negative factors are clamped to zero) or zero the \
                         `{name}` channel explicitly to ablate it"
                    ),
                ));
            }
        }
        if config.workers == 0 {
            return Err(CoreError::invalid_config(
                "workers",
                0.0,
                "sessions need at least one execution worker (1 = sequential; \
                 larger counts tile the MAC loops bit-exactly)",
            ));
        }
        if config.sensor.height == 0 || config.sensor.width == 0 {
            return Err(CoreError::invalid_config(
                "sensor_resolution",
                (config.sensor.height * config.sensor.width) as f64,
                format!(
                    "the sensor needs at least one photosite per axis \
                     (got {}x{})",
                    config.sensor.height, config.sensor.width
                ),
            ));
        }
        if let Some(ca) = &config.ca {
            ca.validate()?;
            if !config.sensor.height.is_multiple_of(ca.pooling_window)
                || !config.sensor.width.is_multiple_of(ca.pooling_window)
            {
                return Err(CoreError::invalid_config(
                    "pooling_window",
                    ca.pooling_window as f64,
                    format!(
                        "the CA pooling window must divide the sensor resolution \
                         ({}x{} is not divisible by {})",
                        config.sensor.height, config.sensor.width, ca.pooling_window
                    ),
                ));
            }
        }
        let simulator = ArchitectureSimulator::new(config.hardware.clone())?;
        Ok(Platform {
            config,
            simulator,
            backends,
        })
    }
}

/// A validated Lightator platform: the single entry point for opening
/// workload [`Session`]s and for architecture-level what-if simulation.
#[derive(Debug, Clone)]
pub struct Platform {
    config: PlatformConfig,
    simulator: ArchitectureSimulator,
    /// Registered execution backends (the photonic default is implicit).
    backends: Vec<Arc<dyn Backend>>,
}

impl Platform {
    /// Starts a fluent builder seeded with the paper's configuration.
    #[must_use]
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::paper()
    }

    /// The paper's platform, built directly.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in defaults; the `Result` mirrors
    /// [`PlatformBuilder::build`].
    pub fn paper() -> Result<Self> {
        PlatformBuilder::paper().build()
    }

    /// Builds a platform from a previously validated configuration (e.g. one
    /// loaded through [`PlatformConfig::from_text`]).
    ///
    /// # Errors
    ///
    /// Same as [`PlatformBuilder::build`].
    pub fn from_config(config: PlatformConfig) -> Result<Self> {
        PlatformBuilder {
            config,
            backends: Vec::new(),
        }
        .build()
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The architecture simulator bound to this platform's hardware.
    #[must_use]
    pub fn simulator(&self) -> &ArchitectureSimulator {
        &self.simulator
    }

    /// Simulates a network spec under the platform's precision schedule.
    ///
    /// # Errors
    ///
    /// Propagates mapping/simulation errors.
    pub fn simulate(&self, network: &NetworkSpec) -> Result<SimulationReport> {
        self.simulator.simulate(network, self.config.schedule)
    }

    /// Simulates a network spec under an explicit precision schedule (for
    /// precision sweeps that keep the rest of the platform fixed).
    ///
    /// # Errors
    ///
    /// Propagates mapping/simulation errors.
    pub fn simulate_with(
        &self,
        network: &NetworkSpec,
        schedule: PrecisionSchedule,
    ) -> Result<SimulationReport> {
        self.simulator.simulate(network, schedule)
    }

    /// Shape of the tensor the acquisition path feeds to the first DNN layer
    /// (`[1, h, w]`): the CA-compressed map when CA is enabled, the raw
    /// photosite grid otherwise.
    #[must_use]
    pub fn acquired_shape(&self) -> [usize; 3] {
        self.config.acquired_shape()
    }

    /// Opens a session running `workload` on this platform.
    ///
    /// The session owns the full sensor → CA → optical-core state, the
    /// workload's **compiled plan** (pre-encoded MR weight bank, reused by
    /// every later execution) and a workload-specific performance model, so
    /// every [`Session::run`] yields a complete
    /// [`Report`](crate::platform::Report).
    ///
    /// # Errors
    ///
    /// Propagates sensor/CA/executor/plan construction errors and
    /// mapping/simulation errors for the workload's performance spec.
    pub fn session(&self, workload: Workload) -> Result<Session> {
        self.session_seeded(workload, self.config.seed)
    }

    /// Opens a session like [`Platform::session`], but with an explicit
    /// analog-noise seed instead of the platform's.
    ///
    /// A serving pool uses this to model physically distinct chips: shards
    /// with different seeds draw decorrelated noise, while shards sharing
    /// the platform seed (plus the frame-indexed noise streams of
    /// [`Session::seek_frame`]) reproduce a single sequential session bit
    /// for bit.
    ///
    /// # Errors
    ///
    /// Same as [`Platform::session`].
    pub fn session_seeded(&self, workload: Workload, seed: u64) -> Result<Session> {
        Session::open(self, workload, seed)
    }

    /// Opens a session like [`Platform::session`], but lowered onto the
    /// backend registered under `backend` instead of the photonic default.
    ///
    /// # Errors
    ///
    /// Same as [`Platform::session`], plus an error when the backend id is
    /// unknown or names an analytical backend that cannot execute.
    pub fn session_on(&self, workload: Workload, backend: &BackendId) -> Result<Session> {
        self.session_seeded_on(workload, self.config.seed, backend)
    }

    /// Opens a session on an explicit backend with an explicit seed — the
    /// combination a heterogeneous serving pool uses per shard.
    ///
    /// # Errors
    ///
    /// Same as [`Platform::session_on`].
    pub fn session_seeded_on(
        &self,
        workload: Workload,
        seed: u64,
        backend: &BackendId,
    ) -> Result<Session> {
        Session::open_on(self, workload, seed, backend)
    }

    /// Resolves a registered backend by id.
    ///
    /// The photonic default resolves even on platforms that registered
    /// nothing; registered backends take precedence over the implicit
    /// default when ids collide.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown id, listing the
    /// resolvable ids.
    pub fn backend(&self, id: &BackendId) -> Result<Arc<dyn Backend>> {
        if let Some(backend) = self.backends.iter().find(|b| &b.id() == id) {
            return Ok(Arc::clone(backend));
        }
        if id.is_photonic() {
            return Ok(Arc::new(PhotonicBackend::new()));
        }
        let mut known: Vec<String> = self.backends.iter().map(|b| b.id().to_string()).collect();
        known.insert(0, BackendId::photonic().to_string());
        Err(CoreError::ModelMismatch {
            reason: format!(
                "no backend registered under `{id}` on this platform \
                 (resolvable: {})",
                known.join(", ")
            ),
        })
    }

    /// Ids of every backend this platform resolves: the implicit photonic
    /// default followed by the registered backends, in registration order.
    #[must_use]
    pub fn backend_ids(&self) -> Vec<BackendId> {
        let mut ids = vec![BackendId::photonic()];
        for backend in &self.backends {
            let id = backend.id();
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        ids
    }

    /// Spec of the acquisition pass itself: one optical weighted-sum layer
    /// (the fused CA convolution, or the per-photosite readout without CA).
    pub(crate) fn acquisition_spec(&self) -> Result<NetworkSpec> {
        crate::verify::acquisition_spec_of(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_indivisible_ca_window() {
        let err = Platform::builder()
            .sensor_resolution(10, 10)
            .compressive_acquisition(CaConfig {
                pooling_window: 4,
                rgb_to_grayscale: true,
            })
            .build()
            .expect_err("10 is not divisible by 4");
        assert!(err.to_string().contains("divide the sensor resolution"));
    }

    #[test]
    fn builder_rejects_zero_sensor() {
        assert!(Platform::builder().sensor_resolution(0, 8).build().is_err());
    }

    #[test]
    fn builder_rejects_negative_noise_sigmas() {
        // Regression: `NoiseConfig::scaled(-1.0)` used to produce negative
        // sigmas that the sampler silently treated as sign-flipped noise.
        let err = Platform::builder()
            .noise(NoiseConfig {
                weight_sigma: -0.004,
                ..NoiseConfig::default()
            })
            .build()
            .expect_err("negative sigma must be rejected");
        let message = err.to_string();
        assert!(message.contains("weight_sigma"), "{message}");
        assert!(message.contains("non-negative"), "{message}");
        assert!(Platform::builder()
            .noise(NoiseConfig {
                vcsel_relative_sigma: f64::NAN,
                ..NoiseConfig::default()
            })
            .build()
            .is_err());
        assert!(Platform::builder()
            .noise(NoiseConfig {
                detector_relative_sigma: -1.0,
                ..NoiseConfig::default()
            })
            .build()
            .is_err());
        // ... and the documented clamp keeps `scaled` safe to pass through.
        assert!(Platform::builder()
            .noise(NoiseConfig::default().scaled(-1.0))
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_zero_workers_and_accepts_many() {
        let err = Platform::builder()
            .workers(0)
            .build()
            .expect_err("zero workers must be rejected");
        assert!(err.to_string().contains("workers"));
        let platform = Platform::builder().workers(8).build().expect("ok");
        assert_eq!(platform.config().workers, 8);
    }

    #[test]
    fn presets_build_and_differ() {
        let paper = PlatformBuilder::paper().build().expect("paper");
        let low_power = PlatformBuilder::low_power().build().expect("low power");
        let high_throughput = PlatformBuilder::high_throughput()
            .build()
            .expect("high throughput");
        assert_eq!(
            paper.config().schedule,
            PrecisionSchedule::Uniform(Precision::w4a4())
        );
        assert_eq!(
            low_power.config().schedule,
            PrecisionSchedule::Uniform(Precision::w2a4())
        );
        assert!(matches!(
            high_throughput.config().schedule,
            PrecisionSchedule::Mixed { .. }
        ));
        // Low power compresses harder.
        assert_eq!(low_power.acquired_shape(), [1, 64, 64]);
        assert_eq!(paper.acquired_shape(), [1, 128, 128]);
    }

    #[test]
    fn config_and_platform_agree_on_the_acquired_shape() {
        let with_ca = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        assert_eq!(with_ca.config().acquired_shape(), [1, 8, 8]);
        assert_eq!(with_ca.acquired_shape(), with_ca.config().acquired_shape());
        let without = Platform::builder()
            .sensor_resolution(16, 16)
            .without_compressive_acquisition()
            .build()
            .expect("platform");
        assert_eq!(without.acquired_shape(), [1, 16, 16]);
    }

    #[test]
    fn platform_simulates_specs_directly() {
        let platform = Platform::paper().expect("paper");
        let report = platform.simulate(&NetworkSpec::lenet()).expect("ok");
        assert!(report.kfps_per_watt() > 0.0);
        let lower = platform
            .simulate_with(
                &NetworkSpec::lenet(),
                PrecisionSchedule::Uniform(Precision::w2a4()),
            )
            .expect("ok");
        assert!(lower.max_power.watts() < report.max_power.watts());
    }
}
