//! Directly-Modulated VCSEL Array (DMVA).
//!
//! The DMVA is the interface between the electronic side of Lightator (pixel
//! array or the digital output of the previous DNN layer) and the optical
//! core. It has three components (paper Fig. 4):
//!
//! * the [`ComparatorReadCircuit`] that digitises a pixel voltage into a
//!   thermometer code,
//! * a [`Selector`] that chooses between the pixel path (first layer) and the
//!   feedback path carrying the previous layer's output (subsequent layers),
//! * a [`VcselDriver`] whose 16 parallel transistors convert the selected
//!   4-bit code into a drive current for a wavelength-assigned VCSEL.
//!
//! Because the activation is encoded directly in the laser intensity, no DAC
//! is needed anywhere on the activation path — the key source of Lightator's
//! power advantage over MR-per-activation designs.

use crate::crc::{ComparatorReadCircuit, CrcReading};
use crate::error::{Result, SensorError};
use lightator_photonics::units::{Power, Voltage, Wavelength};
use lightator_photonics::vcsel::{ModulatedVcsel, VcselConfig};
use serde::{Deserialize, Serialize};

/// Number of parallel driving transistors in a VCSEL driver (paper Fig. 4(c)).
pub const DRIVER_TRANSISTORS: u16 = 16;

/// Where the DMVA takes its activation from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ActivationSource {
    /// First layer: the pixel array drives the VCSELs through the CRC.
    #[default]
    PixelArray,
    /// Subsequent layers: the previous layer's digital output is fed back.
    PreviousLayer,
}

/// The selector multiplexing between the pixel path and the feedback path
/// (paper Fig. 4(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Selector {
    source: ActivationSource,
}

impl Selector {
    /// Creates a selector initially wired to the pixel array.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently selected source.
    #[must_use]
    pub fn source(&self) -> ActivationSource {
        self.source
    }

    /// Switches the source.
    pub fn select(&mut self, source: ActivationSource) {
        self.source = source;
    }

    /// Resolves an activation code from the two candidate inputs according to
    /// the selected source.
    #[must_use]
    pub fn resolve(&self, pixel_code: u8, feedback_code: u8) -> u8 {
        match self.source {
            ActivationSource::PixelArray => pixel_code,
            ActivationSource::PreviousLayer => feedback_code,
        }
    }
}

/// Configuration of a single VCSEL driver slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcselDriverConfig {
    /// Laser parameters of the driven VCSEL.
    pub vcsel: VcselConfig,
    /// Static bias power of the driver (pre-driver, bias network), in mW.
    pub static_power_mw: f64,
    /// Switching energy per transistor toggle, in fJ.
    pub switching_energy_fj: f64,
}

impl Default for VcselDriverConfig {
    fn default() -> Self {
        Self {
            vcsel: VcselConfig::default(),
            static_power_mw: 0.015,
            switching_energy_fj: 1.8,
        }
    }
}

/// A 16-transistor VCSEL driver converting a 4-bit code into laser light of
/// proportional intensity on a fixed wavelength.
///
/// ```
/// use lightator_sensor::dmva::{VcselDriver, VcselDriverConfig};
/// use lightator_photonics::units::Wavelength;
///
/// # fn main() -> Result<(), lightator_sensor::SensorError> {
/// let driver = VcselDriver::new(VcselDriverConfig::default(), Wavelength::from_nm(1550.0))?;
/// let dim = driver.emit(3)?;
/// let bright = driver.emit(12)?;
/// assert!(bright > dim);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcselDriver {
    config: VcselDriverConfig,
    laser: ModulatedVcsel,
}

impl VcselDriver {
    /// Creates a driver for a VCSEL emitting at `wavelength`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] for invalid static power or
    /// switching energy, or a photonics error for an invalid laser
    /// configuration.
    pub fn new(config: VcselDriverConfig, wavelength: Wavelength) -> Result<Self> {
        if !config.static_power_mw.is_finite() || config.static_power_mw < 0.0 {
            return Err(SensorError::InvalidParameter {
                name: "static_power_mw",
                value: config.static_power_mw,
            });
        }
        if !config.switching_energy_fj.is_finite() || config.switching_energy_fj < 0.0 {
            return Err(SensorError::InvalidParameter {
                name: "switching_energy_fj",
                value: config.switching_energy_fj,
            });
        }
        let laser = ModulatedVcsel::new(config.vcsel, wavelength, DRIVER_TRANSISTORS)?;
        Ok(Self { config, laser })
    }

    /// The driver configuration.
    #[must_use]
    pub fn config(&self) -> &VcselDriverConfig {
        &self.config
    }

    /// The wavelength this driver's laser emits on.
    #[must_use]
    pub fn wavelength(&self) -> Wavelength {
        self.laser.vcsel().wavelength()
    }

    /// Emits the normalised optical intensity (`[0, 1]`) for a 4-bit code.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Photonics`] if the code exceeds 15.
    pub fn emit(&self, code: u8) -> Result<f64> {
        Ok(self.laser.normalized_intensity(u16::from(code))?)
    }

    /// Electrical power drawn while emitting a 4-bit code (laser + driver
    /// static power).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Photonics`] if the code exceeds 15.
    pub fn electrical_power(&self, code: u8) -> Result<Power> {
        let laser = self.laser.electrical_power(u16::from(code))?;
        Ok(laser + Power::from_mw(self.config.static_power_mw))
    }
}

/// One DMVA lane: CRC + selector + VCSEL driver serving one optical-core
/// input wavelength.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmvaLane {
    crc: ComparatorReadCircuit,
    selector: Selector,
    driver: VcselDriver,
}

impl DmvaLane {
    /// Creates a lane from its three components.
    #[must_use]
    pub fn new(crc: ComparatorReadCircuit, driver: VcselDriver) -> Self {
        Self {
            crc,
            selector: Selector::new(),
            driver,
        }
    }

    /// Creates a lane with default CRC and driver configurations, emitting on
    /// `wavelength`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the CRC or driver constructors.
    pub fn with_defaults(wavelength: Wavelength) -> Result<Self> {
        Ok(Self::new(
            ComparatorReadCircuit::for_default_pixel()?,
            VcselDriver::new(VcselDriverConfig::default(), wavelength)?,
        ))
    }

    /// The lane's selector state.
    #[must_use]
    pub fn source(&self) -> ActivationSource {
        self.selector.source()
    }

    /// Switches the lane between the pixel path and the feedback path.
    pub fn select(&mut self, source: ActivationSource) {
        self.selector.select(source);
    }

    /// The comparator read circuit.
    #[must_use]
    pub fn crc(&self) -> &ComparatorReadCircuit {
        &self.crc
    }

    /// The VCSEL driver.
    #[must_use]
    pub fn driver(&self) -> &VcselDriver {
        &self.driver
    }

    /// Digitises a pixel voltage through the CRC (first-layer path).
    #[must_use]
    pub fn read_pixel(&self, pixel_voltage: Voltage) -> CrcReading {
        self.crc.read(pixel_voltage)
    }

    /// Produces the optical activation for this lane given both candidate
    /// inputs; which one is used depends on the selector.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Photonics`] if the resolved code exceeds 15
    /// (cannot happen for well-formed inputs).
    pub fn activate(&self, pixel_voltage: Voltage, feedback_code: u8) -> Result<f64> {
        let pixel_code = self.crc.read_code(pixel_voltage);
        let code = self.selector.resolve(pixel_code, feedback_code.min(15));
        self.driver.emit(code)
    }

    /// Electrical power of the lane while emitting `code`: CRC (only when the
    /// pixel path is selected) plus driver plus laser.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Photonics`] if the code exceeds 15.
    pub fn power(&self, code: u8) -> Result<Power> {
        let crc_power = match self.selector.source() {
            ActivationSource::PixelArray => self.crc.power(),
            ActivationSource::PreviousLayer => Power::zero(),
        };
        Ok(crc_power + self.driver.electrical_power(code)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::{Pixel, PixelConfig};

    fn lane() -> DmvaLane {
        DmvaLane::with_defaults(Wavelength::from_nm(1550.0)).expect("valid")
    }

    #[test]
    fn selector_defaults_to_pixel_array() {
        let s = Selector::new();
        assert_eq!(s.source(), ActivationSource::PixelArray);
        assert_eq!(s.resolve(7, 12), 7);
    }

    #[test]
    fn selector_switches_to_feedback() {
        let mut s = Selector::new();
        s.select(ActivationSource::PreviousLayer);
        assert_eq!(s.resolve(7, 12), 12);
    }

    #[test]
    fn driver_intensity_monotone_in_code() {
        let driver = VcselDriver::new(VcselDriverConfig::default(), Wavelength::from_nm(1550.0))
            .expect("valid");
        let mut last = -1.0;
        for code in 0..=15u8 {
            let i = driver.emit(code).expect("ok");
            assert!((0.0..=1.0).contains(&i));
            assert!(i >= last);
            last = i;
        }
    }

    #[test]
    fn driver_rejects_codes_above_fifteen() {
        let driver = VcselDriver::new(VcselDriverConfig::default(), Wavelength::from_nm(1550.0))
            .expect("valid");
        assert!(driver.emit(16).is_err());
    }

    #[test]
    fn driver_power_grows_with_code() {
        let driver = VcselDriver::new(VcselDriverConfig::default(), Wavelength::from_nm(1550.0))
            .expect("valid");
        let low = driver.electrical_power(1).expect("ok");
        let high = driver.electrical_power(15).expect("ok");
        assert!(high.mw() > low.mw());
    }

    #[test]
    fn driver_rejects_invalid_static_power() {
        let cfg = VcselDriverConfig {
            static_power_mw: -1.0,
            ..VcselDriverConfig::default()
        };
        assert!(VcselDriver::new(cfg, Wavelength::from_nm(1550.0)).is_err());
    }

    #[test]
    fn lane_first_layer_uses_pixel_voltage() {
        let lane = lane();
        let pixel = Pixel::new(PixelConfig::default()).expect("valid");
        let bright = lane
            .activate(pixel.output_voltage(1.0).expect("ok"), 0)
            .expect("ok");
        let dark = lane
            .activate(pixel.output_voltage(0.0).expect("ok"), 15)
            .expect("ok");
        assert!(bright > dark, "pixel path must dominate while selected");
    }

    #[test]
    fn lane_feedback_path_uses_previous_layer_code() {
        let mut lane = lane();
        lane.select(ActivationSource::PreviousLayer);
        let pixel = Pixel::new(PixelConfig::default()).expect("valid");
        let v_dark = pixel.output_voltage(0.0).expect("ok");
        let strong = lane.activate(v_dark, 15).expect("ok");
        let weak = lane.activate(v_dark, 1).expect("ok");
        assert!(strong > weak);
    }

    #[test]
    fn lane_feedback_codes_above_fifteen_are_clamped() {
        let mut lane = lane();
        lane.select(ActivationSource::PreviousLayer);
        let pixel = Pixel::new(PixelConfig::default()).expect("valid");
        let v = pixel.output_voltage(0.5).expect("ok");
        let clamped = lane.activate(v, 200).expect("ok");
        let top = lane.activate(v, 15).expect("ok");
        assert!((clamped - top).abs() < 1e-12);
    }

    #[test]
    fn lane_power_excludes_crc_on_feedback_path() {
        let mut lane = lane();
        let with_crc = lane.power(8).expect("ok");
        lane.select(ActivationSource::PreviousLayer);
        let without_crc = lane.power(8).expect("ok");
        assert!(with_crc.mw() > without_crc.mw());
    }
}
