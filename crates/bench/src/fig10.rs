//! Figure 10: log-scale execution time of Eyeriss, ENVISION, AppCiP, YodaNN
//! and Lightator on VGG16 and AlexNet.

use crate::harness::platform;
use lightator_baselines::registry::fig10_registry;
use lightator_core::CoreError;
use lightator_nn::spec::NetworkSpec;
use serde::{Deserialize, Serialize};

/// Execution time of one accelerator on one network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Accelerator name.
    pub accelerator: String,
    /// Workload name (`VGG16`, `VGG13` for YodaNN's substitution, `AlexNet`).
    pub network: String,
    /// Execution time in milliseconds.
    pub time_ms: f64,
}

/// The complete Fig. 10 dataset plus Lightator's speed-up factors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Data {
    /// All (accelerator, network) execution times.
    pub rows: Vec<Fig10Row>,
    /// Speed-up of Lightator over each electronic accelerator on AlexNet
    /// (paper: 10.7× Eyeriss, 20.4× YodaNN, 18.1× AppCiP, 8.8× ENVISION).
    pub alexnet_speedups: Vec<(String, f64)>,
}

/// Generates the Fig. 10 dataset by iterating the backend registry: each
/// entry's [`Backend::performance`] report provides the execution times
/// (YodaNN's VGG16 column is substituted with VGG13, as encoded in the
/// registry).
///
/// [`Backend::performance`]: lightator_core::backend::Backend::performance
///
/// # Errors
///
/// Propagates simulator errors.
pub fn generate() -> Result<Fig10Data, CoreError> {
    let platform = platform()?;
    let alexnet = NetworkSpec::alexnet();

    let mut rows = Vec::new();
    // (label, AlexNet ms, is-electronic) per entry, for the speed-up pass.
    let mut alexnet_times = Vec::new();
    for entry in fig10_registry() {
        let vgg_ms = entry
            .backend
            .performance(&entry.vgg, platform.config())?
            .frame_latency
            .ms();
        let alexnet_ms = entry
            .backend
            .performance(&alexnet, platform.config())?
            .frame_latency
            .ms();
        rows.push(Fig10Row {
            accelerator: entry.label.clone(),
            network: entry.vgg.name().to_string(),
            time_ms: vgg_ms,
        });
        rows.push(Fig10Row {
            accelerator: entry.label.clone(),
            network: alexnet.name().to_string(),
            time_ms: alexnet_ms,
        });
        alexnet_times.push((entry.label.clone(), alexnet_ms, entry.is_electronic()));
    }

    let lightator_alexnet = alexnet_times
        .iter()
        .find(|(label, _, _)| label == "Lightator")
        .map(|(_, ms, _)| *ms)
        // fig10_rows() appends the Lightator row unconditionally.
        // lightator: allow(no-unwrap)
        .expect("the registry always ends with the Lightator entry");
    let alexnet_speedups = alexnet_times
        .iter()
        .filter(|(_, _, electronic)| *electronic)
        .map(|(label, ms, _)| (label.clone(), ms / lightator_alexnet))
        .collect();

    Ok(Fig10Data {
        rows,
        alexnet_speedups,
    })
}

/// Renders the dataset as the text table printed by the harness binary.
#[must_use]
pub fn render(data: &Fig10Data) -> String {
    let mut out = String::new();
    out.push_str("Fig. 10 — execution time (ms, log scale in the paper)\n");
    out.push_str(&format!(
        "{:<12} {:<8} {:>12}\n",
        "accelerator", "network", "time (ms)"
    ));
    for row in &data.rows {
        out.push_str(&format!(
            "{:<12} {:<8} {:>12.4}\n",
            row.accelerator, row.network, row.time_ms
        ));
    }
    out.push_str("\nLightator speed-up on AlexNet (paper: Eyeriss 10.7x, YodaNN 20.4x, AppCiP 18.1x, ENVISION 8.8x):\n");
    for (name, factor) in &data.alexnet_speedups {
        out.push_str(&format!("  over {:<10} {:>8.1}x\n", name, factor));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_accelerator_appears_on_both_networks() {
        let data = generate().expect("ok");
        // 4 electronic + Lightator = 5 accelerators x 2 networks.
        assert_eq!(data.rows.len(), 10);
        for name in ["Eyeriss", "ENVISION", "AppCiP", "YodaNN", "Lightator"] {
            assert_eq!(
                data.rows.iter().filter(|r| r.accelerator == name).count(),
                2
            );
        }
    }

    #[test]
    fn lightator_is_fastest_on_both_workloads() {
        let data = generate().expect("ok");
        for network in ["VGG16", "AlexNet"] {
            let lightator = data
                .rows
                .iter()
                .find(|r| r.accelerator == "Lightator" && r.network == network)
                .expect("exists")
                .time_ms;
            for row in data.rows.iter().filter(|r| r.accelerator != "Lightator") {
                if row.network == network || (network == "VGG16" && row.network == "VGG13") {
                    assert!(
                        row.time_ms > lightator,
                        "{} ({}) should be slower than Lightator",
                        row.accelerator,
                        row.network
                    );
                }
            }
        }
    }

    #[test]
    fn speedups_are_large_and_ordered_like_the_paper() {
        let data = generate().expect("ok");
        let factor = |name: &str| {
            data.alexnet_speedups
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, f)| *f)
                .expect("exists")
        };
        // All speed-ups are large (the paper reports 8.8x - 20.4x).
        for name in ["Eyeriss", "YodaNN", "AppCiP", "ENVISION"] {
            assert!(
                factor(name) > 3.0,
                "{name} speed-up {} too small",
                factor(name)
            );
        }
        // The ordering matches the paper: largest gain over YodaNN, smallest
        // over ENVISION.
        assert!(factor("YodaNN") > factor("Eyeriss"));
        assert!(factor("AppCiP") > factor("Eyeriss"));
        assert!(factor("Eyeriss") > factor("ENVISION"));
    }

    #[test]
    fn yodann_vgg_column_uses_vgg13() {
        let data = generate().expect("ok");
        assert!(data
            .rows
            .iter()
            .any(|r| r.accelerator == "YodaNN" && r.network == "VGG13"));
    }

    #[test]
    fn render_contains_speedups() {
        let data = generate().expect("ok");
        let text = render(&data);
        assert!(text.contains("Lightator speed-up"));
        assert!(text.contains("Eyeriss"));
    }
}
