//! Ablation: analog non-idealities (VCSEL noise, detector noise, weight
//! error, crosstalk) versus photonic MAC fidelity.

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightator_core::oc::PhotonicMacUnit;
use lightator_photonics::noise::NoiseConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mean_absolute_error(noise: NoiseConfig, trials: usize) -> f64 {
    let mut unit = PhotonicMacUnit::new(noise, 7).expect("valid");
    let mut rng = SmallRng::seed_from_u64(13);
    let mut total = 0.0;
    for _ in 0..trials {
        let weights: Vec<f64> = (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let activations: Vec<f64> = (0..9).map(|_| rng.gen_range(0.0..1.0)).collect();
        let exact: f64 = weights.iter().zip(&activations).map(|(w, a)| w * a).sum();
        let value = unit.dot(&weights, &activations).expect("ok");
        total += (value - exact).abs();
    }
    total / trials as f64
}

fn bench_noise(c: &mut Criterion) {
    println!("Ablation — analog noise scale vs photonic MAC error (9-element dot products)");
    println!("{:<12} {:>18}", "noise scale", "mean |error|");
    for scale in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let noise = if scale == 0.0 {
            NoiseConfig::ideal()
        } else {
            NoiseConfig::default().scaled(scale)
        };
        println!("{:<12} {:>18.5}", scale, mean_absolute_error(noise, 200));
    }

    let mut group = c.benchmark_group("ablation_noise");
    group.sample_size(20);
    for scale in [0u32, 1, 4] {
        let noise = if scale == 0 {
            NoiseConfig::ideal()
        } else {
            NoiseConfig::default().scaled(f64::from(scale))
        };
        group.bench_with_input(
            BenchmarkId::new("photonic_dot", scale),
            &noise,
            |b, noise| {
                let mut unit = PhotonicMacUnit::new(*noise, 3).expect("valid");
                let weights = [0.5, -0.25, 0.75, 0.1, -0.9, 0.3, 0.0, 0.6, -0.4];
                let activations = [0.9, 0.2, 0.4, 0.8, 0.1, 0.7, 0.3, 0.5, 0.6];
                b.iter(|| unit.dot(&weights, &activations).expect("ok"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_noise);
criterion_main!(benches);
