//! Hardware mapping of DNN layers onto the optical core.
//!
//! Implements the methodology of paper §4 and Fig. 6: each arm holds 9 MRs so
//! a 3×3 kernel stride fits in one arm (6 strides per bank, summation tree
//! idle), a 5×5 kernel needs 3 arms (2 strides per bank, first summation
//! stage active) and a 7×7 kernel needs the whole bank (1 stride, both
//! summation stages active). Fully connected layers are segmented into
//! 9-MAC chunks whose partial sums are combined in the summation tree.

use crate::config::OcGeometry;
use crate::error::{CoreError, Result};
use lightator_nn::spec::LayerSpec;
use serde::{Deserialize, Serialize};

/// Which summation-tree stages a mapping activates (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SummationUsage {
    /// BPD output is final; both summation stages are idle (3×3 kernels).
    None,
    /// First stage combines the partial sums of one stride (5×5 kernels).
    FirstStage,
    /// Both stages combine partial sums (7×7 kernels, wide FC segments).
    BothStages,
}

/// How one layer is mapped onto the MVM banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMapping {
    /// Arms ganged together to evaluate one kernel stride / output segment.
    pub arms_per_stride: usize,
    /// Strides evaluated concurrently per bank.
    pub strides_per_bank: usize,
    /// MRs left unused in each occupied arm group (gray MRs in Fig. 6).
    pub unused_mrs_per_stride: usize,
    /// Which summation stages are active.
    pub summation: SummationUsage,
    /// Total kernel strides (9-MAC work units) the layer requires.
    pub total_strides: usize,
    /// Strides the whole optical core can evaluate per optical cycle.
    pub strides_per_cycle: usize,
    /// Optical compute cycles needed for the layer.
    pub compute_cycles: usize,
    /// Times the MR weights must be rewritten because the layer's weights
    /// exceed the core capacity.
    pub weight_reloads: usize,
    /// Number of MRs that hold useful weights during the layer (≤ core MRs).
    pub active_mrs: usize,
    /// Whether the layer executes on CA banks (average pooling / compression)
    /// rather than the convolution/FC banks.
    pub uses_ca_banks: bool,
}

impl LayerMapping {
    /// Fraction of the optical core's MRs doing useful work for this layer.
    #[must_use]
    pub fn mr_utilization(&self, geometry: &OcGeometry) -> f64 {
        if geometry.mrs() == 0 {
            return 0.0;
        }
        self.active_mrs as f64 / geometry.mrs() as f64
    }

    /// Fraction of MRs inside each occupied stride group that are wasted
    /// (0 for 3×3, 2/27 for 5×5, 5/54 for 7×7).
    #[must_use]
    pub fn stride_waste(&self, geometry: &OcGeometry) -> f64 {
        let group = self.arms_per_stride * geometry.mrs_per_arm;
        if group == 0 {
            return 0.0;
        }
        self.unused_mrs_per_stride as f64 / group as f64
    }
}

/// Maps layers onto a given optical-core geometry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareMapper {
    geometry: OcGeometry,
}

impl HardwareMapper {
    /// Creates a mapper for a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the geometry is invalid.
    pub fn new(geometry: OcGeometry) -> Result<Self> {
        geometry.validate()?;
        Ok(Self { geometry })
    }

    /// The geometry this mapper targets.
    #[must_use]
    pub fn geometry(&self) -> &OcGeometry {
        &self.geometry
    }

    /// Arms needed to hold one `elements`-long dot-product segment.
    fn arms_for_elements(&self, elements: usize) -> usize {
        elements.div_ceil(self.geometry.mrs_per_arm).max(1)
    }

    fn summation_for(arms_per_stride: usize) -> SummationUsage {
        match arms_per_stride {
            0 | 1 => SummationUsage::None,
            2 | 3 => SummationUsage::FirstStage,
            _ => SummationUsage::BothStages,
        }
    }

    /// Maps a single layer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnmappableLayer`] for max-pooling layers (they
    /// stay in the electronic domain) or degenerate layers with no work.
    pub fn map_layer(&self, layer: &LayerSpec) -> Result<LayerMapping> {
        match layer {
            LayerSpec::Conv(conv) => {
                let kernel_elements = conv.kernel * conv.kernel;
                let arms_per_stride = self.arms_for_elements(kernel_elements);
                if arms_per_stride > self.geometry.arms() {
                    return Err(CoreError::UnmappableLayer {
                        reason: format!(
                            "a {k}x{k} kernel needs {arms_per_stride} arms but the core has only {}",
                            self.geometry.arms(),
                            k = conv.kernel
                        ),
                    });
                }
                // Kernels wider than a bank (e.g. AlexNet's 11x11) gang arms
                // across neighbouring banks; their partial sums meet in the
                // second summation stage, so strides_per_bank drops to zero.
                let strides_per_bank = self.geometry.arms_per_bank / arms_per_stride;
                let unused = arms_per_stride * self.geometry.mrs_per_arm - kernel_elements;
                let total_strides = conv.stride_count();
                // Each distinct (output-channel, input-channel) kernel is
                // mapped once; its output positions stream through the same
                // arm group, so the concurrency is capped by the number of
                // distinct kernels.
                let distinct_kernels = conv.out_channels * conv.in_channels;
                self.finish_mapping(
                    arms_per_stride,
                    strides_per_bank,
                    unused,
                    total_strides,
                    layer.weight_count(),
                    false,
                    Some(distinct_kernels),
                )
            }
            LayerSpec::Linear(linear) => {
                // Each output neuron's dot product is cut into 9-MAC segments
                // (paper §4); a segment is one stride. Every segment carries
                // distinct weights, so concurrency is limited only by the
                // core capacity.
                let segments_per_output = linear.in_features.div_ceil(self.geometry.mrs_per_arm);
                let total_strides = segments_per_output * linear.out_features;
                let last_segment = linear.in_features % self.geometry.mrs_per_arm;
                let unused = if last_segment == 0 {
                    0
                } else {
                    self.geometry.mrs_per_arm - last_segment
                };
                self.finish_mapping(
                    1,
                    self.geometry.arms_per_bank,
                    unused,
                    total_strides,
                    layer.weight_count(),
                    false,
                    None,
                )
            }
            LayerSpec::Pool(pool) => {
                if !pool.average {
                    return Err(CoreError::UnmappableLayer {
                        reason: "max pooling is executed in the electronic periphery, not the optical core"
                            .to_string(),
                    });
                }
                let window_elements = pool.window * pool.window;
                let arms_per_stride = self.arms_for_elements(window_elements);
                let strides_per_bank = (self.geometry.arms_per_bank / arms_per_stride).max(1);
                let unused = arms_per_stride * self.geometry.mrs_per_arm
                    - window_elements.min(arms_per_stride * self.geometry.mrs_per_arm);
                let [c, oh, ow] = pool.output_shape();
                let total_strides = c * oh * ow;
                // CA pooling coefficients are pre-set constants, so they are
                // freely replicated across every CA arm.
                self.finish_mapping(
                    arms_per_stride,
                    strides_per_bank,
                    unused,
                    total_strides,
                    window_elements,
                    true,
                    None,
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_mapping(
        &self,
        arms_per_stride: usize,
        strides_per_bank: usize,
        unused_mrs_per_stride: usize,
        total_strides: usize,
        weight_count: usize,
        uses_ca_banks: bool,
        max_concurrent_strides: Option<usize>,
    ) -> Result<LayerMapping> {
        if total_strides == 0 {
            return Err(CoreError::UnmappableLayer {
                reason: "layer has no work to schedule".to_string(),
            });
        }
        let banks_available = if uses_ca_banks {
            self.geometry.ca_banks.max(1)
        } else {
            self.geometry.banks() - self.geometry.ca_banks.min(self.geometry.banks() - 1)
        };
        // Strides that fit per cycle: bank-local packing when a stride fits
        // inside a bank, otherwise arms ganged across banks; additionally
        // capped by the number of distinct weight sets that exist (a kernel
        // mapped once serves its output positions sequentially).
        let capacity = if strides_per_bank > 0 {
            banks_available * strides_per_bank
        } else {
            (banks_available * self.geometry.arms_per_bank / arms_per_stride.max(1)).max(1)
        };
        let strides_per_cycle = max_concurrent_strides
            .unwrap_or(capacity)
            .min(capacity)
            .min(total_strides)
            .max(1);
        let compute_cycles = total_strides.div_ceil(strides_per_cycle);
        let core_mrs = banks_available * self.geometry.mrs_per_bank();
        let active_mrs = weight_count.min(core_mrs);
        let weight_reloads = weight_count.div_ceil(core_mrs.max(1)).max(1);
        Ok(LayerMapping {
            arms_per_stride,
            strides_per_bank,
            unused_mrs_per_stride,
            summation: Self::summation_for(arms_per_stride),
            total_strides,
            strides_per_cycle,
            compute_cycles,
            weight_reloads,
            active_mrs,
            uses_ca_banks,
        })
    }

    /// Maps every optically executed layer of a network, skipping max-pool
    /// layers (returned as `None` entries so indices stay aligned with the
    /// network's layer list).
    ///
    /// # Errors
    ///
    /// Propagates mapping errors other than the expected max-pool skip.
    pub fn map_network(&self, layers: &[LayerSpec]) -> Result<Vec<Option<LayerMapping>>> {
        let mut mappings = Vec::with_capacity(layers.len());
        for layer in layers {
            match self.map_layer(layer) {
                Ok(mapping) => mappings.push(Some(mapping)),
                Err(CoreError::UnmappableLayer { .. }) if matches!(layer, LayerSpec::Pool(p) if !p.average) =>
                {
                    mappings.push(None);
                }
                Err(err) => return Err(err),
            }
        }
        Ok(mappings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_nn::spec::{ConvSpec, LinearSpec, NetworkSpec, PoolSpec};

    fn mapper() -> HardwareMapper {
        HardwareMapper::new(OcGeometry::paper()).expect("valid")
    }

    fn conv(kernel: usize) -> LayerSpec {
        LayerSpec::Conv(ConvSpec {
            in_channels: 3,
            out_channels: 16,
            kernel,
            stride: 1,
            padding: kernel / 2,
            in_height: 32,
            in_width: 32,
        })
    }

    #[test]
    fn three_by_three_uses_one_arm_and_six_strides() {
        let m = mapper().map_layer(&conv(3)).expect("ok");
        assert_eq!(m.arms_per_stride, 1);
        assert_eq!(m.strides_per_bank, 6);
        assert_eq!(m.unused_mrs_per_stride, 0);
        assert_eq!(m.summation, SummationUsage::None);
    }

    #[test]
    fn five_by_five_uses_three_arms_and_two_strides() {
        let m = mapper().map_layer(&conv(5)).expect("ok");
        assert_eq!(m.arms_per_stride, 3);
        assert_eq!(m.strides_per_bank, 2);
        assert_eq!(m.unused_mrs_per_stride, 2);
        assert_eq!(m.summation, SummationUsage::FirstStage);
    }

    #[test]
    fn seven_by_seven_uses_whole_bank() {
        let m = mapper().map_layer(&conv(7)).expect("ok");
        assert_eq!(m.arms_per_stride, 6);
        assert_eq!(m.strides_per_bank, 1);
        assert_eq!(m.unused_mrs_per_stride, 5);
        assert_eq!(m.summation, SummationUsage::BothStages);
    }

    #[test]
    fn oversized_kernels_span_banks() {
        let spec = LayerSpec::Conv(ConvSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 11,
            stride: 4,
            padding: 2,
            in_height: 224,
            in_width: 224,
        });
        // 11x11 = 121 weights -> 14 arms, more than one bank's 6 arms: the
        // stride spans banks and no bank-local packing is possible.
        let m = mapper().map_layer(&spec).expect("ok");
        assert_eq!(m.arms_per_stride, 14);
        assert_eq!(m.strides_per_bank, 0);
        assert_eq!(m.summation, SummationUsage::BothStages);
        assert!(m.strides_per_cycle >= 1);
    }

    #[test]
    fn fully_connected_segments_into_nine_mac_chunks() {
        let spec = LayerSpec::Linear(LinearSpec {
            in_features: 400,
            out_features: 120,
        });
        let m = mapper().map_layer(&spec).expect("ok");
        // ceil(400 / 9) = 45 segments per output neuron.
        assert_eq!(m.total_strides, 45 * 120);
        assert_eq!(m.arms_per_stride, 1);
        // 400 = 44*9 + 4 -> 5 unused MRs in the last segment.
        assert_eq!(m.unused_mrs_per_stride, 5);
    }

    #[test]
    fn average_pooling_maps_to_ca_banks() {
        let spec = LayerSpec::Pool(PoolSpec {
            channels: 6,
            window: 2,
            stride: 2,
            in_height: 28,
            in_width: 28,
            average: true,
        });
        let m = mapper().map_layer(&spec).expect("ok");
        assert!(m.uses_ca_banks);
        assert_eq!(m.total_strides, 6 * 14 * 14);
    }

    #[test]
    fn max_pooling_is_not_optically_mapped() {
        let spec = LayerSpec::Pool(PoolSpec {
            channels: 6,
            window: 2,
            stride: 2,
            in_height: 28,
            in_width: 28,
            average: false,
        });
        assert!(matches!(
            mapper().map_layer(&spec),
            Err(CoreError::UnmappableLayer { .. })
        ));
    }

    #[test]
    fn compute_cycles_cover_all_strides() {
        let m = mapper().map_layer(&conv(3)).expect("ok");
        assert!(m.compute_cycles * m.strides_per_cycle >= m.total_strides);
        assert!((m.compute_cycles - 1) * m.strides_per_cycle < m.total_strides);
    }

    #[test]
    fn weight_reloads_grow_with_layer_size() {
        let small = mapper().map_layer(&conv(3)).expect("ok");
        let big = mapper()
            .map_layer(&LayerSpec::Linear(LinearSpec {
                in_features: 25088,
                out_features: 4096,
            }))
            .expect("ok");
        assert!(big.weight_reloads > small.weight_reloads);
        assert!(small.weight_reloads >= 1);
    }

    #[test]
    fn utilization_is_bounded() {
        let geometry = OcGeometry::paper();
        for kernel in [3, 5, 7] {
            let m = mapper().map_layer(&conv(kernel)).expect("ok");
            let u = m.mr_utilization(&geometry);
            assert!((0.0..=1.0).contains(&u));
            let w = m.stride_waste(&geometry);
            assert!((0.0..=0.2).contains(&w), "waste {w} for kernel {kernel}");
        }
    }

    #[test]
    fn map_network_aligns_with_layers() {
        let net = NetworkSpec::alexnet();
        let mappings = mapper().map_network(net.layers()).expect("ok");
        assert_eq!(mappings.len(), net.layers().len());
        // AlexNet's max pools are not optically mapped.
        let unmapped = mappings.iter().filter(|m| m.is_none()).count();
        assert_eq!(unmapped, 3);
    }

    #[test]
    fn lenet_maps_completely() {
        let net = NetworkSpec::lenet();
        let mappings = mapper().map_network(net.layers()).expect("ok");
        assert!(
            mappings.iter().all(Option::is_some),
            "LeNet uses only avg pools"
        );
    }
}
