//! Headline claims of the paper, recomputed from the harness:
//! 84.4 KFPS/W for Lightator-MX \[4:4\]\[3:4\], ~24× lower power than the
//! photonic baselines, ~73× lower than the GPU, ~2.4× efficiency from
//! bit-width reduction, and the CA's first-layer saving.

use crate::fig8;
use crate::fig9;
use crate::table1;
use lightator_core::CoreError;
use serde::{Deserialize, Serialize};

/// The recomputed headline numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeadlineClaims {
    /// KFPS/W of the Lightator-MX \[4:4\]\[3:4\] variant (paper: 84.4).
    pub mx_kfps_per_watt: f64,
    /// Average photonic-baseline power divided by average Lightator power
    /// (paper: ~24×).
    pub photonic_power_reduction: f64,
    /// GPU power divided by average Lightator power (paper: ~73×).
    pub gpu_power_reduction: f64,
    /// Average efficiency gain from weight bit-width reduction on LeNet
    /// (paper: ~2.4×).
    pub bit_width_efficiency_gain: f64,
    /// First-layer saving from compressive acquisition (paper: 42.2 %).
    pub ca_first_layer_saving: f64,
}

/// Recomputes every headline claim.
///
/// # Errors
///
/// Propagates harness errors.
pub fn compute() -> Result<HeadlineClaims, CoreError> {
    let rows = table1::performance_rows()?;

    let lightator_powers: Vec<f64> = rows
        .iter()
        .filter(|r| r.design.starts_with("Lightator"))
        .filter_map(|r| r.max_power_w)
        .collect();
    let lightator_avg = lightator_powers.iter().sum::<f64>() / lightator_powers.len().max(1) as f64;

    let baseline_powers: Vec<f64> = rows
        .iter()
        .filter(|r| !r.design.starts_with("Lightator") && !r.design.contains("GPU"))
        .filter_map(|r| r.max_power_w)
        .collect();
    let baseline_avg = baseline_powers.iter().sum::<f64>() / baseline_powers.len().max(1) as f64;

    let gpu_power = rows
        .iter()
        .find(|r| r.design.contains("GPU"))
        .and_then(|r| r.max_power_w)
        .unwrap_or(200.0);

    let mx_kfps_per_watt = rows
        .iter()
        .find(|r| r.design == "Lightator-MX [4:4][3:4]")
        .and_then(|r| r.kfps_per_watt)
        .unwrap_or(0.0);

    let fig8_rows = fig8::generate()?;
    let fig9_data = fig9::generate()?;

    Ok(HeadlineClaims {
        mx_kfps_per_watt,
        photonic_power_reduction: baseline_avg / lightator_avg.max(1e-9),
        gpu_power_reduction: gpu_power / lightator_avg.max(1e-9),
        bit_width_efficiency_gain: fig8::average_efficiency_gain(&fig8_rows),
        ca_first_layer_saving: fig9_data.ca_first_layer_saving,
    })
}

/// Renders the claims alongside the paper's reported values.
#[must_use]
pub fn render(claims: &HeadlineClaims) -> String {
    format!(
        "Headline claims (measured vs paper)\n\
         Lightator-MX [4:4][3:4] efficiency : {:8.1} KFPS/W   (paper:  84.4)\n\
         power vs photonic baselines        : {:8.1}x lower   (paper: ~24x)\n\
         power vs GPU baseline              : {:8.1}x lower   (paper: ~73x)\n\
         bit-width reduction efficiency     : {:8.1}x          (paper: ~2.4x)\n\
         CA first-layer saving              : {:8.1}%          (paper: 42.2%)\n",
        claims.mx_kfps_per_watt,
        claims.photonic_power_reduction,
        claims.gpu_power_reduction,
        claims.bit_width_efficiency_gain,
        claims.ca_first_layer_saving * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_reproduce_the_papers_direction() {
        let claims = compute().expect("ok");
        // Efficiency of the MX variant is tens to a few hundred KFPS/W.
        assert!(
            claims.mx_kfps_per_watt > 20.0 && claims.mx_kfps_per_watt < 2_000.0,
            "MX KFPS/W {}",
            claims.mx_kfps_per_watt
        );
        // An order of magnitude (or more) less power than photonic baselines.
        assert!(claims.photonic_power_reduction > 8.0);
        // Dozens of times less power than the GPU.
        assert!(claims.gpu_power_reduction > 20.0);
        // Meaningful efficiency gain from precision scaling.
        assert!(claims.bit_width_efficiency_gain > 1.5);
        // A visible CA saving.
        assert!(claims.ca_first_layer_saving > 0.15);
    }

    #[test]
    fn render_mentions_the_paper_numbers() {
        let claims = compute().expect("ok");
        let text = render(&claims);
        assert!(text.contains("84.4"));
        assert!(text.contains("42.2"));
    }
}
