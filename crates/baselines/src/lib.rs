//! Baseline accelerator models for the Lightator reproduction.
//!
//! Two families of baselines appear in the paper's evaluation:
//!
//! * [`optical`] — the five MR-based photonic accelerators of Table 1
//!   (LightBulb, HolyLight, HQNNA, Robin, CrossLight), modelled analytically
//!   from their component counts under the paper's common area constraint;
//! * [`electronic`] — the four digital edge accelerators of Fig. 10
//!   (Eyeriss, YodaNN, AppCiP, ENVISION) and the RTX 3060 Ti GPU baseline,
//!   modelled by sustained throughput and per-layer overhead.
//!
//! Both families are also available as execution
//! [`Backend`](lightator_core::backend::Backend)s of the platform:
//!
//! * [`mod@reference`] — [`ElectronicReference`] executes compiled plans
//!   digitally in fp32 while charging the electronic latency/power model;
//! * [`roofline`] — [`RooflineBackend`] wraps the optical analytical
//!   models (performance-only, no execution);
//! * [`registry`] — the backend registry plus the Table-1 / Fig-10 row
//!   descriptions the bench harness iterates.
//!
//! # Example
//!
//! ```
//! use lightator_baselines::electronic::ElectronicBaseline;
//! use lightator_nn::spec::NetworkSpec;
//!
//! let eyeriss = ElectronicBaseline::eyeriss();
//! let t = eyeriss.execution_time(&NetworkSpec::alexnet());
//! println!("Eyeriss runs AlexNet in {:.1} ms", t.ms());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod electronic;
pub mod optical;
pub mod reference;
pub mod registry;
pub mod roofline;

pub use electronic::ElectronicBaseline;
pub use optical::{OpticalBaseline, OpticalComponentCounts, OpticalDeviceCosts};
pub use reference::{ElectronicLowered, ElectronicReference};
pub use registry::{Fig10Entry, Table1Entry};
pub use roofline::RooflineBackend;
