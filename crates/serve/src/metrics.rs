//! Serving telemetry: the virtual clock, the queue-wait histogram and the
//! public [`MetricsSnapshot`].
//!
//! All serving time is **simulated** time. Each shard models one Lightator
//! chip with its own timeline: a batch of `B` frames occupies the shard for
//! `frame_latency + (B - 1) × resident_latency` of simulated time (the
//! weights are programmed once per batch, so follow-on frames skip the
//! weight-encode phase), starting no earlier than the newest request it
//! contains arrived and no earlier than the shard's previous batch
//! finished. A global virtual clock tracks the latest completion so
//! arrivals are stamped causally. Measuring in simulated time keeps the
//! figures meaningful for the accelerator (KFPS-scale latencies) and
//! independent of how many host CPUs happen to run the simulation.

use crate::request::Priority;
use lightator_photonics::units::{Energy, Time};
pub use lightator_telemetry::StageTotals;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two in [`LatencyHistogram`]
/// (HdrHistogram-style log-linear layout).
const SUB_BUCKETS: usize = 32;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;
/// Total buckets: values below `SUB_BUCKETS` get exact unit buckets, every
/// higher power of two splits into `SUB_BUCKETS` linear sub-buckets.
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// The server-wide simulated clock (nanoseconds).
///
/// Advanced to each batch's completion time; read to stamp request
/// arrivals. Monotone by construction (`fetch_max`).
#[derive(Debug, Default)]
pub(crate) struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub(crate) fn now(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Moves the clock forward to `ns` (never backwards).
    pub(crate) fn advance_to(&self, ns: u64) {
        self.now_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Lock-free log-linear latency histogram over simulated nanoseconds.
///
/// Values below [`SUB_BUCKETS`] ns get exact unit buckets; every higher
/// power of two splits into [`SUB_BUCKETS`] linear sub-buckets, so the
/// quantile error is bounded by `1/SUB_BUCKETS` (≈ 3%) instead of the 2×
/// error of a plain log2 ladder — tight enough that p99.9 means something.
/// Recording stays a single atomic increment with no allocation on the
/// serving path.
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros(); // >= SUB_BITS here
        let shift = msb - SUB_BITS;
        let sub = ((ns >> shift) as usize) & (SUB_BUCKETS - 1);
        SUB_BUCKETS + shift as usize * SUB_BUCKETS + sub
    }

    /// Largest value the bucket at `index` can hold (its inclusive upper
    /// bound) — what [`LatencyHistogram::quantile`] reports.
    fn bucket_upper(index: usize) -> u64 {
        if index < 2 * SUB_BUCKETS {
            // Unit-width buckets: exact values 0..2*SUB_BUCKETS.
            return index as u64;
        }
        let shift = (index - SUB_BUCKETS) as u32 / SUB_BUCKETS as u32;
        let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        let start = (SUB_BUCKETS as u64 + sub) << shift;
        // Parenthesised so the top bucket (upper bound `u64::MAX`) does not
        // overflow before the subtraction.
        start + ((1u64 << shift) - 1)
    }

    /// Records one latency sample.
    pub(crate) fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0 < q <= 1`), or zero when the histogram is empty. The bound
    /// over-reports the true quantile by at most `1/SUB_BUCKETS`.
    pub(crate) fn quantile(&self, q: f64) -> Time {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Time::from_ns(0.0);
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Time::from_ns(Self::bucket_upper(i) as f64);
            }
        }
        unreachable!("rank is bounded by the total sample count")
    }
}

/// Per-shard counters, updated by the owning worker thread.
#[derive(Debug)]
pub(crate) struct ShardMetrics {
    pub(crate) label: String,
    /// Id of the backend this shard's session was lowered onto.
    pub(crate) backend: String,
    pub(crate) batches: AtomicU64,
    pub(crate) frames: AtomicU64,
    /// `batch_sizes[s - 1]` counts batches of exactly `s` frames.
    pub(crate) batch_sizes: Vec<AtomicU64>,
    /// Batches this shard pulled from a sibling's sub-deque (work
    /// stealing).
    pub(crate) steals: AtomicU64,
    /// The shard's current batch-size bound — a gauge; constant without an
    /// SLO controller, adapted batch to batch with one.
    pub(crate) batch_limit: AtomicU64,
    /// The shard's current flush deadline in simulated ns — a gauge,
    /// adapted by the SLO controller.
    pub(crate) flush_deadline_ns: AtomicU64,
    /// Weight-encoding passes of the shard session's compiled plan — a
    /// healthy shard compiles once at spawn and stays at 1.
    pub(crate) plan_encodes: AtomicU64,
    /// Executions the shard served from its cached plan encoding.
    pub(crate) plan_hits: AtomicU64,
    /// Simulated energy charged to this shard, stored as `f64` bits in
    /// picojoules (updated only by the owning worker thread; read by
    /// snapshots).
    pub(crate) energy_pj_bits: AtomicU64,
}

impl ShardMetrics {
    /// Adds `pj` picojoules of simulated energy to this shard's meter.
    ///
    /// Only the owning worker thread writes, so a load + store pair is
    /// race-free; the atomic makes the concurrent snapshot reads defined.
    pub(crate) fn add_energy_pj(&self, pj: f64) {
        let current = f64::from_bits(self.energy_pj_bits.load(Ordering::Relaxed));
        self.energy_pj_bits
            .store((current + pj).to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn energy(&self) -> Energy {
        Energy::from_pj(f64::from_bits(self.energy_pj_bits.load(Ordering::Relaxed)))
    }
}

/// Shared mutable telemetry behind the public snapshot.
#[derive(Debug)]
pub(crate) struct MetricsInner {
    pub(crate) completed: AtomicU64,
    /// Admissions per scheduling lane.
    pub(crate) admitted_interactive: AtomicU64,
    pub(crate) admitted_batch: AtomicU64,
    /// Admission-control rejections (queue full) per scheduling lane.
    pub(crate) rejected_interactive: AtomicU64,
    pub(crate) rejected_batch: AtomicU64,
    pub(crate) errored: AtomicU64,
    /// Frames served across all successful requests: one per frame
    /// request, the processed frame count per stream request. The
    /// numerator of [`MetricsSnapshot::throughput_fps`].
    pub(crate) served_frames: AtomicU64,
    pub(crate) stream_frames: AtomicU64,
    pub(crate) stream_blocks_total: AtomicU64,
    pub(crate) stream_blocks_skipped: AtomicU64,
    pub(crate) queue_wait: LatencyHistogram,
    /// Queue-wait histograms split by scheduling lane.
    pub(crate) interactive_wait: LatencyHistogram,
    pub(crate) batch_wait: LatencyHistogram,
    pub(crate) first_start_ns: AtomicU64,
    pub(crate) last_completion_ns: AtomicU64,
    pub(crate) shards: Vec<ShardMetrics>,
}

impl MetricsInner {
    /// `shard_labels` pairs each shard's display label with the id of the
    /// backend its session runs on. `max_batch` is the *effective* bound
    /// (the SLO controller's cap when one is configured).
    pub(crate) fn new(shard_labels: Vec<(String, String)>, max_batch: usize) -> Self {
        Self {
            completed: AtomicU64::new(0),
            admitted_interactive: AtomicU64::new(0),
            admitted_batch: AtomicU64::new(0),
            rejected_interactive: AtomicU64::new(0),
            rejected_batch: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            served_frames: AtomicU64::new(0),
            stream_frames: AtomicU64::new(0),
            stream_blocks_total: AtomicU64::new(0),
            stream_blocks_skipped: AtomicU64::new(0),
            queue_wait: LatencyHistogram::new(),
            interactive_wait: LatencyHistogram::new(),
            batch_wait: LatencyHistogram::new(),
            first_start_ns: AtomicU64::new(u64::MAX),
            last_completion_ns: AtomicU64::new(0),
            shards: shard_labels
                .into_iter()
                .map(|(label, backend)| ShardMetrics {
                    label,
                    backend,
                    batches: AtomicU64::new(0),
                    frames: AtomicU64::new(0),
                    batch_sizes: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
                    steals: AtomicU64::new(0),
                    batch_limit: AtomicU64::new(0),
                    flush_deadline_ns: AtomicU64::new(0),
                    plan_encodes: AtomicU64::new(0),
                    plan_hits: AtomicU64::new(0),
                    energy_pj_bits: AtomicU64::new(0f64.to_bits()),
                })
                .collect(),
        }
    }

    /// Records one queue-wait sample on the combined and per-lane ladders.
    pub(crate) fn record_wait(&self, priority: Priority, ns: u64) {
        self.queue_wait.record(ns);
        match priority {
            Priority::Interactive => self.interactive_wait.record(ns),
            Priority::Batch => self.batch_wait.record(ns),
        }
    }

    /// Counts one admission on `priority`'s lane.
    pub(crate) fn count_admitted(&self, priority: Priority) {
        match priority {
            Priority::Interactive => &self.admitted_interactive,
            Priority::Batch => &self.admitted_batch,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admission-control rejection on `priority`'s lane.
    pub(crate) fn count_rejected(&self, priority: Priority) {
        match priority {
            Priority::Interactive => &self.rejected_interactive,
            Priority::Batch => &self.rejected_batch,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, queued: usize) -> MetricsSnapshot {
        let first = self.first_start_ns.load(Ordering::Relaxed);
        let last = self.last_completion_ns.load(Ordering::Relaxed);
        let span_ns = if first == u64::MAX {
            0.0
        } else {
            last.saturating_sub(first) as f64
        };
        let shards: Vec<ShardSnapshot> = self
            .shards
            .iter()
            .map(|s| ShardSnapshot {
                shard: s.label.clone(),
                backend: s.backend.clone(),
                batches: s.batches.load(Ordering::Relaxed),
                frames: s.frames.load(Ordering::Relaxed),
                batch_sizes: s
                    .batch_sizes
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                steals: s.steals.load(Ordering::Relaxed),
                batch_limit: s.batch_limit.load(Ordering::Relaxed),
                flush_deadline: Time::from_ns(s.flush_deadline_ns.load(Ordering::Relaxed) as f64),
                plan_encodes: s.plan_encodes.load(Ordering::Relaxed),
                plan_hits: s.plan_hits.load(Ordering::Relaxed),
                energy: s.energy(),
            })
            .collect();
        // Fold the shard rows into one row per backend, in first-seen
        // (registration) order.
        let mut backends: Vec<BackendSnapshot> = Vec::new();
        for shard in &shards {
            let entry = match backends.iter_mut().find(|b| b.backend == shard.backend) {
                Some(entry) => entry,
                None => {
                    backends.push(BackendSnapshot {
                        backend: shard.backend.clone(),
                        shards: 0,
                        batches: 0,
                        frames: 0,
                        energy: Energy::from_pj(0.0),
                        plan_encodes: 0,
                        plan_hits: 0,
                        simulated_span: Time::from_ns(span_ns),
                    });
                    // The entry was pushed on the preceding line.
                    // lightator: allow(no-unwrap)
                    backends.last_mut().expect("just pushed")
                }
            };
            entry.shards += 1;
            entry.batches += shard.batches;
            entry.frames += shard.frames;
            entry.energy += shard.energy;
            entry.plan_encodes += shard.plan_encodes;
            entry.plan_hits += shard.plan_hits;
        }
        let rejected_interactive = self.rejected_interactive.load(Ordering::Relaxed);
        let rejected_batch = self.rejected_batch.load(Ordering::Relaxed);
        MetricsSnapshot {
            completed: self.completed.load(Ordering::Relaxed),
            admitted_interactive: self.admitted_interactive.load(Ordering::Relaxed),
            admitted_batch: self.admitted_batch.load(Ordering::Relaxed),
            rejected: rejected_interactive + rejected_batch,
            rejected_interactive,
            rejected_batch,
            errored: self.errored.load(Ordering::Relaxed),
            served_frames: self.served_frames.load(Ordering::Relaxed),
            stream_frames: self.stream_frames.load(Ordering::Relaxed),
            stream_blocks_total: self.stream_blocks_total.load(Ordering::Relaxed),
            stream_blocks_skipped: self.stream_blocks_skipped.load(Ordering::Relaxed),
            queued,
            p50_queue_wait: self.queue_wait.quantile(0.50),
            p95_queue_wait: self.queue_wait.quantile(0.95),
            p99_queue_wait: self.queue_wait.quantile(0.99),
            p99_9_queue_wait: self.queue_wait.quantile(0.999),
            p99_interactive_wait: self.interactive_wait.quantile(0.99),
            p99_batch_wait: self.batch_wait.quantile(0.99),
            simulated_span: Time::from_ns(span_ns),
            plan_encodes: shards.iter().map(|s| s.plan_encodes).sum(),
            plan_hits: shards.iter().map(|s| s.plan_hits).sum(),
            backends,
            shards,
            stages: Vec::new(),
        }
    }
}

/// Point-in-time view of the server's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests served successfully (a whole video stream counts once).
    pub completed: u64,
    /// Interactive-lane requests admitted into a queue.
    pub admitted_interactive: u64,
    /// Batch-lane requests admitted into a queue.
    pub admitted_batch: u64,
    /// Requests bounced by admission control (queue full), both lanes.
    pub rejected: u64,
    /// Interactive-lane requests bounced by admission control.
    pub rejected_interactive: u64,
    /// Batch-lane requests bounced by admission control.
    pub rejected_batch: u64,
    /// Requests whose execution returned an error.
    pub errored: u64,
    /// Frames served across all successful requests (one per frame
    /// request, the processed frame count per video stream).
    pub served_frames: u64,
    /// Frames served inside video-stream requests.
    pub stream_frames: u64,
    /// Delta-gate blocks across all served stream frames.
    pub stream_blocks_total: u64,
    /// Delta-gate blocks served from the DMVA feedback path (skipped).
    pub stream_blocks_skipped: u64,
    /// Requests currently queued across all workload groups.
    pub queued: usize,
    /// Median simulated queueing latency (arrival → batch start).
    pub p50_queue_wait: Time,
    /// 95th-percentile simulated queueing latency.
    pub p95_queue_wait: Time,
    /// 99th-percentile simulated queueing latency.
    pub p99_queue_wait: Time,
    /// 99.9th-percentile simulated queueing latency — the tail that SLOs
    /// are written against.
    pub p99_9_queue_wait: Time,
    /// 99th-percentile queueing latency of the interactive lane alone —
    /// what priority draining protects under background soak.
    pub p99_interactive_wait: Time,
    /// 99th-percentile queueing latency of the batch lane alone.
    pub p99_batch_wait: Time,
    /// Simulated time between the first batch start and the latest batch
    /// completion — the denominator of [`MetricsSnapshot::throughput_fps`].
    pub simulated_span: Time,
    /// Weight-encoding passes across all shard plans: each shard compiles
    /// its workload group's plan exactly once at spawn, so this equals the
    /// shard count in a healthy pool.
    pub plan_encodes: u64,
    /// Executions served from the shards' cached plan encodings.
    pub plan_hits: u64,
    /// Per-backend totals, one entry per distinct execution backend in
    /// registration order — the telemetry a heterogeneous pool is compared
    /// by.
    pub backends: Vec<BackendSnapshot>,
    /// Per-shard batch statistics, one entry per worker thread.
    pub shards: Vec<ShardSnapshot>,
    /// Per-stage sim-time/energy attribution rows from the attached
    /// [`TraceRecorder`](lightator_telemetry::TraceRecorder), sorted by
    /// (track, category, stage). Empty unless the server was built with
    /// [`trace_recorder`](crate::server::ServerBuilder::trace_recorder).
    pub stages: Vec<StageTotals>,
}

impl MetricsSnapshot {
    /// Requests admitted across both scheduling lanes.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted_interactive + self.admitted_batch
    }

    /// Fraction of offered requests bounced by admission control:
    /// `rejected / (admitted + rejected)`, or zero before any request was
    /// offered. The open-loop soak harness's drop rate.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        let offered = self.admitted() + self.rejected;
        if offered == 0 {
            return 0.0;
        }
        self.rejected as f64 / offered as f64
    }

    /// Fraction of stream blocks served from the feedback path, or zero
    /// when no stream frames were served.
    #[must_use]
    pub fn stream_skip_ratio(&self) -> f64 {
        if self.stream_blocks_total == 0 {
            return 0.0;
        }
        self.stream_blocks_skipped as f64 / self.stream_blocks_total as f64
    }

    /// Sustained serving throughput in frames per simulated second.
    ///
    /// Because every shard is an independent virtual chip, this scales with
    /// the shard count when the offered load saturates the pool — the
    /// system-level payoff of the paper's per-chip KFPS figure.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        if self.simulated_span.seconds() == 0.0 {
            return 0.0;
        }
        self.served_frames as f64 / self.simulated_span.seconds()
    }

    /// Requests completed per simulated second of the serving span.
    #[must_use]
    pub fn sustained_qps(&self) -> f64 {
        if self.simulated_span.seconds() == 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.simulated_span.seconds()
    }

    /// Renders the snapshot as the metrics table printed by
    /// `examples/serving.rs`.
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<26} {:>12}", "completed requests", self.completed);
        let _ = writeln!(
            out,
            "{:<26} {:>12} ({} interactive, {} batch)",
            "admitted",
            self.admitted(),
            self.admitted_interactive,
            self.admitted_batch
        );
        let _ = writeln!(
            out,
            "{:<26} {:>12} ({} interactive, {} batch)",
            "rejected (overload)", self.rejected, self.rejected_interactive, self.rejected_batch
        );
        let _ = writeln!(
            out,
            "{:<26} {:>11.2}%",
            "drop rate",
            self.drop_rate() * 100.0
        );
        let _ = writeln!(out, "{:<26} {:>12}", "errored", self.errored);
        let _ = writeln!(out, "{:<26} {:>12}", "stream frames", self.stream_frames);
        let _ = writeln!(
            out,
            "{:<26} {:>11.1}%",
            "stream blocks skipped",
            self.stream_skip_ratio() * 100.0
        );
        let _ = writeln!(out, "{:<26} {:>12}", "queued now", self.queued);
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p50 queue wait",
            self.p50_queue_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p95 queue wait",
            self.p95_queue_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p99 queue wait",
            self.p99_queue_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p99.9 queue wait",
            self.p99_9_queue_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p99 interactive wait",
            self.p99_interactive_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p99 batch wait",
            self.p99_batch_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>12.0}",
            "throughput (frames/s, sim)",
            self.throughput_fps()
        );
        let _ = writeln!(out, "{:<26} {:>12}", "plan encodes", self.plan_encodes);
        let _ = writeln!(out, "{:<26} {:>12}", "plan cache hits", self.plan_hits);
        let _ = writeln!(out, "per-backend totals:");
        for backend in &self.backends {
            let _ = writeln!(
                out,
                "  {:<20} {:>5} frames on {} shard{}, {:>9.3} nJ, \
                 {:>8.0} frames/s, plan: {} encode{}, {} hits",
                backend.backend,
                backend.frames,
                backend.shards,
                if backend.shards == 1 { "" } else { "s" },
                backend.energy.nj(),
                backend.throughput_fps(),
                backend.plan_encodes,
                if backend.plan_encodes == 1 { "" } else { "s" },
                backend.plan_hits,
            );
        }
        let _ = writeln!(out, "per-shard batches (size: count) and plan reuse:");
        for shard in &self.shards {
            let sizes: Vec<String> = shard
                .batch_sizes
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(i, count)| format!("{}: {}", i + 1, count))
                .collect();
            let _ = writeln!(
                out,
                "  {:<16} {:>5} frames in {:>4} batches (mean {:.2}) [{}] \
                 limit now {}, {} stolen, plan: {} encode{}, {} hits",
                shard.shard,
                shard.frames,
                shard.batches,
                shard.mean_batch_size(),
                sizes.join(", "),
                shard.batch_limit,
                shard.steals,
                shard.plan_encodes,
                if shard.plan_encodes == 1 { "" } else { "s" },
                shard.plan_hits,
            );
        }
        let stage_rows: Vec<&StageTotals> = self
            .stages
            .iter()
            .filter(|row| row.category == "stage")
            .collect();
        if !stage_rows.is_empty() {
            let total_ns: f64 = stage_rows.iter().map(|r| r.sim_ns).sum();
            let total_pj: f64 = stage_rows.iter().map(|r| r.energy_pj).sum();
            let _ = writeln!(out, "per-stage attribution (simulated time, energy):");
            for row in stage_rows {
                let _ = writeln!(
                    out,
                    "  {:<36} {:<14} {:>7} x {:>12.3} us {:>5.1}% {:>12.3} nJ {:>5.1}%",
                    row.track,
                    row.stage,
                    row.count,
                    row.sim_ns / 1e3,
                    if total_ns > 0.0 {
                        100.0 * row.sim_ns / total_ns
                    } else {
                        0.0
                    },
                    row.energy_pj / 1e3,
                    if total_pj > 0.0 {
                        100.0 * row.energy_pj / total_pj
                    } else {
                        0.0
                    },
                );
            }
        }
        out
    }
}

/// Totals of every shard running on one execution backend.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSnapshot {
    /// Backend id (e.g. `photonic`, `electronic:eyeriss`).
    pub backend: String,
    /// Worker threads whose sessions run on this backend.
    pub shards: usize,
    /// Batches executed across those shards.
    pub batches: u64,
    /// Frames served across those shards.
    pub frames: u64,
    /// Simulated energy charged to completed work on this backend.
    pub energy: Energy,
    /// Weight-encoding passes across this backend's shard plans.
    pub plan_encodes: u64,
    /// Executions served from this backend's cached plan encodings.
    pub plan_hits: u64,
    /// The server-wide simulated span the frame count is measured over
    /// (shared across backends: all virtual chips run on one timeline).
    pub simulated_span: Time,
}

impl BackendSnapshot {
    /// Frames this backend served per simulated second of the server-wide
    /// span.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        if self.simulated_span.seconds() == 0.0 {
            return 0.0;
        }
        self.frames as f64 / self.simulated_span.seconds()
    }

    /// Mean simulated energy per served frame on this backend.
    #[must_use]
    pub fn energy_per_frame(&self) -> Energy {
        if self.frames == 0 {
            return Energy::from_pj(0.0);
        }
        Energy::from_pj(self.energy.pj() / self.frames as f64)
    }
}

/// Batch statistics of one shard (worker thread).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard label: `<workload>[@<backend>]/<index>`.
    pub shard: String,
    /// Id of the backend this shard's session runs on.
    pub backend: String,
    /// Batches executed.
    pub batches: u64,
    /// Frames served.
    pub frames: u64,
    /// `batch_sizes[s - 1]` counts batches of exactly `s` frames — the
    /// micro-batcher's batch-size distribution.
    pub batch_sizes: Vec<u64>,
    /// Batches this shard pulled from a sibling's sub-deque (work
    /// stealing).
    pub steals: u64,
    /// The shard's batch-size bound at snapshot time (a gauge; the SLO
    /// controller adapts it batch to batch).
    pub batch_limit: u64,
    /// The shard's flush deadline at snapshot time (a gauge under the SLO
    /// controller).
    pub flush_deadline: Time,
    /// Weight-encoding passes of this shard's compiled plan (1 in a
    /// healthy shard: compiled once at spawn, never re-encoded).
    pub plan_encodes: u64,
    /// Executions this shard served from its cached plan encoding.
    pub plan_hits: u64,
    /// Simulated energy charged to work completed on this shard.
    pub energy: Energy,
}

impl ShardSnapshot {
    /// Mean frames per batch on this shard.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.frames as f64 / self.batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let clock = VirtualClock::new();
        clock.advance_to(10);
        clock.advance_to(5);
        assert_eq!(clock.now(), 10);
        clock.advance_to(25);
        assert_eq!(clock.now(), 25);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bracket_the_samples() {
        let hist = LatencyHistogram::new();
        for ns in [0u64, 3, 3, 40, 40, 40, 500, 500, 6_000, 70_000] {
            hist.record(ns);
        }
        let p50 = hist.quantile(0.50);
        let p95 = hist.quantile(0.95);
        let p99 = hist.quantile(0.99);
        assert!(p50.ns() <= p95.ns());
        assert!(p95.ns() <= p99.ns());
        // Sub-bucket resolution: the p50 sample (40 ns) sits in a
        // unit-width bucket, so the ladder reports it exactly.
        assert_eq!(p50.ns(), 40.0);
        // p99 lands in the largest sample's bucket, whose upper bound
        // over-reports by at most 1/SUB_BUCKETS.
        assert!(p99.ns() >= 70_000.0);
        assert!(p99.ns() <= 70_000.0 * (1.0 + 1.0 / SUB_BUCKETS as f64));
    }

    #[test]
    fn log_linear_buckets_bound_the_quantile_error() {
        // Every recorded value must be bracketed by its bucket's upper
        // bound within 1/SUB_BUCKETS relative error — the satellite
        // contract that makes p99.9 meaningful.
        for value in [
            1u64,
            31,
            32,
            33,
            63,
            64,
            65,
            1_000,
            4_095,
            4_096,
            1_000_000,
            123_456_789,
            u64::MAX / 2,
        ] {
            let hist = LatencyHistogram::new();
            hist.record(value);
            let upper = hist.quantile(1.0).ns();
            assert!(upper >= value as f64, "upper {upper} < value {value}");
            assert!(
                upper <= value as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0,
                "upper {upper} over-reports value {value} by more than 1/{SUB_BUCKETS}"
            );
        }
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Adjacent values never map to decreasing buckets, and every
        // bucket's upper bound is reachable by the value that defines it.
        let mut previous = 0usize;
        for ns in 0u64..10_000 {
            let bucket = LatencyHistogram::bucket_of(ns);
            assert!(bucket >= previous, "bucket order broke at {ns}");
            assert!(LatencyHistogram::bucket_upper(bucket) >= ns);
            previous = bucket;
        }
        // The largest representable sample stays in range.
        let top = LatencyHistogram::bucket_of(u64::MAX);
        assert!(top < BUCKETS);
        assert_eq!(LatencyHistogram::bucket_upper(top), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.quantile(0.99).ns(), 0.0);
    }

    #[test]
    fn zero_latency_lands_in_the_zero_bucket() {
        let hist = LatencyHistogram::new();
        hist.record(0);
        assert_eq!(hist.quantile(1.0).ns(), 0.0);
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let inner = MetricsInner::new(vec![("classify/0".into(), "photonic".into())], 4);
        inner.completed.fetch_add(7, Ordering::Relaxed);
        inner.served_frames.fetch_add(7, Ordering::Relaxed);
        inner.shards[0].batches.fetch_add(2, Ordering::Relaxed);
        inner.shards[0].frames.fetch_add(7, Ordering::Relaxed);
        inner.shards[0].batch_sizes[3].fetch_add(1, Ordering::Relaxed);
        inner.shards[0].batch_sizes[2].fetch_add(1, Ordering::Relaxed);
        inner.first_start_ns.fetch_min(100, Ordering::Relaxed);
        inner.last_completion_ns.fetch_max(1_100, Ordering::Relaxed);
        let snap = inner.snapshot(3);
        assert_eq!(snap.completed, 7);
        assert_eq!(snap.queued, 3);
        assert_eq!(snap.simulated_span.ns(), 1_000.0);
        assert!((snap.throughput_fps() - 7.0 / 1e-6).abs() < 1.0);
        assert!((snap.sustained_qps() - 7.0 / 1e-6).abs() < 1.0);
        assert!((snap.shards[0].mean_batch_size() - 3.5).abs() < 1e-12);
        let table = snap.table();
        assert!(table.contains("classify/0"));
        assert!(table.contains("4: 1"));
    }

    #[test]
    fn lane_counters_feed_the_drop_rate() {
        let inner = MetricsInner::new(vec![("classify/0".into(), "photonic".into())], 2);
        for _ in 0..6 {
            inner.count_admitted(Priority::Interactive);
        }
        for _ in 0..2 {
            inner.count_admitted(Priority::Batch);
        }
        inner.count_rejected(Priority::Interactive);
        inner.count_rejected(Priority::Batch);
        inner.record_wait(Priority::Interactive, 10);
        inner.record_wait(Priority::Batch, 1_000);
        let snap = inner.snapshot(0);
        assert_eq!(snap.admitted_interactive, 6);
        assert_eq!(snap.admitted_batch, 2);
        assert_eq!(snap.admitted(), 8);
        assert_eq!(snap.rejected_interactive, 1);
        assert_eq!(snap.rejected_batch, 1);
        assert_eq!(snap.rejected, 2);
        assert!((snap.drop_rate() - 0.2).abs() < 1e-12);
        // The lane ladders split the combined histogram.
        assert_eq!(snap.p99_interactive_wait.ns(), 10.0);
        assert!(snap.p99_batch_wait.ns() >= 1_000.0);
        assert!(snap.p99_queue_wait.ns() >= 1_000.0);
        let table = snap.table();
        assert!(table.contains("drop rate"));
        assert!(table.contains("p99 interactive wait"));
        assert!(table.contains("6 interactive, 2 batch"));
    }

    #[test]
    fn p99_9_extends_the_quantile_ladder() {
        let hist = LatencyHistogram::new();
        // 998 fast samples and one slow outlier: p99 stays in the fast
        // bucket, p99.9 must reach the outlier's bucket (rank 999 of 999).
        for _ in 0..998 {
            hist.record(10);
        }
        hist.record(1_000_000);
        // Unit-width sub-buckets report the fast samples exactly.
        assert_eq!(hist.quantile(0.99).ns(), 10.0);
        assert!(hist.quantile(0.999).ns() >= 1_000_000.0);

        let inner = MetricsInner::new(vec![("acquire/0".into(), "photonic".into())], 1);
        for _ in 0..998 {
            inner.queue_wait.record(10);
        }
        inner.queue_wait.record(1_000_000);
        let snap = inner.snapshot(0);
        assert!(snap.p99_9_queue_wait.ns() >= snap.p99_queue_wait.ns());
        assert!(snap.p99_9_queue_wait.ns() >= 1_000_000.0);
        assert!(snap.table().contains("p99.9 queue wait"));
    }

    #[test]
    fn table_appends_stage_attribution_when_rows_are_present() {
        let inner = MetricsInner::new(vec![("classify/0".into(), "photonic".into())], 2);
        let mut snap = inner.snapshot(0);
        assert!(!snap.table().contains("per-stage attribution"));
        snap.stages = vec![
            StageTotals {
                track: "shard:classify/0".into(),
                category: "stage".into(),
                stage: "mac_rows".into(),
                count: 4,
                sim_ns: 3_000.0,
                energy_pj: 9_000.0,
            },
            StageTotals {
                track: "shard:classify/0".into(),
                category: "request".into(),
                stage: "queue".into(),
                count: 4,
                sim_ns: 500.0,
                energy_pj: 0.0,
            },
        ];
        let table = snap.table();
        let section = table
            .split("per-stage attribution")
            .nth(1)
            .expect("attribution section present");
        assert!(section.contains("mac_rows"), "table:\n{table}");
        // Only category `stage` rows enter the attribution section.
        assert!(!section.contains("queue"), "table:\n{table}");
        assert!(section.contains("100.0%"), "table:\n{table}");
    }

    #[test]
    fn snapshot_folds_shards_into_per_backend_totals() {
        let inner = MetricsInner::new(
            vec![
                ("classify/0".into(), "photonic".into()),
                ("classify/1".into(), "photonic".into()),
                (
                    "kernel:sobel-x@electronic:eyeriss/0".into(),
                    "electronic:eyeriss".into(),
                ),
            ],
            2,
        );
        inner.shards[0].frames.fetch_add(4, Ordering::Relaxed);
        inner.shards[0].plan_encodes.fetch_add(1, Ordering::Relaxed);
        inner.shards[0].add_energy_pj(100.0);
        inner.shards[1].frames.fetch_add(2, Ordering::Relaxed);
        inner.shards[1].plan_encodes.fetch_add(1, Ordering::Relaxed);
        inner.shards[1].add_energy_pj(50.0);
        inner.shards[2].frames.fetch_add(3, Ordering::Relaxed);
        inner.shards[2].plan_encodes.fetch_add(1, Ordering::Relaxed);
        inner.shards[2].add_energy_pj(9_000.0);
        inner.first_start_ns.fetch_min(0, Ordering::Relaxed);
        inner.last_completion_ns.fetch_max(1_000, Ordering::Relaxed);
        let snap = inner.snapshot(0);
        assert_eq!(snap.backends.len(), 2);
        let photonic = &snap.backends[0];
        assert_eq!(photonic.backend, "photonic");
        assert_eq!(photonic.shards, 2);
        assert_eq!(photonic.frames, 6);
        assert!((photonic.energy.pj() - 150.0).abs() < 1e-9);
        assert_eq!(photonic.plan_encodes, 2);
        assert!((photonic.energy_per_frame().pj() - 25.0).abs() < 1e-9);
        assert!(photonic.throughput_fps() > 0.0);
        let electronic = &snap.backends[1];
        assert_eq!(electronic.backend, "electronic:eyeriss");
        assert_eq!(electronic.shards, 1);
        assert_eq!(electronic.frames, 3);
        assert!((electronic.energy.pj() - 9_000.0).abs() < 1e-9);
        let table = snap.table();
        assert!(table.contains("per-backend totals"));
        assert!(table.contains("electronic:eyeriss"));
    }
}
