//! Seeded-violation fixture for the lint gate's integration tests.
//!
//! This file is never compiled — it lives under `tests/fixtures/` (which
//! the workspace scan skips) and exists only to be scanned with
//! `--root …/fixtures/seeded`, where it must trip every rule exactly
//! once per seeded site, plus one *suppressed* finding to prove the
//! escape hatch is honoured.

pub fn seeded_violations(x: Option<u32>) -> u32 {
    let started = std::time::Instant::now(); // no-wall-clock
    let mut table = std::collections::HashMap::new(); // no-hash-collections
    table.insert(1u32, started.elapsed().as_nanos() as u32);
    let mut rng = rand::rngs::SmallRng::from_entropy(); // no-unseeded-rng
    let _ = rng;
    unsafe { std::ptr::null::<u32>().read() }; // no-unsafe
    x.unwrap() // no-unwrap
}

pub fn suppressed_site(x: Option<u32>) -> u32 {
    // lightator: allow(no-unwrap)
    x.expect("the fixture documents this invariant")
}
