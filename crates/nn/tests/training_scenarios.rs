//! Training-convergence and quantization-degradation scenarios for the DNN
//! stack — the application-level behaviour Table 1's accuracy columns rely on.

use lightator_nn::datasets::{generate, SyntheticConfig};
use lightator_nn::models::{build_lenet, build_mlp, build_vgg_small};
use lightator_nn::quant::{quantize_model_weights, Precision, PrecisionSchedule};
use lightator_nn::spec::NetworkSpec;
use lightator_nn::train::{evaluate, fine_tune_quantized, train, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// An MLP reaches high accuracy on the synthetic task, and post-training
/// quantization degrades it monotonically (weakly) as bits shrink — the
/// qualitative accuracy trend of Table 1.
#[test]
fn quantization_degrades_accuracy_monotonically() {
    let mut rng = SmallRng::seed_from_u64(31);
    let dataset = generate(
        "quant-trend",
        SyntheticConfig {
            classes: 4,
            channels: 1,
            height: 14,
            width: 14,
            train_per_class: 25,
            test_per_class: 10,
            noise: 0.05,
            max_shift: 1,
        },
        &mut rng,
    )
    .expect("dataset");
    let mut model = build_mlp(&dataset.input_shape(), 4, 32, &mut rng).expect("model");
    train(
        &mut model,
        &dataset,
        TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
    )
    .expect("train");
    let float_acc = evaluate(&mut model, &dataset).expect("eval");
    assert!(
        float_acc > 0.7,
        "float accuracy {float_acc} too low for the trend test"
    );

    let mut accuracies = Vec::new();
    for precision in [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()] {
        let mut q = model.clone();
        quantize_model_weights(&mut q, PrecisionSchedule::Uniform(precision));
        accuracies.push(evaluate(&mut q, &dataset).expect("eval"));
    }
    // 4-bit stays close to float; 2-bit is allowed to drop but never above
    // the float reference by more than noise.
    assert!(accuracies[0] >= float_acc - 0.15);
    assert!(accuracies[2] <= accuracies[0] + 0.1);
}

/// Quantization-aware fine-tuning recovers accuracy relative to plain
/// post-training quantization at the harshest precision — the reason the
/// paper spends six extra epochs on QAT.
#[test]
fn qat_recovers_low_precision_accuracy() {
    let mut rng = SmallRng::seed_from_u64(32);
    let dataset = generate("qat", SyntheticConfig::tiny(3), &mut rng).expect("dataset");
    let mut model = build_mlp(&dataset.input_shape(), 3, 24, &mut rng).expect("model");
    train(
        &mut model,
        &dataset,
        TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
    )
    .expect("train");

    let schedule = PrecisionSchedule::Uniform(Precision::w2a4());
    let mut ptq = model.clone();
    quantize_model_weights(&mut ptq, schedule);
    let ptq_acc = evaluate(&mut ptq, &dataset).expect("eval");

    let mut qat = model.clone();
    fine_tune_quantized(&mut qat, &dataset, schedule, 4, 0.02).expect("qat");
    let qat_acc = evaluate(&mut qat, &dataset).expect("eval");

    assert!(
        qat_acc + 1e-9 >= ptq_acc - 0.1,
        "QAT accuracy {qat_acc} collapsed below PTQ {ptq_acc}"
    );
}

/// LeNet trains end to end on the MNIST stand-in and beats chance by a wide
/// margin within a laptop-scale budget.
#[test]
fn lenet_learns_the_synthetic_mnist_task() {
    let mut rng = SmallRng::seed_from_u64(33);
    let dataset = generate(
        "mini-mnist",
        SyntheticConfig {
            classes: 4,
            channels: 1,
            height: 28,
            width: 28,
            train_per_class: 12,
            test_per_class: 5,
            noise: 0.05,
            max_shift: 1,
        },
        &mut rng,
    )
    .expect("dataset");
    let mut model = build_lenet(4, &mut rng).expect("lenet");
    train(
        &mut model,
        &dataset,
        TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        },
    )
    .expect("train");
    let acc = evaluate(&mut model, &dataset).expect("eval");
    assert!(
        acc > 0.5,
        "LeNet accuracy {acc} should comfortably beat 25% chance"
    );
}

/// The small VGG-style CIFAR model builds, trains a little and its structural
/// spec counterpart agrees on the number of weighted layers.
#[test]
fn vgg_small_matches_its_spec_family() {
    let mut rng = SmallRng::seed_from_u64(34);
    let model = build_vgg_small(10, 4, &mut rng).expect("model");
    // The executable model is a width-reduced stand-in; the full VGG9 spec
    // used by the architecture simulator has 9 weighted layers.
    assert_eq!(model.weighted_layer_count(), 5);
    assert_eq!(NetworkSpec::vgg9(10).weighted_layer_count(), 9);
    assert_eq!(model.output_shape().expect("shape"), vec![10]);
}

/// Dataset regeneration with the same seed is bit-identical, while different
/// seeds differ — experiments are reproducible by construction.
#[test]
fn dataset_reproducibility() {
    let config = SyntheticConfig::tiny(3);
    let a = generate("a", config, &mut SmallRng::seed_from_u64(1)).expect("dataset");
    let b = generate("b", config, &mut SmallRng::seed_from_u64(1)).expect("dataset");
    let c = generate("c", config, &mut SmallRng::seed_from_u64(2)).expect("dataset");
    assert_eq!(a.train()[0].input, b.train()[0].input);
    assert_ne!(a.train()[0].input, c.train()[0].input);
}
