//! Photodetector and balanced photodetector (BPD) models.
//!
//! At the end of every MVM-bank arm, a balanced photodetector accumulates the
//! weighted wavelengths and converts the optical sum into a photocurrent
//! (paper §3, "All-in-One Convolver"). Using a *balanced* pair lets the core
//! represent signed weights: positive products are routed to the upper diode
//! and negative products to the lower diode, and the output current is the
//! difference.

use crate::error::{PhotonicsError, Result};
use crate::units::{Current, Power, Time};
use serde::{Deserialize, Serialize};

/// Elementary charge in coulombs.
const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;
/// Boltzmann constant in J/K.
const BOLTZMANN: f64 = 1.380_649e-23;

/// Static parameters of a PIN photodiode plus its transimpedance front end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotodetectorConfig {
    /// Responsivity in A/W (mA/mW).
    pub responsivity_a_per_w: f64,
    /// Dark current in µA.
    pub dark_current_ua: f64,
    /// Detection bandwidth in GHz.
    pub bandwidth_ghz: f64,
    /// Equivalent load resistance of the TIA in ohms (for thermal noise).
    pub load_resistance_ohm: f64,
    /// Operating temperature in kelvin.
    pub temperature_k: f64,
    /// Static electrical power of the detector + TIA in mW.
    pub static_power_mw: f64,
}

impl Default for PhotodetectorConfig {
    fn default() -> Self {
        Self {
            responsivity_a_per_w: 1.0,
            dark_current_ua: 0.01,
            bandwidth_ghz: 20.0,
            load_resistance_ohm: 5_000.0,
            temperature_k: 300.0,
            static_power_mw: 0.12,
        }
    }
}

impl PhotodetectorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] naming the first
    /// non-finite or non-positive parameter.
    pub fn validate(&self) -> Result<()> {
        let strictly_positive = [
            ("responsivity_a_per_w", self.responsivity_a_per_w),
            ("bandwidth_ghz", self.bandwidth_ghz),
            ("load_resistance_ohm", self.load_resistance_ohm),
            ("temperature_k", self.temperature_k),
        ];
        for (name, value) in strictly_positive {
            if !value.is_finite() || value <= 0.0 {
                return Err(PhotonicsError::InvalidParameter { name, value });
            }
        }
        let non_negative = [
            ("dark_current_ua", self.dark_current_ua),
            ("static_power_mw", self.static_power_mw),
        ];
        for (name, value) in non_negative {
            if !value.is_finite() || value < 0.0 {
                return Err(PhotonicsError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Minimum integration time imposed by the bandwidth.
    #[must_use]
    pub fn response_time(&self) -> Time {
        Time::from_ns(1.0 / self.bandwidth_ghz)
    }
}

/// A single photodiode.
///
/// ```
/// use lightator_photonics::photodetector::{Photodetector, PhotodetectorConfig};
/// use lightator_photonics::units::Power;
///
/// # fn main() -> Result<(), lightator_photonics::PhotonicsError> {
/// let pd = Photodetector::new(PhotodetectorConfig::default())?;
/// let i = pd.photocurrent(Power::from_mw(1.0));
/// assert!((i.ma() - 1.0).abs() < 0.05); // ~1 A/W responsivity
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Photodetector {
    config: PhotodetectorConfig,
}

impl Photodetector {
    /// Creates a photodetector.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn new(config: PhotodetectorConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &PhotodetectorConfig {
        &self.config
    }

    /// Photocurrent produced by an incident optical power (including dark
    /// current).
    #[must_use]
    pub fn photocurrent(&self, incident: Power) -> Current {
        let signal_ma = incident.mw() * self.config.responsivity_a_per_w;
        Current::from_ma(signal_ma + self.config.dark_current_ua / 1e3)
    }

    /// Root-mean-square shot-noise current for a given average photocurrent,
    /// `σ_shot = sqrt(2 q I B)`.
    #[must_use]
    pub fn shot_noise_rms(&self, average: Current) -> Current {
        let bandwidth_hz = self.config.bandwidth_ghz * 1e9;
        let variance = 2.0 * ELEMENTARY_CHARGE * average.amps().abs() * bandwidth_hz;
        Current::from_ma(variance.sqrt() * 1e3)
    }

    /// Root-mean-square thermal (Johnson) noise current of the load,
    /// `σ_th = sqrt(4 k T B / R)`.
    #[must_use]
    pub fn thermal_noise_rms(&self) -> Current {
        let bandwidth_hz = self.config.bandwidth_ghz * 1e9;
        let variance = 4.0 * BOLTZMANN * self.config.temperature_k * bandwidth_hz
            / self.config.load_resistance_ohm;
        Current::from_ma(variance.sqrt() * 1e3)
    }

    /// Total RMS noise current (shot + thermal added in quadrature).
    #[must_use]
    pub fn total_noise_rms(&self, average: Current) -> Current {
        let shot = self.shot_noise_rms(average).ma();
        let thermal = self.thermal_noise_rms().ma();
        Current::from_ma((shot * shot + thermal * thermal).sqrt())
    }

    /// Signal-to-noise ratio (linear) for an incident optical power.
    #[must_use]
    pub fn snr(&self, incident: Power) -> f64 {
        let signal = self.photocurrent(incident);
        let noise = self.total_noise_rms(signal);
        if noise.ma() == 0.0 {
            return f64::INFINITY;
        }
        signal.ma() / noise.ma()
    }

    /// Static electrical power of the detector front end.
    #[must_use]
    pub fn static_power(&self) -> Power {
        Power::from_mw(self.config.static_power_mw)
    }
}

/// A balanced photodetector: two matched photodiodes whose photocurrents are
/// subtracted, yielding a signed output proportional to the difference of the
/// optical powers on its two inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalancedPhotodetector {
    positive: Photodetector,
    negative: Photodetector,
}

impl BalancedPhotodetector {
    /// Creates a balanced pair from a single shared configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn new(config: PhotodetectorConfig) -> Result<Self> {
        Ok(Self {
            positive: Photodetector::new(config)?,
            negative: Photodetector::new(config)?,
        })
    }

    /// The configuration shared by both diodes.
    #[must_use]
    pub fn config(&self) -> &PhotodetectorConfig {
        self.positive.config()
    }

    /// Differential output current for optical powers on the positive and
    /// negative inputs. Dark currents cancel by construction.
    #[must_use]
    pub fn differential_current(&self, positive: Power, negative: Power) -> Current {
        let ip = self.positive.photocurrent(positive);
        let in_ = self.negative.photocurrent(negative);
        Current::from_ma(ip.ma() - in_.ma())
    }

    /// Normalised signed output in `[-1, 1]` given a full-scale optical power
    /// (the power that corresponds to an output of ±1).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if `full_scale` is zero
    /// or negative.
    pub fn normalized_output(
        &self,
        positive: Power,
        negative: Power,
        full_scale: Power,
    ) -> Result<f64> {
        if full_scale.mw() <= 0.0 || !full_scale.mw().is_finite() {
            return Err(PhotonicsError::InvalidParameter {
                name: "full_scale",
                value: full_scale.mw(),
            });
        }
        let full = self.positive.photocurrent(full_scale).ma()
            - self.positive.config().dark_current_ua / 1e3;
        let diff = self.differential_current(positive, negative).ma();
        Ok((diff / full).clamp(-1.0, 1.0))
    }

    /// Total RMS noise of the balanced pair for the given pair of inputs
    /// (both diodes contribute, added in quadrature).
    #[must_use]
    pub fn total_noise_rms(&self, positive: Power, negative: Power) -> Current {
        let np = self
            .positive
            .total_noise_rms(self.positive.photocurrent(positive))
            .ma();
        let nn = self
            .negative
            .total_noise_rms(self.negative.photocurrent(negative))
            .ma();
        Current::from_ma((np * np + nn * nn).sqrt())
    }

    /// Static electrical power of the pair (both diodes + shared TIA counted
    /// once, matching the per-arm BPD budget used in the paper's breakdown).
    #[must_use]
    pub fn static_power(&self) -> Power {
        self.positive.static_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pd() -> Photodetector {
        Photodetector::new(PhotodetectorConfig::default()).expect("valid")
    }

    #[test]
    fn photocurrent_tracks_responsivity() {
        let pd = pd();
        let i = pd.photocurrent(Power::from_mw(2.0));
        assert!((i.ma() - 2.0).abs() < 0.01);
    }

    #[test]
    fn dark_current_present_with_no_light() {
        let pd = pd();
        let i = pd.photocurrent(Power::zero());
        assert!(i.ma() > 0.0 && i.ma() < 0.001);
    }

    #[test]
    fn shot_noise_grows_with_signal() {
        let pd = pd();
        let small = pd.shot_noise_rms(Current::from_ma(0.1));
        let large = pd.shot_noise_rms(Current::from_ma(1.0));
        assert!(large.ma() > small.ma());
    }

    #[test]
    fn thermal_noise_is_positive_and_signal_independent() {
        let pd = pd();
        assert!(pd.thermal_noise_rms().ma() > 0.0);
    }

    #[test]
    fn snr_improves_with_power() {
        let pd = pd();
        assert!(pd.snr(Power::from_mw(1.0)) > pd.snr(Power::from_uw(1.0)));
        // A healthy 1 mW signal should have a very comfortable SNR.
        assert!(pd.snr(Power::from_mw(1.0)) > 100.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = PhotodetectorConfig {
            responsivity_a_per_w: 0.0,
            ..PhotodetectorConfig::default()
        };
        assert!(Photodetector::new(cfg).is_err());
        let cfg = PhotodetectorConfig {
            dark_current_ua: -1.0,
            ..PhotodetectorConfig::default()
        };
        assert!(Photodetector::new(cfg).is_err());
    }

    #[test]
    fn balanced_output_is_signed_difference() {
        let bpd = BalancedPhotodetector::new(PhotodetectorConfig::default()).expect("valid");
        let pos = bpd.differential_current(Power::from_mw(1.0), Power::from_mw(0.25));
        let neg = bpd.differential_current(Power::from_mw(0.25), Power::from_mw(1.0));
        assert!(pos.ma() > 0.0);
        assert!(neg.ma() < 0.0);
        assert!(
            (pos.ma() + neg.ma()).abs() < 1e-12,
            "symmetric inputs must cancel"
        );
    }

    #[test]
    fn balanced_normalized_output_bounded() {
        let bpd = BalancedPhotodetector::new(PhotodetectorConfig::default()).expect("valid");
        let full = Power::from_mw(1.0);
        let out = bpd
            .normalized_output(Power::from_mw(0.75), Power::from_mw(0.25), full)
            .expect("ok");
        assert!((out - 0.5).abs() < 0.01);
        let clipped = bpd
            .normalized_output(Power::from_mw(10.0), Power::zero(), full)
            .expect("ok");
        assert!((clipped - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_normalized_output_rejects_bad_full_scale() {
        let bpd = BalancedPhotodetector::new(PhotodetectorConfig::default()).expect("valid");
        assert!(bpd
            .normalized_output(Power::from_mw(1.0), Power::zero(), Power::zero())
            .is_err());
    }

    #[test]
    fn response_time_matches_bandwidth() {
        let cfg = PhotodetectorConfig::default();
        assert!((cfg.response_time().ns() - 0.05).abs() < 1e-12);
    }
}
