//! Streaming video through the frame-delta compressive path, standalone
//! and behind the sharded server.
//!
//! ```text
//! cargo run --release --example video_stream
//! ```
//!
//! A low-motion synthetic scene (a bright square drifting over a static
//! background) is filtered with a Sobel kernel. The temporal delta gate
//! recomputes only the blocks that changed; everything else rides the DMVA
//! feedback path, which is where the simulated-time and energy wins come
//! from. A high-motion scene is run for contrast, then the same streams go
//! through `lightator-serve` as `Request::VideoStream`.

use lightator_suite::sensor::video::{SyntheticVideo, SyntheticVideoConfig};
use lightator_suite::serve::{Request, Server};
use lightator_suite::{ImageKernel, Platform, StreamConfig, Workload};

const SENSOR: usize = 32;
const FRAMES: usize = 24;

fn workload() -> Workload {
    Workload::VideoStream {
        kernel: ImageKernel::SobelX,
        stream: StreamConfig {
            block_size: 4,
            delta_threshold: 0.05,
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .build()?;

    // Standalone: one session, two motion regimes.
    let mut session = platform.session(workload())?;
    for (name, config) in [
        (
            "low motion ",
            SyntheticVideoConfig::low_motion(SENSOR, SENSOR, FRAMES),
        ),
        (
            "high motion",
            SyntheticVideoConfig::high_motion(SENSOR, SENSOR, FRAMES),
        ),
    ] {
        let frames: Vec<_> = SyntheticVideo::new(config)?.collect();
        let report = session.run_stream(&frames)?;
        println!("{name}  {}", report.summary());
    }

    // Served: the same stream as a fourth request variant with its own
    // shard queue; the pool stays bit-identical to sequential execution.
    let server = Server::builder(platform)
        .shards(2)
        .queue_depth(8)
        .workload(workload())
        .build()?;
    let video = SyntheticVideo::new(SyntheticVideoConfig::low_motion(SENSOR, SENSOR, FRAMES))?;
    let chunk: Vec<_> = video.collect();
    let pendings: Vec<_> = (0..4)
        .map(|_| {
            server.submit(Request::VideoStream {
                kernel: ImageKernel::SobelX,
                frames: chunk.clone(),
            })
        })
        .collect::<Result<_, _>>()?;
    for (i, pending) in pendings.into_iter().enumerate() {
        let report = pending.wait_stream()?;
        println!(
            "served stream {i}: {} frames, {:.0}% skipped, {:.2}x vs dense",
            report.frames_processed(),
            report.skip_ratio() * 100.0,
            report.speedup_vs_dense()
        );
    }
    println!("\n{}", server.shutdown().table());
    Ok(())
}
