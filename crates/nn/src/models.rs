//! Executable model builders.
//!
//! [`NetworkSpec`](crate::spec::NetworkSpec) describes topologies
//! structurally for the architecture simulator; the builders here construct
//! *trainable* [`Sequential`] models for the functional accuracy experiments.
//! The LeNet builder is full-size; the VGG-style builder is width-reduced so
//! that training on a laptop-scale budget stays tractable (documented as a
//! substitution in DESIGN.md §5).

use crate::error::{NnError, Result};
use crate::layers::{Activation, AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d};
use crate::model::Sequential;
use rand::Rng;

/// Builds a small multi-layer perceptron: flatten → hidden ReLU → logits.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] for zero classes or hidden units.
pub fn build_mlp<R: Rng + ?Sized>(
    input_shape: &[usize; 3],
    classes: usize,
    hidden: usize,
    rng: &mut R,
) -> Result<Sequential> {
    if classes == 0 || hidden == 0 {
        return Err(NnError::InvalidParameter {
            name: "classes_or_hidden",
            value: 0.0,
        });
    }
    let input_features = input_shape.iter().product();
    let mut model = Sequential::new(input_shape);
    model.push(Flatten::new());
    model.push(Linear::new(input_features, hidden, rng)?);
    model.push(Activation::relu());
    model.push(Linear::new(hidden, classes, rng)?);
    Ok(model)
}

/// Builds the full LeNet-5 used for the MNIST experiments: two 5×5
/// convolutions with average pooling followed by three fully connected
/// layers, ReLU activations throughout (as supported by the Lightator
/// periphery).
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] for zero classes.
pub fn build_lenet<R: Rng + ?Sized>(classes: usize, rng: &mut R) -> Result<Sequential> {
    if classes == 0 {
        return Err(NnError::InvalidParameter {
            name: "classes",
            value: 0.0,
        });
    }
    let mut model = Sequential::new(&[1, 28, 28]);
    model.push(Conv2d::new(1, 6, 5, 1, 2, rng)?);
    model.push(Activation::relu());
    model.push(AvgPool2d::new(2)?);
    model.push(Conv2d::new(6, 16, 5, 1, 0, rng)?);
    model.push(Activation::relu());
    model.push(AvgPool2d::new(2)?);
    model.push(Flatten::new());
    model.push(Linear::new(400, 120, rng)?);
    model.push(Activation::relu());
    model.push(Linear::new(120, 84, rng)?);
    model.push(Activation::relu());
    model.push(Linear::new(84, classes, rng)?);
    Ok(model)
}

/// Builds a width-reduced VGG9-style CNN for 3×32×32 inputs: three conv/pool
/// stages followed by two fully connected layers. `width` scales the channel
/// counts (the paper's full VGG9 corresponds to `width = 64`; the accuracy
/// experiments default to a narrower, faster variant).
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] for zero classes or width.
pub fn build_vgg_small<R: Rng + ?Sized>(
    classes: usize,
    width: usize,
    rng: &mut R,
) -> Result<Sequential> {
    if classes == 0 || width == 0 {
        return Err(NnError::InvalidParameter {
            name: "classes_or_width",
            value: 0.0,
        });
    }
    let w1 = width;
    let w2 = width * 2;
    let w3 = width * 4;
    let mut model = Sequential::new(&[3, 32, 32]);
    model.push(Conv2d::new(3, w1, 3, 1, 1, rng)?);
    model.push(Activation::relu());
    model.push(MaxPool2d::new(2)?);
    model.push(Conv2d::new(w1, w2, 3, 1, 1, rng)?);
    model.push(Activation::relu());
    model.push(MaxPool2d::new(2)?);
    model.push(Conv2d::new(w2, w3, 3, 1, 1, rng)?);
    model.push(Activation::relu());
    model.push(MaxPool2d::new(2)?);
    model.push(Flatten::new());
    model.push(Linear::new(w3 * 4 * 4, 64, rng)?);
    model.push(Activation::relu());
    model.push(Linear::new(64, classes, rng)?);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes_check_out() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = build_mlp(&[1, 12, 12], 3, 16, &mut rng).expect("ok");
        assert_eq!(model.output_shape().expect("ok"), vec![3]);
        let y = model.forward(&Tensor::full(&[1, 12, 12], 0.4)).expect("ok");
        assert_eq!(y.shape(), &[3]);
        assert!(build_mlp(&[1, 12, 12], 0, 16, &mut rng).is_err());
    }

    #[test]
    fn lenet_matches_classic_dimensions() {
        let mut rng = SmallRng::seed_from_u64(2);
        let model = build_lenet(10, &mut rng).expect("ok");
        assert_eq!(model.output_shape().expect("ok"), vec![10]);
        assert_eq!(model.weighted_layer_count(), 5);
        // Classic LeNet-5 parameter count is about 61.7k.
        let params = model.parameter_count();
        assert!(
            params > 55_000 && params < 70_000,
            "LeNet parameters {params}"
        );
    }

    #[test]
    fn lenet_forward_runs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut model = build_lenet(10, &mut rng).expect("ok");
        let y = model.forward(&Tensor::full(&[1, 28, 28], 0.5)).expect("ok");
        assert_eq!(y.shape(), &[10]);
    }

    #[test]
    fn vgg_small_shapes_check_out() {
        let mut rng = SmallRng::seed_from_u64(4);
        let model = build_vgg_small(10, 8, &mut rng).expect("ok");
        assert_eq!(model.output_shape().expect("ok"), vec![10]);
        assert_eq!(model.weighted_layer_count(), 5);
        assert!(build_vgg_small(10, 0, &mut rng).is_err());
    }

    #[test]
    fn vgg_small_forward_runs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model = build_vgg_small(10, 4, &mut rng).expect("ok");
        let y = model.forward(&Tensor::full(&[3, 32, 32], 0.5)).expect("ok");
        assert_eq!(y.shape(), &[10]);
    }
}
