//! Execution backends: pluggable lowering targets for [`CompiledPlan`]s.
//!
//! Lightator's headline numbers are *comparisons* — the photonic core
//! against electronic accelerators and other optical designs. This module
//! turns those comparison points into first-class execution targets: a
//! [`Backend`] lowers a [`Workload`] + [`PlatformConfig`] pair into a
//! [`LoweredPlan`] (the executable form a
//! [`Session`](crate::platform::Session) drives), reports the workload's
//! performance model, and answers capability/precision queries.
//!
//! Three implementations exist across the workspace:
//!
//! * [`PhotonicBackend`] (here) — the paper's optical near-sensor core,
//!   wrapping [`PhotonicExecutor`]. This is the **default** backend: a
//!   session opened without an explicit [`BackendId`] resolves to it and
//!   behaves bit-for-bit like the pre-trait `Session` (same plan, same
//!   frame-indexed analog-noise stream, same reports).
//! * `ElectronicReference` (in `lightator-baselines`) — executes the same
//!   compiled plans digitally in fp32 while charging the
//!   `ElectronicBaseline` latency/power model, so photonic-vs-electronic
//!   agreement is a differential property test instead of a hand-checked
//!   table.
//! * `RooflineBackend` (in `lightator-baselines`) — the `OpticalBaseline`
//!   analytical roofline models; it answers [`Backend::performance`] but
//!   does not execute ([`Backend::executes`] is `false`).
//!
//! Backends are registered on a
//! [`PlatformBuilder`](crate::platform::PlatformBuilder) and resolved by
//! [`BackendId`] when a session opens
//! ([`Platform::session_on`](crate::platform::Platform::session_on)); the
//! serve crate routes request groups to shards by `(workload, backend)`
//! through the same registry.

use std::fmt;

use crate::error::{CoreError, Result};
use crate::exec::{PhotonicAccuracy, PhotonicExecutor};
use crate::plan::CompiledPlan;
use crate::platform::{PlatformConfig, Workload};
use crate::sim::{ArchitectureSimulator, SimulationReport};
use lightator_nn::datasets::Dataset;
use lightator_nn::model::Sequential;
use lightator_nn::quant::PrecisionSchedule;
use lightator_nn::spec::NetworkSpec;
use lightator_nn::tensor::Tensor;

/// Identifier of one execution backend (`"photonic"`,
/// `"electronic:eyeriss"`, `"roofline:lightbulb"`, ...).
///
/// Ids are plain lowercase strings so they round-trip through the
/// `key = value` text configuration format unchanged. The photonic default
/// is always resolvable, even on platforms that never registered a
/// backend.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(String);

impl BackendId {
    /// The default photonic backend's id.
    #[must_use]
    pub fn photonic() -> Self {
        Self("photonic".to_string())
    }

    /// Builds an id from an arbitrary label.
    #[must_use]
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }

    /// The id as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this is the default photonic backend.
    #[must_use]
    pub fn is_photonic(&self) -> bool {
        self.0 == "photonic"
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BackendId {
    fn from(id: &str) -> Self {
        Self::new(id)
    }
}

/// A workload lowered onto one backend: the executable object a
/// [`Session`](crate::platform::Session) drives.
///
/// A lowered plan owns its [`CompiledPlan`] (CA operator, lowered model,
/// encoded weight bank, reuse counters) plus whatever per-backend execution
/// state it needs — the photonic implementation carries the frame-indexed
/// [`PhotonicExecutor`]. The `Session` keeps all workload-level logic
/// (shape checks, outcome construction, the stream gate); the lowered plan
/// only answers "run these tensors".
///
/// **Determinism contract.** `forward` consumes exactly one frame index;
/// `forward_batch` one per input; `forward_frame_batch` runs every input
/// inside a *single* frame's noise stream (the video-stream tile path).
/// Backends without analog noise still maintain the frame counter so
/// seek/replay semantics are identical across backends.
pub trait LoweredPlan: fmt::Debug + Send + Sync {
    /// Runs one input through the lowered model.
    ///
    /// # Errors
    ///
    /// Propagates backend execution errors.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Runs a batch, one frame index per input.
    ///
    /// # Errors
    ///
    /// Propagates backend execution errors.
    fn forward_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>>;

    /// Runs every input inside one frame's noise stream (the per-block
    /// stream tile path), consuming exactly one frame index.
    ///
    /// # Errors
    ///
    /// Propagates backend execution errors.
    fn forward_frame_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>>;

    /// Index of the global frame the next forward executes as.
    fn next_frame_index(&self) -> u64;

    /// Positions the lowered plan at global frame `index`.
    fn set_next_frame_index(&mut self, index: u64);

    /// The compiled plan this lowering executes.
    fn plan(&self) -> &CompiledPlan;

    /// Mutable access to the compiled plan (hit accounting, tile buffers).
    fn plan_mut(&mut self) -> &mut CompiledPlan;

    /// Whether executions reuse the compiled plan (the default).
    fn plan_reuse(&self) -> bool;

    /// Switches between plan-cached execution and the per-call-encode path.
    fn set_plan_reuse(&mut self, enabled: bool);

    /// How many workers tile the MAC loops (1 = sequential). Backends
    /// without a tiled execution path report 1.
    fn workers(&self) -> usize {
        1
    }

    /// Sets the worker count used to tile the MAC loops. Tiling is
    /// bit-exact, so this only affects throughput; backends without a
    /// tiled path ignore it.
    fn set_workers(&mut self, workers: usize) {
        let _ = workers;
    }

    /// Evaluates classify accuracy through this backend's datapath and
    /// digitally for reference.
    ///
    /// # Errors
    ///
    /// The default implementation reports that the backend does not
    /// support accuracy evaluation.
    fn evaluate(
        &mut self,
        model: &mut Sequential,
        dataset: &Dataset,
        limit: usize,
    ) -> Result<PhotonicAccuracy> {
        let _ = (model, dataset, limit);
        Err(CoreError::ModelMismatch {
            reason: "this backend does not implement accuracy evaluation".to_string(),
        })
    }

    /// Clones the lowered plan behind the trait object (keeps `Session`
    /// cloneable).
    fn clone_box(&self) -> Box<dyn LoweredPlan>;
}

impl Clone for Box<dyn LoweredPlan> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One execution target a platform can lower workloads onto.
///
/// A backend is stateless: [`Backend::lower`] produces a fresh
/// [`LoweredPlan`] per session, and [`Backend::performance`] produces the
/// per-frame latency/power/energy model a
/// [`Report`](crate::platform::Report) carries.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Stable identifier used for registry lookup and serve routing.
    fn id(&self) -> BackendId;

    /// Human-readable backend name (`"Lightator photonic core"`, ...).
    fn name(&self) -> String;

    /// Label of the numeric precision the backend executes at for the
    /// given platform (`"[4:4]"` for the photonic default, `"[32:32]"`
    /// for the fp32 electronic reference).
    fn precision(&self, config: &PlatformConfig) -> String;

    /// Whether the backend can actually execute lowered plans. Analytical
    /// roofline backends answer `false` and only serve
    /// [`Backend::performance`].
    fn executes(&self) -> bool {
        true
    }

    /// Whether the backend supports the given workload.
    fn supports(&self, workload: &Workload) -> bool {
        let _ = workload;
        true
    }

    /// Lowers a workload into an executable plan.
    ///
    /// # Errors
    ///
    /// Propagates plan compilation errors; analytical backends reject
    /// lowering outright.
    fn lower(
        &self,
        workload: &Workload,
        config: &PlatformConfig,
        seed: u64,
    ) -> Result<Box<dyn LoweredPlan>>;

    /// Per-frame performance model of a network on this backend.
    ///
    /// # Errors
    ///
    /// Propagates mapping/simulation errors.
    fn performance(
        &self,
        network: &NetworkSpec,
        config: &PlatformConfig,
    ) -> Result<SimulationReport>;
}

/// The paper's optical near-sensor core as a [`Backend`].
///
/// The zero-argument [`PhotonicBackend::new`] is the **default** backend:
/// it lowers with the platform's own precision schedule, so sessions
/// opened through it are bit-identical to the pre-trait execution path.
/// [`PhotonicBackend::with_schedule`] builds named variants that override
/// the schedule (the bench registry uses this for the Table-1 Lightator
/// precision sweep).
#[derive(Debug, Clone)]
pub struct PhotonicBackend {
    id: BackendId,
    name: String,
    schedule: Option<PrecisionSchedule>,
}

impl PhotonicBackend {
    /// The default photonic backend: platform schedule, id `"photonic"`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            id: BackendId::photonic(),
            name: "Lightator photonic core".to_string(),
            schedule: None,
        }
    }

    /// A named photonic variant pinned to an explicit precision schedule.
    #[must_use]
    pub fn with_schedule(
        id: impl Into<String>,
        name: impl Into<String>,
        schedule: PrecisionSchedule,
    ) -> Self {
        Self {
            id: BackendId::new(id),
            name: name.into(),
            schedule: Some(schedule),
        }
    }

    /// The pinned precision schedule of a [`PhotonicBackend::with_schedule`]
    /// variant, `None` for the default backend (which follows the
    /// platform's schedule).
    #[must_use]
    pub fn schedule(&self) -> Option<PrecisionSchedule> {
        self.schedule
    }

    /// The platform configuration this backend actually executes under:
    /// the input configuration with the schedule override applied.
    fn effective<'c>(&self, config: &'c PlatformConfig) -> std::borrow::Cow<'c, PlatformConfig> {
        match self.schedule {
            None => std::borrow::Cow::Borrowed(config),
            Some(schedule) if schedule == config.schedule => std::borrow::Cow::Borrowed(config),
            Some(schedule) => {
                let mut overridden = config.clone();
                overridden.schedule = schedule;
                std::borrow::Cow::Owned(overridden)
            }
        }
    }
}

impl Default for PhotonicBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for PhotonicBackend {
    fn id(&self) -> BackendId {
        self.id.clone()
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn precision(&self, config: &PlatformConfig) -> String {
        self.schedule.unwrap_or(config.schedule).label()
    }

    fn lower(
        &self,
        workload: &Workload,
        config: &PlatformConfig,
        seed: u64,
    ) -> Result<Box<dyn LoweredPlan>> {
        let config = self.effective(config);
        let mut executor = PhotonicExecutor::new(config.schedule, config.hardware.noise, seed)?;
        executor.set_workers(config.workers);
        let plan = CompiledPlan::compile(workload, &config, seed)?;
        Ok(Box::new(PhotonicLowered {
            executor,
            plan,
            plan_reuse: true,
        }))
    }

    fn performance(
        &self,
        network: &NetworkSpec,
        config: &PlatformConfig,
    ) -> Result<SimulationReport> {
        let config = self.effective(config);
        ArchitectureSimulator::new(config.hardware.clone())?.simulate(network, config.schedule)
    }
}

/// A workload lowered onto the photonic core: the frame-indexed
/// [`PhotonicExecutor`] plus the session's [`CompiledPlan`].
#[derive(Debug, Clone)]
pub struct PhotonicLowered {
    executor: PhotonicExecutor,
    plan: CompiledPlan,
    plan_reuse: bool,
}

impl LoweredPlan for PhotonicLowered {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.plan_reuse {
            self.executor.forward_planned(&mut self.plan, input)
        } else {
            let model = self
                .plan
                .model_mut()
                .ok_or_else(|| CoreError::ModelMismatch {
                    reason: "plan lost its lowered model (weighted workloads always carry one)"
                        .to_string(),
                })?;
            self.executor.forward(model, input)
        }
    }

    fn forward_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        if self.plan_reuse {
            self.executor.forward_batch_planned(&mut self.plan, inputs)
        } else {
            let model = self
                .plan
                .model_mut()
                .ok_or_else(|| CoreError::ModelMismatch {
                    reason: "plan lost its lowered model (weighted workloads always carry one)"
                        .to_string(),
                })?;
            self.executor.forward_batch(model, inputs)
        }
    }

    fn forward_frame_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        if self.plan_reuse {
            self.executor
                .forward_frame_batch_planned(&mut self.plan, inputs)
        } else {
            let model = self
                .plan
                .model_mut()
                .ok_or_else(|| CoreError::ModelMismatch {
                    reason: "plan lost its tile model (stream plans always carry one)".to_string(),
                })?;
            self.executor.forward_frame_batch(model, inputs)
        }
    }

    fn next_frame_index(&self) -> u64 {
        self.executor.next_frame_index()
    }

    fn set_next_frame_index(&mut self, index: u64) {
        self.executor.set_next_frame_index(index);
    }

    fn plan(&self) -> &CompiledPlan {
        &self.plan
    }

    fn plan_mut(&mut self) -> &mut CompiledPlan {
        &mut self.plan
    }

    fn plan_reuse(&self) -> bool {
        self.plan_reuse
    }

    fn set_plan_reuse(&mut self, enabled: bool) {
        self.plan_reuse = enabled;
    }

    fn workers(&self) -> usize {
        self.executor.workers()
    }

    fn set_workers(&mut self, workers: usize) {
        self.executor.set_workers(workers);
    }

    fn evaluate(
        &mut self,
        model: &mut Sequential,
        dataset: &Dataset,
        limit: usize,
    ) -> Result<PhotonicAccuracy> {
        self.executor.evaluate(model, dataset, limit)
    }

    fn clone_box(&self) -> Box<dyn LoweredPlan> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use lightator_nn::quant::Precision;

    #[test]
    fn backend_ids_compare_and_display() {
        assert!(BackendId::photonic().is_photonic());
        assert!(!BackendId::new("electronic:eyeriss").is_photonic());
        assert_eq!(BackendId::photonic().to_string(), "photonic");
        assert_eq!(BackendId::from("x"), BackendId::new("x"));
    }

    #[test]
    fn default_photonic_backend_reports_the_platform_schedule() {
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform");
        let backend = PhotonicBackend::new();
        assert_eq!(backend.id(), BackendId::photonic());
        assert!(backend.executes());
        assert_eq!(backend.precision(platform.config()), "[4:4]");
    }

    #[test]
    fn schedule_variants_override_the_platform_precision() {
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform");
        let variant = PhotonicBackend::with_schedule(
            "photonic:w2a4",
            "Lightator [2:4]",
            PrecisionSchedule::Uniform(Precision::w2a4()),
        );
        assert_eq!(variant.precision(platform.config()), "[2:4]");
        let spec = NetworkSpec::lenet();
        let low = variant
            .performance(&spec, platform.config())
            .expect("simulated");
        let full = PhotonicBackend::new()
            .performance(&spec, platform.config())
            .expect("simulated");
        assert!(low.max_power.watts() < full.max_power.watts());
    }

    #[test]
    fn default_backend_performance_matches_the_platform_simulator() {
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform");
        let spec = NetworkSpec::lenet();
        let via_backend = PhotonicBackend::new()
            .performance(&spec, platform.config())
            .expect("ok");
        let via_platform = platform.simulate(&spec).expect("ok");
        assert_eq!(via_backend, via_platform);
    }
}
