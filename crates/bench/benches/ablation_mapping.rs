//! Ablation: hardware-mapping efficiency across kernel sizes (paper §4,
//! Fig. 6) — strides per bank, wasted MRs and mapping throughput.

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightator_core::config::OcGeometry;
use lightator_core::mapping::HardwareMapper;
use lightator_nn::spec::{ConvSpec, LayerSpec};

fn layer(kernel: usize) -> LayerSpec {
    LayerSpec::Conv(ConvSpec {
        in_channels: 16,
        out_channels: 32,
        kernel,
        stride: 1,
        padding: kernel / 2,
        in_height: 32,
        in_width: 32,
    })
}

fn bench_mapping(c: &mut Criterion) {
    let geometry = OcGeometry::paper();
    let mapper = HardwareMapper::new(geometry).expect("paper geometry is valid");

    println!("Ablation — kernel-size mapping efficiency (paper Fig. 6)");
    println!(
        "{:<8} {:>15} {:>16} {:>18} {:>14}",
        "kernel", "arms/stride", "strides/bank", "unused MRs/stride", "MR utilisation"
    );
    for kernel in [1, 3, 5, 7] {
        let m = mapper.map_layer(&layer(kernel)).expect("mappable");
        println!(
            "{:<8} {:>15} {:>16} {:>18} {:>13.1}%",
            format!("{k}x{k}", k = kernel),
            m.arms_per_stride,
            m.strides_per_bank,
            m.unused_mrs_per_stride,
            m.mr_utilization(&geometry) * 100.0
        );
    }

    let mut group = c.benchmark_group("ablation_mapping");
    group.sample_size(20);
    for kernel in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::new("map_layer", kernel), &kernel, |b, &k| {
            b.iter(|| mapper.map_layer(&layer(k)).expect("mappable"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
