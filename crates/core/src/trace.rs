//! Per-stage trace attribution derived from the performance model.
//!
//! The simulator already knows where a frame's time and energy go — the
//! [`SimulationReport`] carries per-layer
//! latencies, phase decompositions and energies. This module turns that
//! knowledge into the stage vocabulary the paper argues with (acquisition /
//! CA / weight-encode / MAC rows / readout) as [`StageSpan`]s that
//! instrumentation points replay into a
//! [`TraceSink`](lightator_telemetry::TraceSink).
//!
//! Everything here is a pure function of an already-computed report:
//! deriving stages reads no RNG, no executor state and no clock, which is
//! how tracing stays observationally pure (recording a trace changes no
//! output bit of any run).

use crate::sim::SimulationReport;
use lightator_photonics::units::{Energy, Time};
use lightator_telemetry::StageBreakdown;

/// One attributed stage of a frame: a name, its share of the frame's
/// simulated latency and its share of the frame's energy.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpan {
    /// Stage name (`acquire`, `ca`, `weight_encode`, `mac_rows`,
    /// `readout`, or `execute` for opaque backends).
    pub stage: &'static str,
    /// Simulated time the stage occupies.
    pub latency: Time,
    /// Energy attributed to the stage.
    pub energy: Energy,
}

/// Decomposes one frame of `perf` into sequential stages.
///
/// * Acquisition networks (name `acquire`/`acquire+ca`) become a single
///   `acquire` or `ca` stage carrying the frame totals — the CA pass is one
///   fused optical operation.
/// * Layered networks contribute per-layer `weight_encode` / `mac_rows` /
///   `readout` stages from the layer's [`phases`](crate::sim::LayerReport::phases),
///   with energy split by phase time at the layer's power and the readout
///   stage taking the exact remainder, so the stages sum bit-exactly to the
///   layer (and therefore frame) totals.
/// * Backends that expose no layer reports (the analytical baselines)
///   collapse to a single `execute` stage.
#[must_use]
pub fn frame_stages(perf: &SimulationReport) -> Vec<StageSpan> {
    if perf.network.starts_with("acquire") {
        let stage = if perf.network.contains("+ca") {
            "ca"
        } else {
            "acquire"
        };
        return vec![StageSpan {
            stage,
            latency: perf.frame_latency,
            energy: perf.frame_energy,
        }];
    }
    if perf.layers.is_empty() {
        return vec![StageSpan {
            stage: "execute",
            latency: perf.frame_latency,
            energy: perf.frame_energy,
        }];
    }
    let mut spans = Vec::with_capacity(perf.layers.len() * 3);
    for layer in &perf.layers {
        let power_w = layer.power.total().watts();
        let we = layer.phases.weight_encode;
        let mac = layer.phases.mac;
        let we_energy = Energy::from_pj(power_w * we.seconds() * 1e12);
        let mac_energy = Energy::from_pj(power_w * mac.seconds() * 1e12);
        // Readout absorbs the remainder, so the three stages reproduce the
        // layer energy exactly (and the frame energy, which is the sum of
        // layer energies, exactly too).
        let readout_energy = layer.energy - we_energy - mac_energy;
        push_stage(&mut spans, "weight_encode", we, we_energy);
        push_stage(&mut spans, "mac_rows", mac, mac_energy);
        push_stage(&mut spans, "readout", layer.phases.readout, readout_energy);
    }
    spans
}

/// Appends a stage unless it is entirely empty (zero time and zero energy),
/// which is how unmapped layers avoid degenerate `weight_encode`/`mac_rows`
/// entries.
fn push_stage(spans: &mut Vec<StageSpan>, stage: &'static str, latency: Time, energy: Energy) {
    if latency.is_zero() && energy.is_zero() {
        return;
    }
    spans.push(StageSpan {
        stage,
        latency,
        energy,
    });
}

/// Rolls one frame of `perf` up into a [`StageBreakdown`] on `track`
/// (category `"stage"`).
#[must_use]
pub fn stage_breakdown(track: &str, perf: &SimulationReport) -> StageBreakdown {
    let mut breakdown = StageBreakdown::new();
    for span in frame_stages(perf) {
        breakdown.add(
            track,
            "stage",
            span.stage,
            span.latency.ns(),
            span.energy.pj(),
        );
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LightatorConfig;
    use crate::sim::ArchitectureSimulator;
    use lightator_nn::quant::{Precision, PrecisionSchedule};
    use lightator_nn::spec::{NetworkSpec, NetworkSpecBuilder};

    fn lenet_report() -> SimulationReport {
        ArchitectureSimulator::new(LightatorConfig::paper())
            .expect("valid")
            .simulate(
                &NetworkSpec::lenet(),
                PrecisionSchedule::Uniform(Precision::w4a4()),
            )
            .expect("ok")
    }

    #[test]
    fn stage_sums_reproduce_the_frame_totals_exactly() {
        let perf = lenet_report();
        let stages = frame_stages(&perf);
        assert!(stages.len() >= perf.layers.len());
        let time: f64 = stages.iter().map(|s| s.latency.ns()).sum();
        let energy: f64 = stages.iter().map(|s| s.energy.pj()).sum();
        assert!(
            (time - perf.frame_latency.ns()).abs() <= 1e-9 * perf.frame_latency.ns(),
            "stage time {time} vs frame {}",
            perf.frame_latency.ns()
        );
        assert!(
            (energy - perf.frame_energy.pj()).abs() <= 1e-9 * perf.frame_energy.pj(),
            "stage energy {energy} vs frame {}",
            perf.frame_energy.pj()
        );
    }

    #[test]
    fn acquisition_networks_collapse_to_one_stage() {
        let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("valid");
        let spec = NetworkSpecBuilder::new("acquire+ca", [3, 16, 16])
            .conv(1, 2, 2, 0)
            .expect("conv")
            .build();
        let perf = sim
            .simulate(&spec, PrecisionSchedule::Uniform(Precision::w4a4()))
            .expect("ok");
        let stages = frame_stages(&perf);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].stage, "ca");
        assert_eq!(stages[0].latency.ns(), perf.frame_latency.ns());
        assert_eq!(stages[0].energy.pj(), perf.frame_energy.pj());
    }

    #[test]
    fn layerless_reports_collapse_to_execute() {
        let mut perf = lenet_report();
        perf.network = "roofline".to_string();
        perf.layers.clear();
        let stages = frame_stages(&perf);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].stage, "execute");
    }

    #[test]
    fn breakdown_rolls_stages_up_per_name() {
        let perf = lenet_report();
        let breakdown = stage_breakdown("session:classify", &perf);
        assert!(breakdown.rows().iter().any(|r| r.stage == "mac_rows"));
        assert!(breakdown.rows().iter().any(|r| r.stage == "readout"));
        assert!(
            (breakdown.total_energy_pj() - perf.frame_energy.pj()).abs()
                <= 1e-9 * perf.frame_energy.pj()
        );
        assert!(breakdown
            .rows()
            .iter()
            .all(|r| r.track == "session:classify"));
    }
}
