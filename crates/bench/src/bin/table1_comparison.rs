//! Regenerates Table 1: comparison with optical accelerator baselines,
//! resolved through the backend registry.
//!
//! The performance columns (node, max power, KFPS/W) are always printed,
//! and the per-backend throughput/efficiency numbers are written to
//! `BENCH_table1_backends.json`. Pass `--accuracy` to additionally train
//! the workloads on the synthetic datasets and evaluate every design's
//! inference accuracy (slower; pass `--fast` to use the reduced settings).

use lightator_bench::emit;
use lightator_bench::table1::{self, AccuracyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let with_accuracy = args.iter().any(|a| a == "--accuracy");
    let fast = args.iter().any(|a| a == "--fast");

    match table1::performance_rows() {
        Ok(rows) => print!("{}", table1::render_performance(&rows)),
        Err(err) => {
            eprintln!("table1 harness failed: {err}");
            std::process::exit(1);
        }
    }

    match table1::backend_metrics()
        .map_err(|err| err.to_string())
        .and_then(|metrics| emit::emit("table1_backends", &metrics).map_err(|err| err.to_string()))
    {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(err) => {
            eprintln!("table1 backend metrics failed: {err}");
            std::process::exit(1);
        }
    }

    if with_accuracy {
        let config = if fast {
            AccuracyConfig::fast()
        } else {
            AccuracyConfig::full()
        };
        match table1::accuracy_rows(&config) {
            Ok(workloads) => print!("\n{}", table1::render_accuracy(&workloads)),
            Err(err) => {
                eprintln!("table1 accuracy pass failed: {err}");
                std::process::exit(1);
            }
        }
    } else {
        println!("\n(run with --accuracy [--fast] to also regenerate the accuracy columns)");
    }
}
