//! Cross-crate integration tests: scene → sensor → CA → photonic inference
//! through the `Platform`/`Session` facade, and simulator consistency across
//! the full stack.

use lightator_suite::core::ca::{CaConfig, CompressiveAcquisitor};
use lightator_suite::core::platform::{Platform, Workload};
use lightator_suite::nn::datasets::{generate, SyntheticConfig};
use lightator_suite::nn::layers::{Activation, Flatten, Linear};
use lightator_suite::nn::model::Sequential;
use lightator_suite::nn::models::build_mlp;
use lightator_suite::nn::quant::{quantize_model_weights, Precision, PrecisionSchedule};
use lightator_suite::nn::spec::NetworkSpec;
use lightator_suite::nn::train::{evaluate, train, TrainConfig};
use lightator_suite::sensor::frame::RgbFrame;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A 16×16 scene classified end to end through sensor, CA and the optical
/// core: the full Fig. 2 data flow, driven by one `Session::run` that also
/// reports the platform-level performance.
#[test]
fn full_pipeline_classifies_a_scene() {
    let mut rng = SmallRng::seed_from_u64(99);
    // Model matched to the CA output of a 16x16 sensor with 2x2 pooling.
    let mut model = Sequential::new(&[1, 8, 8]);
    model.push(Flatten::new());
    model.push(Linear::new(64, 24, &mut rng).expect("layer"));
    model.push(Activation::relu());
    model.push(Linear::new(24, 4, &mut rng).expect("layer"));

    let platform = Platform::builder()
        .sensor_resolution(16, 16)
        .compressive_acquisition(CaConfig::default())
        .precision(PrecisionSchedule::Uniform(Precision::w4a4()))
        .seed(1)
        .build()
        .expect("platform");
    let mut session = platform
        .session(Workload::Classify { model })
        .expect("session");

    let scene = RgbFrame::filled(16, 16, [0.7, 0.4, 0.2]).expect("scene");
    let report = session.run(&scene).expect("frame processed");
    assert!(report.class().expect("classification") < 4);
    assert_eq!(report.logits().expect("logits").len(), 4);
    // Accuracy and perf arrive in the same report.
    assert!(report.latency().ns() > 0.0);
    assert!(report.max_power().watts() > 0.0);
    assert!(report.kfps_per_watt() > 0.0);
}

/// The compressive acquisitor's single optical pass must agree with the
/// conventional grayscale+pool pipeline on sensor-captured data, end to end.
#[test]
fn ca_matches_reference_on_captured_frames() {
    let ca = CompressiveAcquisitor::new(CaConfig::default()).expect("ca");
    let scene = RgbFrame::filled(32, 32, [0.3, 0.8, 0.5]).expect("scene");
    let fused = ca.acquire(&scene).expect("fused");
    let reference = ca.reference(&scene).expect("reference");
    assert_eq!(fused.height(), 16);
    for (a, b) in fused.data().iter().zip(reference.data()) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// Training, quantization and photonic evaluation work together across the
/// nn and core crates via `Session::evaluate`; photonic accuracy tracks the
/// digital accuracy.
#[test]
fn trained_model_survives_photonic_execution() {
    let mut rng = SmallRng::seed_from_u64(5);
    let dataset = generate("integration", SyntheticConfig::tiny(3), &mut rng).expect("dataset");
    let mut model = build_mlp(&dataset.input_shape(), 3, 20, &mut rng).expect("model");
    train(
        &mut model,
        &dataset,
        TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
    )
    .expect("training");
    let digital = evaluate(&mut model, &dataset).expect("digital eval");
    assert!(
        digital > 0.5,
        "digital accuracy {digital} should beat chance"
    );

    let schedule = PrecisionSchedule::Uniform(Precision::w4a4());
    quantize_model_weights(&mut model, schedule);
    let mut session = Platform::builder()
        .precision(schedule)
        .seed(11)
        .build()
        .expect("platform")
        .session(Workload::Classify { model })
        .expect("session");
    let result = session.evaluate(&dataset, 10).expect("photonic eval");
    assert!(
        result.photonic + 0.35 >= result.digital,
        "photonic accuracy {} collapsed versus digital {}",
        result.photonic,
        result.digital
    );
}

/// The architecture simulator, the topology specs and the precision schedules
/// compose behind the platform facade: every paper workload simulates under
/// every precision, and the figures of merit move in the documented
/// directions.
#[test]
fn simulator_covers_all_paper_workloads() {
    let platform = Platform::paper().expect("platform");
    let networks = [
        NetworkSpec::lenet(),
        NetworkSpec::vgg9(10),
        NetworkSpec::vgg9(100),
        NetworkSpec::alexnet(),
        NetworkSpec::vgg16(),
    ];
    for network in &networks {
        let mut last_power = f64::INFINITY;
        for precision in [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()] {
            let report = platform
                .simulate_with(network, PrecisionSchedule::Uniform(precision))
                .expect("simulation");
            assert_eq!(report.layers.len(), network.layer_count());
            assert!(report.frame_latency.ns() > 0.0);
            assert!(report.max_power.watts() > 0.0);
            assert!(report.max_power.watts() < last_power + 1e-9);
            last_power = report.max_power.watts();
        }
    }
}

/// Mixed-precision platform power sits between the two uniform extremes for
/// the Table 1 workload.
#[test]
fn mixed_precision_power_is_intermediate() {
    let platform = Platform::paper().expect("platform");
    let sim = platform.simulator();
    let vgg9 = NetworkSpec::vgg9(100);
    let p44 = sim
        .platform_max_power(&vgg9, PrecisionSchedule::Uniform(Precision::w4a4()))
        .expect("ok")
        .watts();
    let p34 = sim
        .platform_max_power(&vgg9, PrecisionSchedule::Uniform(Precision::w3a4()))
        .expect("ok")
        .watts();
    let mx = sim
        .platform_max_power(
            &vgg9,
            PrecisionSchedule::Mixed {
                first: Precision::w4a4(),
                rest: Precision::w3a4(),
            },
        )
        .expect("ok")
        .watts();
    assert!(mx > p34 && mx < p44, "MX power {mx} outside ({p34}, {p44})");
}
