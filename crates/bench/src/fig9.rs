//! Figure 9: layer-wise power breakdown of VGG9 on the \[3:4\] configuration,
//! the DAC-dominance pie chart for layer L8, and the first-layer saving from
//! compressive acquisition.

use crate::harness::platform;
use lightator_core::CoreError;
use lightator_nn::quant::{Precision, PrecisionSchedule};
use lightator_nn::spec::NetworkSpec;
use serde::{Deserialize, Serialize};

/// One bar of Fig. 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Layer label (`L1`..`L12`).
    pub layer: String,
    /// Layer kind (`conv`, `pool`, `fc`).
    pub kind: String,
    /// Per-component power in watts (ADCs, DACs, DMVA, TUN, BPD, Misc.).
    pub components_w: [f64; 6],
    /// Total layer power in watts.
    pub total_w: f64,
    /// DAC share of the layer's power.
    pub dac_share: f64,
}

/// The complete Fig. 9 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Data {
    /// Per-layer rows (12 for VGG9).
    pub rows: Vec<Fig9Row>,
    /// Component shares of layer L8 (the pie chart), summing to 1.
    pub l8_shares: [f64; 6],
    /// Relative first-layer energy reduction provided by the CA compression
    /// pass (the paper reports 42.2 %).
    pub ca_first_layer_saving: f64,
}

/// Generates the Fig. 9 dataset.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn generate() -> Result<Fig9Data, CoreError> {
    let platform = platform()?;
    let network = NetworkSpec::vgg9(10);
    let schedule = PrecisionSchedule::Uniform(Precision::w3a4());
    let report = platform.simulate_with(&network, schedule)?;
    let rows: Vec<Fig9Row> = report
        .layers
        .iter()
        .map(|layer| {
            let values = layer.power.values();
            let mut components_w = [0.0; 6];
            for (slot, value) in components_w.iter_mut().zip(values.iter()) {
                *slot = value.watts();
            }
            Fig9Row {
                layer: format!("L{}", layer.index + 1),
                kind: layer.kind.clone(),
                components_w,
                total_w: layer.power.total().watts(),
                dac_share: layer.power.dac_share(),
            }
        })
        .collect();

    let l8 = &rows[7.min(rows.len() - 1)];
    let mut l8_shares = [0.0; 6];
    for (share, value) in l8_shares.iter_mut().zip(l8.components_w.iter()) {
        *share = if l8.total_w > 0.0 {
            value / l8.total_w
        } else {
            0.0
        };
    }

    let (_, ca_first_layer_saving) = platform
        .simulator()
        .simulate_with_ca(&network, schedule, 2)?;

    Ok(Fig9Data {
        rows,
        l8_shares,
        ca_first_layer_saving,
    })
}

/// Renders the dataset as the text table printed by the harness binary.
#[must_use]
pub fn render(data: &Fig9Data) -> String {
    let mut out = String::new();
    out.push_str("Fig. 9 — VGG9 layer-wise power breakdown on Lightator [3:4] (W)\n");
    out.push_str(&format!(
        "{:<5} {:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}\n",
        "layer", "kind", "ADCs", "DACs", "DMVA", "TUN", "BPD", "Misc.", "total", "DAC %"
    ));
    for row in &data.rows {
        out.push_str(&format!(
            "{:<5} {:<6} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>7.1}%\n",
            row.layer,
            row.kind,
            row.components_w[0],
            row.components_w[1],
            row.components_w[2],
            row.components_w[3],
            row.components_w[4],
            row.components_w[5],
            row.total_w,
            row.dac_share * 100.0,
        ));
    }
    out.push_str(&format!(
        "\nL8 component shares (pie chart): ADCs {:.1}%, DACs {:.1}%, DMVA {:.1}%, TUN {:.1}%, BPD {:.1}%, Misc. {:.1}%\n",
        data.l8_shares[0] * 100.0,
        data.l8_shares[1] * 100.0,
        data.l8_shares[2] * 100.0,
        data.l8_shares[3] * 100.0,
        data.l8_shares[4] * 100.0,
        data.l8_shares[5] * 100.0,
    ));
    out.push_str(&format!(
        "CA compression reduces the first layer's energy by {:.1}% (paper: 42.2%)\n",
        data.ca_first_layer_saving * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg9_has_twelve_layers() {
        let data = generate().expect("ok");
        assert_eq!(data.rows.len(), 12);
        assert_eq!(data.rows[0].layer, "L1");
        assert_eq!(data.rows[11].layer, "L12");
    }

    #[test]
    fn dacs_dominate_the_conv_layers() {
        let data = generate().expect("ok");
        for row in data.rows.iter().filter(|r| r.kind == "conv") {
            assert!(
                row.dac_share > 0.5,
                "{} has DAC share {}",
                row.layer,
                row.dac_share
            );
        }
    }

    #[test]
    fn l8_shares_sum_to_one() {
        let data = generate().expect("ok");
        let sum: f64 = data.l8_shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // DACs are the dominant slice of the pie.
        assert!(data.l8_shares[1] > 0.5);
    }

    #[test]
    fn ca_saving_is_meaningful() {
        let data = generate().expect("ok");
        assert!(data.ca_first_layer_saving > 0.15 && data.ca_first_layer_saving < 0.95);
    }

    #[test]
    fn render_mentions_the_ca_saving() {
        let data = generate().expect("ok");
        assert!(render(&data).contains("42.2%"));
    }
}
