//! Uniform quantization of weights and activations.
//!
//! Lightator maps quantized weights onto MR transmissions and quantized
//! activations onto VCSEL drive codes, so the DNN stack must express the
//! paper's `[Weight : Activation]` precision configurations (\[4:4\], \[3:4\],
//! \[2:4\]) and the mixed-precision variants (first layer at \[4:4\], remaining
//! layers lower).

use crate::error::{NnError, Result};
use crate::model::Sequential;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `[weight_bits : activation_bits]` precision configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Precision {
    /// Bit-width of the weights mapped onto MRs.
    pub weight_bits: u8,
    /// Bit-width of the activations driven onto VCSELs.
    pub activation_bits: u8,
}

impl Precision {
    /// Creates a precision configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if either bit-width is zero or
    /// larger than 8.
    pub fn new(weight_bits: u8, activation_bits: u8) -> Result<Self> {
        for (name, bits) in [
            ("weight_bits", weight_bits),
            ("activation_bits", activation_bits),
        ] {
            if bits == 0 || bits > 8 {
                return Err(NnError::InvalidParameter {
                    name,
                    value: f64::from(bits),
                });
            }
        }
        Ok(Self {
            weight_bits,
            activation_bits,
        })
    }

    /// The paper's \[4:4\] configuration.
    #[must_use]
    pub const fn w4a4() -> Self {
        Self {
            weight_bits: 4,
            activation_bits: 4,
        }
    }

    /// The paper's \[3:4\] configuration.
    #[must_use]
    pub const fn w3a4() -> Self {
        Self {
            weight_bits: 3,
            activation_bits: 4,
        }
    }

    /// The paper's \[2:4\] configuration.
    #[must_use]
    pub const fn w2a4() -> Self {
        Self {
            weight_bits: 2,
            activation_bits: 4,
        }
    }

    /// Number of representable signed weight levels.
    #[must_use]
    pub fn weight_levels(&self) -> u32 {
        1u32 << self.weight_bits
    }

    /// Number of representable unsigned activation levels.
    #[must_use]
    pub fn activation_levels(&self) -> u32 {
        1u32 << self.activation_bits
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.weight_bits, self.activation_bits)
    }
}

impl std::str::FromStr for Precision {
    type Err = NnError;

    /// Parses the paper's `[W:A]` notation (e.g. `[4:4]`), the inverse of
    /// [`Display`](fmt::Display).
    fn from_str(s: &str) -> Result<Self> {
        let reject = || NnError::InvalidLabel {
            what: "precision",
            input: s.to_string(),
        };
        let inner = s
            .trim()
            .strip_prefix('[')
            .and_then(|rest| rest.strip_suffix(']'))
            .ok_or_else(reject)?;
        let (w, a) = inner.split_once(':').ok_or_else(reject)?;
        let parse = |text: &str| text.trim().parse::<u8>().map_err(|_| reject());
        Precision::new(parse(w)?, parse(a)?)
    }
}

/// A per-layer precision schedule.
///
/// `Uniform` applies the same precision everywhere; `Mixed` keeps the first
/// (most sensitive) layer at one precision and the remaining layers at
/// another — the paper's "Lightator-MX" variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecisionSchedule {
    /// Same precision for every weighted layer.
    Uniform(Precision),
    /// First weighted layer at `first`, all later weighted layers at `rest`.
    Mixed {
        /// Precision of the first weighted layer.
        first: Precision,
        /// Precision of every subsequent weighted layer.
        rest: Precision,
    },
}

impl PrecisionSchedule {
    /// Precision applied to the `index`-th *weighted* layer.
    #[must_use]
    pub fn for_layer(&self, index: usize) -> Precision {
        match self {
            PrecisionSchedule::Uniform(p) => *p,
            PrecisionSchedule::Mixed { first, rest } => {
                if index == 0 {
                    *first
                } else {
                    *rest
                }
            }
        }
    }

    /// The paper's naming for the configuration (e.g. `[4:4]` or
    /// `[4:4][3:4]`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PrecisionSchedule::Uniform(p) => p.to_string(),
            PrecisionSchedule::Mixed { first, rest } => format!("{first}{rest}"),
        }
    }

    /// Parses a schedule label produced by [`PrecisionSchedule::label`]:
    /// `[W:A]` for uniform schedules, `[W:A][W:A]` for mixed ones.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLabel`] carrying the rejected input for
    /// malformed labels.
    pub fn parse_label(label: &str) -> Result<Self> {
        let reject = || NnError::InvalidLabel {
            what: "schedule",
            input: label.to_string(),
        };
        let trimmed = label.trim();
        let brackets = trimmed.matches('[').count();
        match brackets {
            1 => Ok(PrecisionSchedule::Uniform(trimmed.parse()?)),
            2 => {
                let split = trimmed.find("][").ok_or_else(reject)?;
                let (first, rest) = trimmed.split_at(split + 1);
                Ok(PrecisionSchedule::Mixed {
                    first: first.parse()?,
                    rest: rest.parse()?,
                })
            }
            _ => Err(reject()),
        }
    }

    /// Average weight bit-width over `layer_count` weighted layers (used by
    /// power models).
    #[must_use]
    pub fn mean_weight_bits(&self, layer_count: usize) -> f64 {
        if layer_count == 0 {
            return 0.0;
        }
        (0..layer_count)
            .map(|i| f64::from(self.for_layer(i).weight_bits))
            .sum::<f64>()
            / layer_count as f64
    }
}

/// Symmetric uniform quantization of a signed value to `bits` bits.
///
/// The value is mapped onto the integer grid `{-(2^(b-1)-1), ..., 2^(b-1)-1}`
/// scaled by `scale`, then de-quantized back to a float. A `scale` of zero
/// returns zero (an all-zero tensor stays all-zero).
#[must_use]
pub fn quantize_symmetric(value: f32, scale: f32, bits: u8) -> f32 {
    if scale == 0.0 {
        return 0.0;
    }
    let q_max = ((1u32 << (bits - 1)) - 1) as f32;
    let q = (value / scale * q_max).round().clamp(-q_max, q_max);
    q / q_max * scale
}

/// Unsigned uniform quantization of a non-negative value in `[0, scale]` to
/// `bits` bits.
#[must_use]
pub fn quantize_unsigned(value: f32, scale: f32, bits: u8) -> f32 {
    if scale == 0.0 {
        return 0.0;
    }
    let q_max = ((1u32 << bits) - 1) as f32;
    let q = (value / scale * q_max).round().clamp(0.0, q_max);
    q / q_max * scale
}

/// Quantizes a tensor symmetrically with a per-tensor scale equal to its
/// maximum absolute value; returns the de-quantized tensor and the scale.
#[must_use]
pub fn quantize_tensor_symmetric(tensor: &Tensor, bits: u8) -> (Tensor, f32) {
    let scale = tensor.max_abs();
    let quantized = tensor.map(|x| quantize_symmetric(x, scale, bits));
    (quantized, scale)
}

/// Quantizes a tensor of non-negative activations with a per-tensor scale.
#[must_use]
pub fn quantize_tensor_unsigned(tensor: &Tensor, bits: u8) -> (Tensor, f32) {
    let scale = tensor.data().iter().fold(0.0f32, |m, &x| m.max(x.max(0.0)));
    let quantized = tensor.map(|x| quantize_unsigned(x.max(0.0), scale, bits));
    (quantized, scale)
}

/// Quantizes the weights of every weighted layer of a model in place
/// according to the schedule (post-training quantization). Returns the number
/// of weighted layers touched.
pub fn quantize_model_weights(model: &mut Sequential, schedule: PrecisionSchedule) -> usize {
    let mut weighted_index = 0;
    for layer in model.layers_mut() {
        if let Some(weight) = layer.weight_mut() {
            let precision = schedule.for_layer(weighted_index);
            let (quantized, _) = quantize_tensor_symmetric(weight, precision.weight_bits);
            *weight = quantized;
            weighted_index += 1;
        }
    }
    weighted_index
}

/// Root-mean-square quantization error of a tensor at a given bit-width —
/// useful for sensitivity reports.
#[must_use]
pub fn quantization_rmse(tensor: &Tensor, bits: u8) -> f64 {
    if tensor.is_empty() {
        return 0.0;
    }
    let (quantized, _) = quantize_tensor_symmetric(tensor, bits);
    let sum: f64 = tensor
        .data()
        .iter()
        .zip(quantized.data())
        .map(|(&a, &b)| f64::from(a - b).powi(2))
        .sum();
    (sum / tensor.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_construction_and_presets() {
        assert!(Precision::new(0, 4).is_err());
        assert!(Precision::new(4, 9).is_err());
        assert_eq!(Precision::w4a4().to_string(), "[4:4]");
        assert_eq!(Precision::w3a4().weight_levels(), 8);
        assert_eq!(Precision::w2a4().activation_levels(), 16);
    }

    #[test]
    fn schedule_selects_per_layer_precision() {
        let mx = PrecisionSchedule::Mixed {
            first: Precision::w4a4(),
            rest: Precision::w3a4(),
        };
        assert_eq!(mx.for_layer(0), Precision::w4a4());
        assert_eq!(mx.for_layer(1), Precision::w3a4());
        assert_eq!(mx.for_layer(5), Precision::w3a4());
        assert_eq!(mx.label(), "[4:4][3:4]");
        let uniform = PrecisionSchedule::Uniform(Precision::w2a4());
        assert_eq!(uniform.for_layer(3), Precision::w2a4());
        assert_eq!(uniform.label(), "[2:4]");
    }

    #[test]
    fn precision_labels_round_trip_through_from_str() {
        for p in [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()] {
            assert_eq!(p.to_string().parse::<Precision>().unwrap(), p);
        }
        assert!("[0:4]".parse::<Precision>().is_err());
        assert!("4:4".parse::<Precision>().is_err());
        let err = "[4-4]".parse::<Precision>().expect_err("bad separator");
        assert!(
            err.to_string().contains("[4-4]"),
            "parse error should carry the rejected input: {err}"
        );
    }

    #[test]
    fn schedule_labels_round_trip_through_parse_label() {
        let schedules = [
            PrecisionSchedule::Uniform(Precision::w2a4()),
            PrecisionSchedule::Mixed {
                first: Precision::w4a4(),
                rest: Precision::w3a4(),
            },
        ];
        for schedule in schedules {
            assert_eq!(
                PrecisionSchedule::parse_label(&schedule.label()).unwrap(),
                schedule
            );
        }
        assert!(PrecisionSchedule::parse_label("").is_err());
        assert!(PrecisionSchedule::parse_label("[4:4][3:4][2:4]").is_err());
    }

    #[test]
    fn mean_weight_bits_reflects_mixing() {
        let mx = PrecisionSchedule::Mixed {
            first: Precision::w4a4(),
            rest: Precision::w2a4(),
        };
        assert!((mx.mean_weight_bits(4) - 2.5).abs() < 1e-12);
        assert_eq!(mx.mean_weight_bits(0), 0.0);
    }

    #[test]
    fn symmetric_quantization_round_trips_extremes() {
        let scale = 2.0;
        assert_eq!(quantize_symmetric(2.0, scale, 4), 2.0);
        assert_eq!(quantize_symmetric(-2.0, scale, 4), -2.0);
        assert_eq!(quantize_symmetric(0.0, scale, 4), 0.0);
        // Out-of-range values clamp to the scale.
        assert_eq!(quantize_symmetric(5.0, scale, 4), 2.0);
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let t = Tensor::from_vec((0..64).map(|i| (i as f32 / 63.0) - 0.5).collect(), &[64])
            .expect("ok");
        let e2 = quantization_rmse(&t, 2);
        let e3 = quantization_rmse(&t, 3);
        let e4 = quantization_rmse(&t, 4);
        assert!(e2 > e3);
        assert!(e3 > e4);
    }

    #[test]
    fn unsigned_quantization_clamps_negatives() {
        assert_eq!(quantize_unsigned(-1.0, 1.0, 4), 0.0);
        assert_eq!(
            quantize_unsigned(0.5, 1.0, 4),
            (0.5f32 * 15.0).round() / 15.0
        );
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let t = Tensor::zeros(&[8]);
        let (q, scale) = quantize_tensor_symmetric(&t, 4);
        assert_eq!(scale, 0.0);
        assert!(q.data().iter().all(|&x| x == 0.0));
        assert_eq!(quantization_rmse(&t, 2), 0.0);
    }

    #[test]
    fn tensor_quantization_bounded_by_scale() {
        let t = Tensor::from_vec(vec![0.3, -0.8, 0.55, 0.02], &[4]).expect("ok");
        let (q, scale) = quantize_tensor_symmetric(&t, 3);
        assert!((scale - 0.8).abs() < 1e-6);
        for &v in q.data() {
            assert!(v.abs() <= scale + 1e-6);
        }
    }
}
