//! Criterion bench regenerating Fig. 9 (VGG9 layer-wise power breakdown).

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, Criterion};
use lightator_bench::fig9;

fn bench_fig9(c: &mut Criterion) {
    let data = fig9::generate().expect("fig9 harness must succeed");
    println!("{}", fig9::render(&data));

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("vgg9_power_breakdown", |b| {
        b.iter(|| fig9::generate().expect("fig9 harness must succeed"));
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
