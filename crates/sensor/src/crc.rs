//! Comparator-based pixel Reading Circuit (CRC).
//!
//! Lightator removes per-column ADCs: each pixel's output voltage is compared
//! against 15 reference voltages spanning the pixel swing, producing a
//! 15-bit thermometer code that directly selects how many VCSEL driving
//! transistors turn on (paper §3, Fig. 4(a) and 4(d)). The thermometer code
//! is equivalent to a 4-bit digital value (0–15).

use crate::error::{Result, SensorError};
use crate::pixel::PixelConfig;
use lightator_photonics::units::{Power, Voltage};
use serde::{Deserialize, Serialize};

/// Number of comparators in a CRC unit (paper Fig. 4(a)).
pub const CRC_COMPARATORS: usize = 15;

/// Configuration of a comparator read circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrcConfig {
    /// Reference voltages, one per comparator, strictly decreasing from just
    /// below the reset voltage towards the saturation voltage. Reference
    /// `k` being *above* the pixel voltage means the pixel has dropped past
    /// level `k`, turning comparator output `VS_{k+1}` on.
    pub reference_voltages_v: Vec<f64>,
    /// Static power of one comparator (including its share of the reference
    /// ladder), in µW.
    pub comparator_power_uw: f64,
    /// Input-referred comparator offset (one sigma), in mV. Zero for an
    /// ideal ladder.
    pub offset_sigma_mv: f64,
}

impl CrcConfig {
    /// Builds a ladder of 15 uniformly spaced references covering the output
    /// swing of the given pixel design — the configuration the paper
    /// describes ("15 reference voltages which are spanned in the range of
    /// pixel output voltage").
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] if the pixel configuration
    /// is invalid.
    pub fn uniform_for_pixel(pixel: &PixelConfig) -> Result<Self> {
        pixel.validate()?;
        let swing = pixel.reset_voltage_v - pixel.saturation_voltage_v;
        let step = swing / (CRC_COMPARATORS + 1) as f64;
        let references = (1..=CRC_COMPARATORS)
            .map(|k| pixel.reset_voltage_v - step * k as f64)
            .collect();
        Ok(Self {
            reference_voltages_v: references,
            comparator_power_uw: 7.5,
            offset_sigma_mv: 0.0,
        })
    }

    /// Validates the configuration: exactly 15 strictly decreasing, finite
    /// references and non-negative power/offset.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        if self.reference_voltages_v.len() != CRC_COMPARATORS {
            return Err(SensorError::InvalidParameter {
                name: "reference_voltages_v.len",
                value: self.reference_voltages_v.len() as f64,
            });
        }
        for window in self.reference_voltages_v.windows(2) {
            if !window[0].is_finite() || !window[1].is_finite() || window[1] >= window[0] {
                return Err(SensorError::InvalidParameter {
                    name: "reference_voltages_v",
                    value: window[1],
                });
            }
        }
        if !self.comparator_power_uw.is_finite() || self.comparator_power_uw < 0.0 {
            return Err(SensorError::InvalidParameter {
                name: "comparator_power_uw",
                value: self.comparator_power_uw,
            });
        }
        if !self.offset_sigma_mv.is_finite() || self.offset_sigma_mv < 0.0 {
            return Err(SensorError::InvalidParameter {
                name: "offset_sigma_mv",
                value: self.offset_sigma_mv,
            });
        }
        Ok(())
    }
}

/// The output of one CRC read: the raw thermometer code and its binary value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrcReading {
    /// Comparator outputs `VS_1..VS_15`; `true` means the comparator fired
    /// (the pixel voltage dropped below its reference).
    pub thermometer: [bool; CRC_COMPARATORS],
}

impl CrcReading {
    /// Number of comparators that fired — the 4-bit activation code (0–15).
    #[must_use]
    pub fn code(&self) -> u8 {
        self.thermometer.iter().filter(|&&b| b).count() as u8
    }

    /// Whether the thermometer code is well formed (a contiguous run of
    /// `true` followed by `false`), which an ideal ladder always produces.
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        let mut seen_false = false;
        for &fired in &self.thermometer {
            if fired && seen_false {
                return false;
            }
            if !fired {
                seen_false = true;
            }
        }
        true
    }
}

/// A comparator read circuit converting pixel voltages to 4-bit codes.
///
/// ```
/// use lightator_sensor::crc::{ComparatorReadCircuit, CrcConfig};
/// use lightator_sensor::pixel::{Pixel, PixelConfig};
///
/// # fn main() -> Result<(), lightator_sensor::SensorError> {
/// let pixel_cfg = PixelConfig::default();
/// let crc = ComparatorReadCircuit::new(CrcConfig::uniform_for_pixel(&pixel_cfg)?)?;
/// let pixel = Pixel::new(pixel_cfg)?;
/// let bright = crc.read(pixel.output_voltage(1.0)?);
/// let dark = crc.read(pixel.output_voltage(0.0)?);
/// assert!(bright.code() > dark.code());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparatorReadCircuit {
    config: CrcConfig,
}

impl ComparatorReadCircuit {
    /// Creates a CRC.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn new(config: CrcConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Creates a CRC with the default uniform ladder for the default pixel.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in defaults; kept fallible for uniformity.
    pub fn for_default_pixel() -> Result<Self> {
        Self::new(CrcConfig::uniform_for_pixel(&PixelConfig::default())?)
    }

    /// The CRC configuration.
    #[must_use]
    pub fn config(&self) -> &CrcConfig {
        &self.config
    }

    /// Compares the pixel voltage against the ladder. Comparator `k` fires
    /// when the pixel voltage has dropped below reference `k` (more light =
    /// lower voltage = more comparators firing = larger code), exactly the
    /// waveform behaviour of the paper's Fig. 4(d).
    #[must_use]
    pub fn read(&self, pixel_voltage: Voltage) -> CrcReading {
        let mut thermometer = [false; CRC_COMPARATORS];
        for (k, fired) in thermometer.iter_mut().enumerate() {
            *fired = pixel_voltage.volts() < self.config.reference_voltages_v[k];
        }
        CrcReading { thermometer }
    }

    /// Convenience: read and return only the 4-bit code.
    #[must_use]
    pub fn read_code(&self, pixel_voltage: Voltage) -> u8 {
        self.read(pixel_voltage).code()
    }

    /// Static power of the complete 15-comparator unit.
    #[must_use]
    pub fn power(&self) -> Power {
        Power::from_mw(self.config.comparator_power_uw * CRC_COMPARATORS as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Pixel;

    fn crc() -> ComparatorReadCircuit {
        ComparatorReadCircuit::for_default_pixel().expect("valid")
    }

    #[test]
    fn uniform_ladder_has_fifteen_decreasing_references() {
        let cfg = CrcConfig::uniform_for_pixel(&PixelConfig::default()).expect("valid");
        assert_eq!(cfg.reference_voltages_v.len(), CRC_COMPARATORS);
        for w in cfg.reference_voltages_v.windows(2) {
            assert!(w[1] < w[0]);
        }
        cfg.validate().expect("valid");
    }

    #[test]
    fn dark_pixel_codes_to_zero_and_bright_to_near_full_scale() {
        let crc = crc();
        let pixel = Pixel::new(PixelConfig::default()).expect("valid");
        let dark = crc.read_code(pixel.output_voltage(0.0).expect("ok"));
        let bright = crc.read_code(pixel.output_voltage(1.0).expect("ok"));
        assert_eq!(dark, 0);
        assert!(
            bright >= 13,
            "full-scale illumination should fire almost all comparators, got {bright}"
        );
    }

    #[test]
    fn code_is_monotone_in_illumination() {
        let crc = crc();
        let pixel = Pixel::new(PixelConfig::default()).expect("valid");
        let mut last = 0;
        for i in 0..=20 {
            let illum = f64::from(i) / 20.0;
            let code = crc.read_code(pixel.output_voltage(illum).expect("ok"));
            assert!(code >= last, "code must not decrease with illumination");
            last = code;
        }
    }

    #[test]
    fn thermometer_code_is_always_contiguous() {
        let crc = crc();
        let pixel = Pixel::new(PixelConfig::default()).expect("valid");
        for i in 0..=50 {
            let illum = f64::from(i) / 50.0;
            let reading = crc.read(pixel.output_voltage(illum).expect("ok"));
            assert!(reading.is_monotone());
            assert!(reading.code() <= 15);
        }
    }

    #[test]
    fn validate_rejects_bad_ladders() {
        let cfg = CrcConfig {
            reference_voltages_v: vec![0.5; CRC_COMPARATORS],
            comparator_power_uw: 7.5,
            offset_sigma_mv: 0.0,
        };
        assert!(cfg.validate().is_err());
        let cfg = CrcConfig {
            reference_voltages_v: vec![0.5; 10],
            comparator_power_uw: 7.5,
            offset_sigma_mv: 0.0,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn power_counts_all_comparators() {
        let crc = crc();
        let expected = crc.config().comparator_power_uw * 15.0 / 1e3;
        assert!((crc.power().mw() - expected).abs() < 1e-12);
    }

    #[test]
    fn non_monotone_reading_detected() {
        let mut thermometer = [false; CRC_COMPARATORS];
        thermometer[0] = true;
        thermometer[2] = true; // gap at index 1
        let reading = CrcReading { thermometer };
        assert!(!reading.is_monotone());
        assert_eq!(reading.code(), 2);
    }
}
