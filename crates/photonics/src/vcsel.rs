//! Vertical-cavity surface-emitting laser (VCSEL) model.
//!
//! In Lightator, activations are never mapped onto MRs. Instead each
//! activation is encoded in the optical intensity of a directly-modulated
//! VCSEL: the 4-bit digital activation selects how many of the 16 parallel
//! driving transistors are on, which sets the laser drive current and hence
//! the emitted power (paper §3, Fig. 4(c)).
//!
//! The model uses the standard piecewise-linear L–I characteristic: no output
//! below the threshold current, then a linear slope-efficiency region up to a
//! saturation power.

use crate::error::{PhotonicsError, Result};
use crate::units::{Current, Power, Time, Wavelength};
use serde::{Deserialize, Serialize};

/// Static parameters of a directly modulated VCSEL.
///
/// The defaults describe a 10 GHz-class 850 nm–C-band VCSEL with a 0.8 mA
/// threshold and 0.3 mW/mA slope efficiency, representative of the devices
/// assumed by edge photonic accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcselConfig {
    /// Threshold current below which no light is emitted.
    pub threshold_ma: f64,
    /// Slope efficiency in mW of optical power per mA of drive current.
    pub slope_efficiency_mw_per_ma: f64,
    /// Maximum (saturation) optical output power in mW.
    pub max_output_mw: f64,
    /// Forward voltage of the laser diode, used for electrical power.
    pub forward_voltage_v: f64,
    /// Wall-plug driver overhead: electrical power consumed by the driver per
    /// mA of drive current, in mW/mA (bias network, pre-driver).
    pub driver_overhead_mw_per_ma: f64,
    /// Maximum direct-modulation rate in GHz.
    pub modulation_bandwidth_ghz: f64,
}

impl Default for VcselConfig {
    fn default() -> Self {
        Self {
            threshold_ma: 0.8,
            slope_efficiency_mw_per_ma: 0.3,
            max_output_mw: 2.0,
            forward_voltage_v: 1.8,
            driver_overhead_mw_per_ma: 0.25,
            modulation_bandwidth_ghz: 10.0,
        }
    }
}

impl VcselConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] naming the first
    /// non-finite or non-positive parameter.
    pub fn validate(&self) -> Result<()> {
        let params = [
            ("threshold_ma", self.threshold_ma),
            (
                "slope_efficiency_mw_per_ma",
                self.slope_efficiency_mw_per_ma,
            ),
            ("max_output_mw", self.max_output_mw),
            ("forward_voltage_v", self.forward_voltage_v),
            ("modulation_bandwidth_ghz", self.modulation_bandwidth_ghz),
        ];
        for (name, value) in params {
            if !value.is_finite() || value <= 0.0 {
                return Err(PhotonicsError::InvalidParameter { name, value });
            }
        }
        if !self.driver_overhead_mw_per_ma.is_finite() || self.driver_overhead_mw_per_ma < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "driver_overhead_mw_per_ma",
                value: self.driver_overhead_mw_per_ma,
            });
        }
        Ok(())
    }

    /// Drive current needed to reach the saturation output power.
    #[must_use]
    pub fn saturation_current(&self) -> Current {
        Current::from_ma(self.threshold_ma + self.max_output_mw / self.slope_efficiency_mw_per_ma)
    }

    /// Minimum time of one modulation symbol given the bandwidth.
    #[must_use]
    pub fn symbol_time(&self) -> Time {
        Time::from_ns(1.0 / self.modulation_bandwidth_ghz)
    }
}

/// A directly modulated VCSEL emitting on a fixed WDM channel.
///
/// ```
/// use lightator_photonics::vcsel::{Vcsel, VcselConfig};
/// use lightator_photonics::units::{Current, Wavelength};
///
/// # fn main() -> Result<(), lightator_photonics::PhotonicsError> {
/// let vcsel = Vcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0))?;
/// let p = vcsel.output_power(Current::from_ma(2.0));
/// assert!(p.mw() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vcsel {
    config: VcselConfig,
    wavelength: Wavelength,
}

impl Vcsel {
    /// Creates a VCSEL emitting at `wavelength`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn new(config: VcselConfig, wavelength: Wavelength) -> Result<Self> {
        config.validate()?;
        Ok(Self { config, wavelength })
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &VcselConfig {
        &self.config
    }

    /// The emission wavelength (set by the cavity structure, not the drive).
    #[must_use]
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Optical output power for a given drive current (piecewise-linear L–I
    /// curve clamped at the saturation power).
    #[must_use]
    pub fn output_power(&self, drive: Current) -> Power {
        let above = drive.ma() - self.config.threshold_ma;
        if above <= 0.0 {
            return Power::zero();
        }
        Power::from_mw(
            (above * self.config.slope_efficiency_mw_per_ma).min(self.config.max_output_mw),
        )
    }

    /// Electrical power drawn from the supply for a given drive current,
    /// including the driver overhead.
    #[must_use]
    pub fn electrical_power(&self, drive: Current) -> Power {
        let laser = drive.ma() * self.config.forward_voltage_v;
        let driver = drive.ma() * self.config.driver_overhead_mw_per_ma;
        Power::from_mw(laser + driver)
    }

    /// Wall-plug efficiency (optical out / electrical in) at a drive current.
    /// Returns zero when no electrical power is drawn.
    #[must_use]
    pub fn wall_plug_efficiency(&self, drive: Current) -> f64 {
        let elec = self.electrical_power(drive);
        if elec.is_zero() {
            return 0.0;
        }
        self.output_power(drive) / elec
    }
}

/// Maps a digital activation level onto a VCSEL drive current.
///
/// This mirrors the Lightator VCSEL driver of Fig. 4(c): `levels` parallel
/// transistors each contribute one unit of current on top of the bias that
/// keeps the laser just above threshold, so the optical intensity is linear
/// in the digital code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModulatedVcsel {
    vcsel: Vcsel,
    levels: u16,
    bias: Current,
    unit_current: Current,
}

impl ModulatedVcsel {
    /// Creates a modulated VCSEL with `levels` drive levels (e.g. 16 for a
    /// 4-bit activation).
    ///
    /// The bias current is set to the laser threshold and the unit current is
    /// chosen so that the top code reaches the saturation output power,
    /// giving the full linear dynamic range to the activation.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if `levels` is zero or
    /// the VCSEL configuration is invalid.
    pub fn new(config: VcselConfig, wavelength: Wavelength, levels: u16) -> Result<Self> {
        if levels == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "levels",
                value: 0.0,
            });
        }
        let vcsel = Vcsel::new(config, wavelength)?;
        let bias = Current::from_ma(config.threshold_ma);
        let full_swing = config.saturation_current().ma() - config.threshold_ma;
        let unit_current = Current::from_ma(full_swing / f64::from(levels));
        Ok(Self {
            vcsel,
            levels,
            bias,
            unit_current,
        })
    }

    /// The underlying laser.
    #[must_use]
    pub fn vcsel(&self) -> &Vcsel {
        &self.vcsel
    }

    /// Number of digital drive levels.
    #[must_use]
    pub fn levels(&self) -> u16 {
        self.levels
    }

    /// Drive current for a digital level.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::DriveLevelOutOfRange`] when `level` is not
    /// in `0..levels`.
    pub fn drive_current(&self, level: u16) -> Result<Current> {
        if level >= self.levels {
            return Err(PhotonicsError::DriveLevelOutOfRange {
                level,
                levels: self.levels,
            });
        }
        Ok(Current::from_ma(
            self.bias.ma() + self.unit_current.ma() * f64::from(level),
        ))
    }

    /// Optical output power for a digital level.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::DriveLevelOutOfRange`] when `level` is not
    /// in `0..levels`.
    pub fn output_power(&self, level: u16) -> Result<Power> {
        Ok(self.vcsel.output_power(self.drive_current(level)?))
    }

    /// Normalised optical intensity in `[0, 1]` for a digital level, i.e. the
    /// activation value actually presented to the optical core.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::DriveLevelOutOfRange`] when `level` is not
    /// in `0..levels`.
    pub fn normalized_intensity(&self, level: u16) -> Result<f64> {
        let top = self.vcsel.output_power(Current::from_ma(
            self.bias.ma() + self.unit_current.ma() * f64::from(self.levels),
        ));
        if top.is_zero() {
            return Ok(0.0);
        }
        Ok(self.output_power(level)? / top)
    }

    /// Electrical power drawn when emitting a digital level.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::DriveLevelOutOfRange`] when `level` is not
    /// in `0..levels`.
    pub fn electrical_power(&self, level: u16) -> Result<Power> {
        Ok(self.vcsel.electrical_power(self.drive_current(level)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vcsel() -> Vcsel {
        Vcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0)).expect("valid")
    }

    #[test]
    fn no_light_below_threshold() {
        let v = vcsel();
        assert_eq!(v.output_power(Current::from_ma(0.0)), Power::zero());
        assert_eq!(v.output_power(Current::from_ma(0.79)), Power::zero());
    }

    #[test]
    fn li_curve_is_linear_above_threshold() {
        let v = vcsel();
        let p1 = v.output_power(Current::from_ma(1.8)); // 1 mA above threshold
        let p2 = v.output_power(Current::from_ma(2.8)); // 2 mA above threshold
        assert!((p1.mw() - 0.3).abs() < 1e-12);
        assert!((p2.mw() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn output_saturates_at_max_power() {
        let v = vcsel();
        let huge = v.output_power(Current::from_ma(1000.0));
        assert!((huge.mw() - v.config().max_output_mw).abs() < 1e-12);
    }

    #[test]
    fn electrical_power_grows_with_current() {
        let v = vcsel();
        assert!(
            v.electrical_power(Current::from_ma(2.0)).mw()
                > v.electrical_power(Current::from_ma(1.0)).mw()
        );
    }

    #[test]
    fn wall_plug_efficiency_bounded() {
        let v = vcsel();
        for ma in [0.0, 1.0, 2.0, 5.0] {
            let eff = v.wall_plug_efficiency(Current::from_ma(ma));
            assert!((0.0..=1.0).contains(&eff), "efficiency {eff} at {ma} mA");
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = VcselConfig {
            slope_efficiency_mw_per_ma: 0.0,
            ..VcselConfig::default()
        };
        assert!(Vcsel::new(cfg, Wavelength::from_nm(1550.0)).is_err());
    }

    #[test]
    fn modulated_vcsel_levels_are_monotonic() {
        let m = ModulatedVcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0), 16)
            .expect("valid");
        let mut last = -1.0;
        for level in 0..16 {
            let p = m.output_power(level).expect("level in range").mw();
            assert!(p >= last, "power must not decrease with level");
            last = p;
        }
    }

    #[test]
    fn modulated_vcsel_zero_level_is_dark() {
        let m = ModulatedVcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0), 16)
            .expect("valid");
        assert_eq!(m.output_power(0).expect("ok"), Power::zero());
        assert_eq!(m.normalized_intensity(0).expect("ok"), 0.0);
    }

    #[test]
    fn modulated_vcsel_normalized_intensity_is_linear_in_code() {
        let m = ModulatedVcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0), 16)
            .expect("valid");
        for level in 0..16u16 {
            let i = m.normalized_intensity(level).expect("ok");
            let ideal = f64::from(level) / 16.0;
            assert!((i - ideal).abs() < 1e-9, "level {level}: {i} vs {ideal}");
        }
    }

    #[test]
    fn modulated_vcsel_rejects_out_of_range_level() {
        let m = ModulatedVcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0), 16)
            .expect("valid");
        assert!(matches!(
            m.output_power(16),
            Err(PhotonicsError::DriveLevelOutOfRange { .. })
        ));
    }

    #[test]
    fn modulated_vcsel_requires_at_least_one_level() {
        assert!(
            ModulatedVcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0), 0).is_err()
        );
    }

    #[test]
    fn symbol_time_matches_bandwidth() {
        let cfg = VcselConfig::default();
        assert!((cfg.symbol_time().ns() - 0.1).abs() < 1e-12);
    }
}
