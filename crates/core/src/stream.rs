//! Frame-delta compressive streaming: the temporal dimension of the
//! paper's compressive-acquisition story.
//!
//! A video stream is temporally redundant: most blocks of most frames are
//! identical to the previous frame. Lightator's sensing front end already
//! has the machinery to exploit that — the CRC comparators can detect a
//! static block electronically, and the DMVA [`Selector`] can keep a lane
//! on its feedback path (the previous output) instead of re-driving the
//! optical core. This module models that path:
//!
//! * [`StreamConfig`] — the block grid and the delta threshold of the gate;
//! * [`TemporalDifferencer`] — per-block change detection against the last
//!   *computed* reference (not merely the previous frame, so slow drift
//!   cannot accumulate unboundedly below the threshold), driving one DMVA
//!   [`Selector`] per block;
//! * [`StreamFrame`] / [`StreamReport`] — per-frame and per-stream results
//!   layered on the session's performance model: frames processed, blocks
//!   skipped, simulated time, energy, and the speedup over dense per-frame
//!   execution.
//!
//! Skipped blocks bypass both the CA bank pass and the kernel convolution;
//! only the electronic gate (comparators + selector switching) is charged,
//! at [`GATE_COST_FRACTION`] of the block's optical cost.

use crate::error::{CoreError, Result};
use lightator_nn::tensor::Tensor;
use lightator_photonics::units::{Energy, Time};
use lightator_sensor::dmva::{ActivationSource, Selector};
use lightator_sensor::frame::RgbFrame;
use serde::{Deserialize, Serialize};

/// Fraction of a block's optical cost spent when the block is *skipped*:
/// the CRC comparators still scan the block and the DMVA selector switches
/// to the feedback path, but no VCSEL drives the CA bank or the convolver.
pub const GATE_COST_FRACTION: f64 = 0.05;

/// Configuration of the frame-delta gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Block edge of the gate's tiles, in acquired-map pixels (the acquired
    /// height and width must both be divisible by it).
    pub block_size: usize,
    /// Per-pixel scene change (normalised intensity) at or above which a
    /// block is recomputed; strictly smaller changes ride the feedback
    /// path. Zero recomputes every block every frame (dense execution).
    pub delta_threshold: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            block_size: 4,
            // Just under one 4-bit code step: changes the CRC cannot even
            // resolve never wake the optical path.
            delta_threshold: 0.05,
        }
    }
}

impl StreamConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero block size or a
    /// non-finite/negative threshold.
    pub fn validate(&self) -> Result<()> {
        if self.block_size == 0 {
            return Err(CoreError::invalid_config(
                "block_size",
                0.0,
                "the delta gate needs at least one acquired pixel per block",
            ));
        }
        if !self.delta_threshold.is_finite() || self.delta_threshold < 0.0 {
            return Err(CoreError::invalid_config(
                "delta_threshold",
                self.delta_threshold,
                "the delta threshold must be a finite, non-negative intensity",
            ));
        }
        Ok(())
    }
}

/// Snapshot of a stream's temporal state after some frame: everything a
/// session needs to continue the stream from the *next* frame.
///
/// Capture it with [`crate::platform::Session::stream_state`] and hand it to
/// [`crate::platform::Session::resume_stream`] (together with
/// [`crate::platform::Session::seek_frame`]) to replay the tail of a stream
/// bit-exactly on a fresh session.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// Per-block reference scene: each block holds the raw pixels of the
    /// last frame for which it was computed.
    pub(crate) ref_scene: RgbFrame,
    /// The acquired (CA-compressed) map matching `ref_scene` block-wise:
    /// what the feedback path replays for skipped blocks.
    pub(crate) ref_acquired: Tensor,
    /// The previous filtered output (skipped blocks reuse their region).
    pub(crate) prev_output: Tensor,
}

/// Per-block temporal change detection, driving one DMVA [`Selector`] per
/// block: blocks whose scene delta stays below the threshold keep their
/// lane on [`ActivationSource::PreviousLayer`] (the feedback path), blocks
/// that changed switch back to [`ActivationSource::PixelArray`].
#[derive(Debug, Clone)]
pub struct TemporalDifferencer {
    config: StreamConfig,
    /// Block grid over the acquired map, `(rows, cols)`.
    grid: (usize, usize),
    /// Sensor pixels per acquired pixel (the CA pooling window, 1 without
    /// CA): blocks span `block_size × window` sensor pixels.
    window: usize,
    /// One selector per block, row-major over the grid.
    selectors: Vec<Selector>,
}

impl TemporalDifferencer {
    /// Creates a differencer for an acquired map of `acquired_height` ×
    /// `acquired_width` pixels, each pooled from `window` × `window` sensor
    /// pixels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid
    /// or the block size does not divide the acquired dimensions.
    pub fn new(
        config: StreamConfig,
        acquired_height: usize,
        acquired_width: usize,
        window: usize,
    ) -> Result<Self> {
        config.validate()?;
        if !acquired_height.is_multiple_of(config.block_size)
            || !acquired_width.is_multiple_of(config.block_size)
        {
            return Err(CoreError::invalid_config(
                "block_size",
                config.block_size as f64,
                format!(
                    "the delta-gate block size must divide the acquired map \
                     ({acquired_height}x{acquired_width} is not divisible by {})",
                    config.block_size
                ),
            ));
        }
        let grid = (
            acquired_height / config.block_size,
            acquired_width / config.block_size,
        );
        Ok(Self {
            config,
            grid,
            window: window.max(1),
            selectors: vec![Selector::new(); grid.0 * grid.1],
        })
    }

    /// The gate configuration.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Block grid over the acquired map, `(rows, cols)`.
    #[must_use]
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Number of blocks per frame.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// The per-block DMVA selectors after the last gate pass (row-major):
    /// [`ActivationSource::PixelArray`] for computed blocks,
    /// [`ActivationSource::PreviousLayer`] for skipped ones.
    #[must_use]
    pub fn selectors(&self) -> &[Selector] {
        &self.selectors
    }

    /// Gates one scene against the reference: returns, per block
    /// (row-major), whether the block must be recomputed. With no reference
    /// (the first frame of a stream) every block is computed.
    ///
    /// The comparison covers the block *plus one acquired pixel of halo* in
    /// sensor space, because a 3×3 kernel output inside the block also
    /// depends on its immediate neighbours.
    pub fn gate(&mut self, scene: &RgbFrame, reference: Option<&RgbFrame>) -> Vec<bool> {
        let (rows, cols) = self.grid;
        let sensor_block = self.config.block_size * self.window;
        let halo = self.window;
        let mut mask = vec![true; rows * cols];
        if let Some(reference) = reference {
            for br in 0..rows {
                for bc in 0..cols {
                    let row0 = (br * sensor_block).saturating_sub(halo);
                    let col0 = (bc * sensor_block).saturating_sub(halo);
                    let row1 = ((br + 1) * sensor_block + halo).min(scene.height());
                    let col1 = ((bc + 1) * sensor_block + halo).min(scene.width());
                    let mut delta = 0.0f64;
                    'block: for row in row0..row1 {
                        let base = (row * scene.width() + col0) * 3;
                        let len = (col1 - col0) * 3;
                        let current = &scene.data()[base..base + len];
                        let previous = &reference.data()[base..base + len];
                        for (a, b) in current.iter().zip(previous) {
                            delta = delta.max((a - b).abs());
                            if delta >= self.config.delta_threshold {
                                break 'block;
                            }
                        }
                    }
                    // At-or-above the threshold recomputes, so a zero
                    // threshold is exactly dense per-frame execution.
                    mask[br * cols + bc] = delta >= self.config.delta_threshold;
                }
            }
        }
        for (selector, &compute) in self.selectors.iter_mut().zip(&mask) {
            selector.select(if compute {
                ActivationSource::PixelArray
            } else {
                ActivationSource::PreviousLayer
            });
        }
        mask
    }
}

/// One frame of a [`StreamReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamFrame {
    /// Global frame index the frame executed as (drives the analog-noise
    /// stream).
    pub index: u64,
    /// Blocks recomputed on the optical core.
    pub computed_blocks: usize,
    /// Blocks served from the DMVA feedback path.
    pub skipped_blocks: usize,
    /// Shape of the filtered output (`[1, h, w]`).
    pub shape: Vec<usize>,
    /// Filtered output values, row-major.
    pub data: Vec<f32>,
    /// Simulated latency of the frame under the delta gate.
    pub latency: Time,
    /// Simulated energy of the frame under the delta gate.
    pub energy: Energy,
}

/// Aggregated result of one [`crate::platform::Session::run_stream`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Workload label (`stream:sobel-x`, ...).
    pub workload: String,
    /// Per-frame results, in stream order.
    pub frames: Vec<StreamFrame>,
    /// Blocks per frame in the delta gate's grid.
    pub blocks_per_frame: usize,
    /// Total simulated time of the stream under the delta gate.
    pub sim_time: Time,
    /// Total simulated energy of the stream under the delta gate.
    pub energy: Energy,
    /// What the same stream would have cost with every block recomputed
    /// every frame — the dense baseline behind
    /// [`StreamReport::speedup_vs_dense`].
    pub dense_sim_time: Time,
    /// Dense-execution energy of the same stream.
    pub dense_energy: Energy,
}

impl StreamReport {
    /// Creates an empty report for a workload with `blocks_per_frame`
    /// gate blocks.
    #[must_use]
    pub fn new(workload: String, blocks_per_frame: usize) -> Self {
        Self {
            workload,
            frames: Vec::new(),
            blocks_per_frame,
            sim_time: Time::from_ns(0.0),
            energy: Energy::from_fj(0.0),
            dense_sim_time: Time::from_ns(0.0),
            dense_energy: Energy::from_fj(0.0),
        }
    }

    /// Appends one frame, folding its cost into the stream totals.
    pub fn push(&mut self, frame: StreamFrame, dense_latency: Time, dense_energy: Energy) {
        self.sim_time += frame.latency;
        self.energy += frame.energy;
        self.dense_sim_time += dense_latency;
        self.dense_energy += dense_energy;
        self.frames.push(frame);
    }

    /// Frames processed.
    #[must_use]
    pub fn frames_processed(&self) -> usize {
        self.frames.len()
    }

    /// Blocks skipped across the whole stream.
    #[must_use]
    pub fn blocks_skipped(&self) -> usize {
        self.frames.iter().map(|f| f.skipped_blocks).sum()
    }

    /// Blocks in the whole stream (frames × blocks per frame).
    #[must_use]
    pub fn blocks_total(&self) -> usize {
        self.frames.len() * self.blocks_per_frame
    }

    /// Fraction of blocks served from the feedback path.
    #[must_use]
    pub fn skip_ratio(&self) -> f64 {
        if self.blocks_total() == 0 {
            return 0.0;
        }
        self.blocks_skipped() as f64 / self.blocks_total() as f64
    }

    /// Sustained frame rate in simulated frames per second.
    #[must_use]
    pub fn fps(&self) -> f64 {
        if self.sim_time.seconds() == 0.0 {
            return 0.0;
        }
        self.frames.len() as f64 / self.sim_time.seconds()
    }

    /// Mean simulated energy per frame.
    #[must_use]
    pub fn energy_per_frame(&self) -> Energy {
        if self.frames.is_empty() {
            return Energy::from_fj(0.0);
        }
        self.energy * (1.0 / self.frames.len() as f64)
    }

    /// Simulated-time speedup of the delta-skip path over dense per-frame
    /// execution of the same stream.
    #[must_use]
    pub fn speedup_vs_dense(&self) -> f64 {
        if self.sim_time.ns() == 0.0 {
            return 1.0;
        }
        self.dense_sim_time.ns() / self.sim_time.ns()
    }

    /// One-line summary for logs and examples.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: {} frames, {:.0}% blocks skipped, {:.0} FPS (sim), \
             {:.2} nJ/frame, {:.2}x vs dense",
            self.workload,
            self.frames_processed(),
            self.skip_ratio() * 100.0,
            self.fps(),
            self.energy_per_frame().nj(),
            self.speedup_vs_dense()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_of(value: f64) -> RgbFrame {
        RgbFrame::filled(8, 8, [value, value, value]).expect("valid")
    }

    #[test]
    fn config_validation_rejects_degenerate_gates() {
        assert!(StreamConfig {
            block_size: 0,
            ..StreamConfig::default()
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            delta_threshold: f64::NAN,
            ..StreamConfig::default()
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            delta_threshold: -0.1,
            ..StreamConfig::default()
        }
        .validate()
        .is_err());
        assert!(StreamConfig::default().validate().is_ok());
    }

    #[test]
    fn differencer_requires_divisible_grids() {
        let config = StreamConfig {
            block_size: 3,
            ..StreamConfig::default()
        };
        assert!(TemporalDifferencer::new(config, 4, 4, 2).is_err());
        assert!(TemporalDifferencer::new(config, 6, 9, 2).is_ok());
    }

    #[test]
    fn first_frame_computes_every_block() {
        let mut differencer =
            TemporalDifferencer::new(StreamConfig::default(), 4, 4, 2).expect("ok");
        let mask = differencer.gate(&frame_of(0.5), None);
        assert!(mask.iter().all(|&c| c));
        assert!(differencer
            .selectors()
            .iter()
            .all(|s| s.source() == ActivationSource::PixelArray));
    }

    #[test]
    fn static_scenes_ride_the_feedback_path() {
        let mut differencer =
            TemporalDifferencer::new(StreamConfig::default(), 4, 4, 2).expect("ok");
        let scene = frame_of(0.5);
        differencer.gate(&scene, None);
        let mask = differencer.gate(&scene, Some(&scene));
        assert!(mask.iter().all(|&c| !c));
        assert!(differencer
            .selectors()
            .iter()
            .all(|s| s.source() == ActivationSource::PreviousLayer));
    }

    #[test]
    fn local_changes_wake_only_nearby_blocks() {
        // 8x8 acquired map, block 4 -> a 2x2 grid; window 1 so sensor
        // coordinates equal acquired coordinates.
        let mut differencer =
            TemporalDifferencer::new(StreamConfig::default(), 8, 8, 1).expect("ok");
        let reference = frame_of(0.5);
        let mut scene = reference.clone();
        scene.set_pixel(0, 0, [0.9, 0.9, 0.9]).expect("ok");
        let mask = differencer.gate(&scene, Some(&reference));
        assert!(mask[0], "the changed block must recompute");
        assert!(
            !mask[3],
            "the far corner block is outside the halo and must skip"
        );
    }

    #[test]
    fn sub_threshold_changes_are_ignored() {
        let mut differencer = TemporalDifferencer::new(
            StreamConfig {
                delta_threshold: 0.2,
                ..StreamConfig::default()
            },
            4,
            4,
            1,
        )
        .expect("ok");
        let reference = frame_of(0.5);
        let scene = frame_of(0.6); // 0.1 < 0.2 everywhere
        let mask = differencer.gate(&scene, Some(&reference));
        assert!(mask.iter().all(|&c| !c));
    }

    #[test]
    fn report_aggregates_and_summarises() {
        let mut report = StreamReport::new("stream:identity".into(), 4);
        report.push(
            StreamFrame {
                index: 0,
                computed_blocks: 4,
                skipped_blocks: 0,
                shape: vec![1, 2, 2],
                data: vec![0.0; 4],
                latency: Time::from_ns(100.0),
                energy: Energy::from_fj(1_000.0),
            },
            Time::from_ns(100.0),
            Energy::from_fj(1_000.0),
        );
        report.push(
            StreamFrame {
                index: 1,
                computed_blocks: 1,
                skipped_blocks: 3,
                shape: vec![1, 2, 2],
                data: vec![0.0; 4],
                latency: Time::from_ns(40.0),
                energy: Energy::from_fj(400.0),
            },
            Time::from_ns(100.0),
            Energy::from_fj(1_000.0),
        );
        assert_eq!(report.frames_processed(), 2);
        assert_eq!(report.blocks_total(), 8);
        assert_eq!(report.blocks_skipped(), 3);
        assert!((report.skip_ratio() - 3.0 / 8.0).abs() < 1e-12);
        assert!((report.sim_time.ns() - 140.0).abs() < 1e-9);
        assert!((report.speedup_vs_dense() - 200.0 / 140.0).abs() < 1e-12);
        assert!(report.fps() > 0.0);
        assert!(report.summary().contains("stream:identity"));
    }
}
