//! Live workload sessions: plan-compiled execution over the sensor → CA →
//! optical-core datapath.
//!
//! Opening a [`Session`] **compiles** its workload once into a
//! [`CompiledPlan`] — the pre-encoded MR weight bank, the CA operator and
//! preallocated scratch buffers — and every execution entry point
//! ([`Session::run`], [`Session::run_batch`], [`Session::run_stream`],
//! [`Session::resume_stream`]) reuses that plan instead of re-encoding the
//! quantized weights per call. Plan reuse is a pure-performance transform:
//! encoding draws no analog noise, so plan-cached execution consumes the
//! identical frame-indexed noise-draw order as the per-call-encode path
//! (switchable for differential testing via [`Session::set_plan_reuse`])
//! and stays bit-exact.

use crate::backend::{BackendId, LoweredPlan};
use crate::error::{CoreError, Result};
use crate::exec::PhotonicAccuracy;
use crate::plan::{CompiledPlan, PlanStats};
use crate::platform::builder::Platform;
use crate::platform::report::{
    acquisition_outcome, check_model_input, classification_from_logits, filtered_from,
    model_mismatch, Outcome, Report,
};
use crate::platform::workload::{network_spec_of, Workload};
use crate::sim::SimulationReport;
use crate::stream::{
    StreamFrame, StreamReport, StreamState, TemporalDifferencer, GATE_COST_FRACTION,
};
use lightator_nn::datasets::Dataset;
use lightator_nn::spec::NetworkSpecBuilder;
use lightator_nn::tensor::Tensor;
use lightator_sensor::array::SensorArray;
use lightator_sensor::frame::RgbFrame;
use lightator_telemetry::{TraceEvent, TraceSink};
use std::borrow::Borrow;
use std::sync::Arc;

/// A live workload session: owns the sensor, the workload's lowered plan
/// (the backend-specific executable form of its [`CompiledPlan`]) and its
/// performance model.
///
/// Sessions open on the **photonic** backend by default and behave exactly
/// as they did before backends existed; [`Platform::session_on`] lowers
/// the same workload onto any registered [`crate::backend::Backend`]
/// instead.
#[derive(Debug, Clone)]
pub struct Session {
    sensor: SensorArray,
    /// The workload lowered onto this session's backend.
    lowered: Box<dyn LoweredPlan>,
    backend: BackendId,
    workload: Workload,
    stream: Option<StreamPipeline>,
    perf: SimulationReport,
    label: String,
    tracer: Option<Tracer>,
}

/// An attached trace sink plus the session's simulated-time cursor: frames
/// are laid end to end on the session's own timeline, so a session's trace
/// is a replayable schedule independent of wall-clock interleaving.
#[derive(Debug, Clone)]
struct Tracer {
    sink: Arc<dyn TraceSink>,
    now_ns: f64,
}

/// Everything a video-stream session adds on top of the frame path: the
/// temporal gate, the carried stream state and the acquisition-side
/// performance model. (The per-block tile model lives in the session's
/// [`CompiledPlan`].)
#[derive(Debug, Clone)]
struct StreamPipeline {
    differencer: TemporalDifferencer,
    /// Temporal references after the last processed frame; `None` before a
    /// stream starts.
    state: Option<StreamState>,
    /// Performance of the CA acquisition pass (always part of a computed
    /// block's cost).
    perf_acquire: SimulationReport,
    /// Sensor pixels per acquired pixel (CA pooling window, 1 without CA).
    window: usize,
}

impl Session {
    /// Opens a session on the default photonic backend: validates the
    /// workload against the platform, lowers it into a [`CompiledPlan`] and
    /// derives its performance model.
    pub(crate) fn open(platform: &Platform, workload: Workload, seed: u64) -> Result<Self> {
        Self::open_on(platform, workload, seed, &BackendId::photonic())
    }

    /// Opens a session lowered onto an explicit backend.
    pub(crate) fn open_on(
        platform: &Platform,
        workload: Workload,
        seed: u64,
        backend_id: &BackendId,
    ) -> Result<Self> {
        let backend = platform.backend(backend_id)?;
        let config = platform.config();
        if !backend.supports(&workload) {
            return Err(CoreError::ModelMismatch {
                reason: format!(
                    "backend `{}` does not support the `{}` workload",
                    backend.id(),
                    workload.label()
                ),
            });
        }
        let sensor = SensorArray::new(config.sensor.clone())?;
        let label = workload.label();
        let acquired = config.acquired_shape();
        let kernel_spec = || -> Result<_> {
            Ok(NetworkSpecBuilder::new(&label, acquired)
                .conv(1, 3, 1, 1)
                .map_err(CoreError::from)?
                .build())
        };
        let (spec, stream) = match &workload {
            Workload::Classify { model } => (network_spec_of(model, &label)?, None),
            Workload::Acquire => (platform.acquisition_spec()?, None),
            Workload::ImageKernel { .. } => (kernel_spec()?, None),
            Workload::VideoStream { stream, .. } => {
                let window = config.ca.map_or(1, |ca| ca.pooling_window);
                let differencer =
                    TemporalDifferencer::new(*stream, acquired[1], acquired[2], window)?;
                let perf_acquire = backend.performance(&platform.acquisition_spec()?, config)?;
                let pipeline = StreamPipeline {
                    differencer,
                    state: None,
                    perf_acquire,
                    window,
                };
                (kernel_spec()?, Some(pipeline))
            }
        };
        let lowered = backend.lower(&workload, config, seed)?;
        crate::verify::verify_plan_structural(lowered.plan(), &workload, config, backend.as_ref())?;
        let perf = backend.performance(&spec, config)?;
        Ok(Session {
            sensor,
            lowered,
            backend: backend.id(),
            workload,
            stream,
            perf,
            label,
            tracer: None,
        })
    }

    /// Attaches a trace sink: every later frame emits per-frame and
    /// per-stage spans (timestamped in the session's simulated time) plus
    /// plan-cache events into `sink`.
    ///
    /// Tracing is **observationally pure** — emission only reads the
    /// already-computed performance model and plan counters, so a traced
    /// run produces bit-identical outputs to an untraced one (the property
    /// suite asserts this with analog noise on).
    pub fn attach_recorder(&mut self, sink: Arc<dyn TraceSink>) {
        self.tracer = Some(Tracer { sink, now_ns: 0.0 });
    }

    /// Detaches the trace sink, returning it if one was attached. The
    /// simulated-time cursor resets; re-attaching starts a fresh timeline.
    pub fn detach_recorder(&mut self) -> Option<Arc<dyn TraceSink>> {
        self.tracer.take().map(|tracer| tracer.sink)
    }

    /// Whether a trace sink is attached.
    #[must_use]
    pub fn has_recorder(&self) -> bool {
        self.tracer.is_some()
    }

    /// The workload this session serves.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Id of the backend this session's workload was lowered onto
    /// (`"photonic"` unless the session was opened through
    /// [`Platform::session_on`]).
    #[must_use]
    pub fn backend(&self) -> &BackendId {
        &self.backend
    }

    /// The compiled plan this session executes: CA operator, lowered
    /// optical model and the pre-encoded MR weight bank, built once when
    /// the session opened.
    #[must_use]
    pub fn plan(&self) -> &CompiledPlan {
        self.lowered.plan()
    }

    /// Encode/reuse counters of the session's plan: a healthy session
    /// reports exactly one encode however many frames it served.
    #[must_use]
    pub fn plan_stats(&self) -> PlanStats {
        self.lowered.plan().stats()
    }

    /// Whether executions reuse the compiled plan (the default).
    #[must_use]
    pub fn plan_reuse(&self) -> bool {
        self.lowered.plan_reuse()
    }

    /// Switches between plan-cached execution (the default) and the
    /// per-call-encode path that re-encodes the quantized MR weights on
    /// every call.
    ///
    /// Both paths are **bit-identical** — weight encoding draws no analog
    /// noise, so the frame-indexed noise-draw order is unchanged. The
    /// switch exists for differential testing (the property suite asserts
    /// the equivalence) and for benchmarking the reuse win
    /// (`cargo bench -p lightator-bench --bench plan_reuse`).
    pub fn set_plan_reuse(&mut self, enabled: bool) {
        self.lowered.set_plan_reuse(enabled);
    }

    /// How many workers tile the MAC loops (1 = sequential).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.lowered.workers()
    }

    /// Sets the worker count used to tile the conv/linear MAC loops.
    ///
    /// Tiling is **bit-exact**: the counter-based noise generator keys
    /// every Gaussian draw by `(seed, frame, channel, element)`, so workers
    /// produce the identical draws the sequential loop would. The knob only
    /// affects throughput (`cargo bench -p lightator-bench --bench
    /// parallel_scaling`). Counts below 1 are clamped to 1.
    pub fn set_workers(&mut self, workers: usize) {
        self.lowered.set_workers(workers);
    }

    /// The workload's performance model on this platform (identical to the
    /// `perf` field of every report the session produces).
    #[must_use]
    pub fn perf(&self) -> &SimulationReport {
        &self.perf
    }

    /// Whether the acquisition path compresses frames through the CA banks.
    #[must_use]
    pub fn uses_compressive_acquisition(&self) -> bool {
        self.lowered.plan().ca().is_some()
    }

    /// Acquires a scene into the tensor fed to the optical core: the fused
    /// CA weighted sum when CA is enabled, the normalised 4-bit readout
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Propagates sensor and CA errors.
    pub fn acquire(&self, scene: &RgbFrame) -> Result<Tensor> {
        match self.lowered.plan().ca() {
            Some(ca) => {
                let compressed = ca.acquire(scene)?;
                let data: Vec<f32> = compressed.data().iter().map(|&v| v as f32).collect();
                Ok(Tensor::from_vec(
                    data,
                    &[1, compressed.height(), compressed.width()],
                )?)
            }
            None => {
                let digital = self.sensor.capture(scene)?;
                let data: Vec<f32> = digital.normalized().iter().map(|&v| v as f32).collect();
                Ok(Tensor::from_vec(
                    data,
                    &[1, digital.height(), digital.width()],
                )?)
            }
        }
    }

    /// Processes one frame end to end through the cached plan and reports
    /// both the functional result and the workload's performance on this
    /// platform.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ModelMismatch`] if the acquired tensor does not
    /// match the classify model's input shape, and propagates
    /// sensor/CA/photonic errors. A failed frame still consumes its frame
    /// index, so the noise stream of every later frame is independent of
    /// whether earlier frames succeeded. Video-stream sessions reject
    /// [`Session::run`] (without consuming an index) — use
    /// [`Session::run_stream`].
    pub fn run(&mut self, scene: &RgbFrame) -> Result<Report> {
        self.ensure_frame_workload()?;
        let index = self.lowered.next_frame_index();
        let stats_before = self.tracer.as_ref().map(|_| self.lowered.plan().stats());
        let result = self.run_inner(scene);
        // One frame, one index — success or failure. (Failures can bail
        // out before the executor advances, e.g. on a sensor error or a
        // model mismatch.)
        self.lowered.set_next_frame_index(index + 1);
        if let Some(before) = stats_before {
            self.trace_frames(index, 1, before, result.is_ok());
        }
        result
    }

    fn run_inner(&mut self, scene: &RgbFrame) -> Result<Report> {
        let input = self.acquire(scene)?;
        // Workload-level checks first (against the workload's own model),
        // then hand the tensors to the backend's lowered plan.
        let step = match &self.workload {
            Workload::Classify { model } => {
                if input.shape() != model.input_shape() {
                    return Err(model_mismatch(input.shape(), model.input_shape()));
                }
                FrameStep::Classify
            }
            Workload::Acquire => FrameStep::Acquire,
            Workload::ImageKernel { kernel } => FrameStep::Kernel(kernel.name()),
            Workload::VideoStream { .. } => {
                unreachable!("`ensure_frame_workload` rejects stream sessions before run_inner")
            }
        };
        let outcome = match step {
            FrameStep::Classify => {
                let logits = self.lowered.forward(&input)?;
                classification_from_logits(&logits, input.shape())?
            }
            FrameStep::Acquire => {
                // Acquisition runs through the plan's cached CA operator;
                // count the reuse even though no weight bank is involved.
                if self.lowered.plan_reuse() {
                    self.lowered.plan_mut().record_hits(1);
                }
                acquisition_outcome(&input)
            }
            FrameStep::Kernel(name) => {
                let filtered = self.lowered.forward(&input)?;
                filtered_from(&filtered, name)
            }
        };
        Ok(Report {
            workload: self.label.clone(),
            outcome,
            perf: self.perf.clone(),
        })
    }

    /// Processes a batch of frames through the cached plan: the quantized
    /// MR weight bank was encoded once when the session opened and every
    /// frame streams through the shared encoding — strictly faster than N
    /// sequential [`Session::run`] calls and bit-identical to them for the
    /// same starting session state.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`], checked per frame. As with [`Session::run`],
    /// a failed batch still consumes one frame index per scene.
    pub fn run_batch(&mut self, scenes: &[RgbFrame]) -> Result<Vec<Report>> {
        self.ensure_frame_workload()?;
        if scenes.is_empty() {
            // Nothing to acquire or execute: leave the executor (and its
            // noise-stream position) untouched instead of programming the
            // weight DACs for zero frames.
            return Ok(Vec::new());
        }
        let index = self.lowered.next_frame_index();
        let stats_before = self.tracer.as_ref().map(|_| self.lowered.plan().stats());
        let result = self.run_batch_inner(scenes);
        self.lowered
            .set_next_frame_index(index + scenes.len() as u64);
        if let Some(before) = stats_before {
            self.trace_frames(index, scenes.len(), before, result.is_ok());
        }
        result
    }

    fn run_batch_inner(&mut self, scenes: &[RgbFrame]) -> Result<Vec<Report>> {
        let inputs: Vec<Tensor> = scenes
            .iter()
            .map(|scene| self.acquire(scene))
            .collect::<Result<_>>()?;
        let step = match &self.workload {
            Workload::Classify { model } => {
                check_model_input(model, &inputs)?;
                FrameStep::Classify
            }
            Workload::Acquire => FrameStep::Acquire,
            Workload::ImageKernel { kernel } => FrameStep::Kernel(kernel.name()),
            Workload::VideoStream { .. } => {
                unreachable!("`ensure_frame_workload` rejects stream sessions before batches")
            }
        };
        let outcomes: Vec<Outcome> = match step {
            FrameStep::Classify => {
                let logits = self.lowered.forward_batch(&inputs)?;
                inputs
                    .iter()
                    .zip(logits)
                    .map(|(input, l)| classification_from_logits(&l, input.shape()))
                    .collect::<Result<_>>()?
            }
            FrameStep::Acquire => {
                // Acquisition runs through the plan's cached CA operator;
                // count the reuse even though no weight bank is involved.
                if self.lowered.plan_reuse() {
                    self.lowered.plan_mut().record_hits(inputs.len() as u64);
                }
                inputs.iter().map(acquisition_outcome).collect()
            }
            FrameStep::Kernel(name) => {
                let filtered = self.lowered.forward_batch(&inputs)?;
                filtered.iter().map(|t| filtered_from(t, name)).collect()
            }
        };
        Ok(outcomes
            .into_iter()
            .map(|outcome| Report {
                workload: self.label.clone(),
                outcome,
                perf: self.perf.clone(),
            })
            .collect())
    }

    /// Emits the trace of `count` frames starting at global index
    /// `first_index`: per-frame spans, their stage decomposition and the
    /// plan-cache delta since `before`. Reads only the performance model
    /// and the plan counters — never executor or RNG state.
    fn trace_frames(&mut self, first_index: u64, count: usize, before: PlanStats, ok: bool) {
        let Self {
            tracer,
            lowered,
            perf,
            label,
            ..
        } = self;
        let Some(tracer) = tracer.as_mut() else {
            return;
        };
        let track = format!("session:{label}");
        if ok {
            let stages = crate::trace::frame_stages(perf);
            for offset in 0..count {
                let start = tracer.now_ns;
                let dur = perf.frame_latency.ns();
                tracer.sink.record(
                    TraceEvent::span("frame", label, &track, start, dur, perf.frame_energy.pj())
                        .with_arg("frame", first_index + offset as u64),
                );
                let mut cursor = start;
                for stage in &stages {
                    tracer.sink.record(TraceEvent::span(
                        "stage",
                        stage.stage,
                        &track,
                        cursor,
                        stage.latency.ns(),
                        stage.energy.pj(),
                    ));
                    cursor += stage.latency.ns();
                }
                tracer.now_ns = start + dur;
            }
        } else {
            for offset in 0..count {
                tracer.sink.record(
                    TraceEvent::instant("frame", "frame-error", &track, tracer.now_ns)
                        .with_arg("frame", first_index + offset as u64),
                );
            }
        }
        let after = lowered.plan().stats();
        let hits = after.cache_hits.saturating_sub(before.cache_hits);
        if hits > 0 {
            tracer.sink.record(
                TraceEvent::instant("plan", "plan-hit", &track, tracer.now_ns)
                    .with_arg("count", hits),
            );
            tracer.sink.record(TraceEvent::counter(
                "plan",
                "plan_cache_hits",
                &track,
                tracer.now_ns,
                after.cache_hits as f64,
            ));
        }
        let encodes = after.encodes.saturating_sub(before.encodes);
        if encodes > 0 {
            tracer.sink.record(
                TraceEvent::instant("plan", "plan-encode", &track, tracer.now_ns)
                    .with_arg("count", encodes),
            );
            tracer.sink.record(TraceEvent::counter(
                "plan",
                "plan_encodes",
                &track,
                tracer.now_ns,
                after.encodes as f64,
            ));
        }
    }

    /// Emits the trace of one gated stream frame: the frame span plus the
    /// acquisition and compute stages, each scaled by the frame's duty
    /// cycle (computed fraction + [`GATE_COST_FRACTION`] feedback floor),
    /// so stage sums reproduce the frame's gated latency and energy.
    fn trace_stream_frame(&mut self, frame: &StreamFrame, perf_acquire: &SimulationReport) {
        let Self {
            tracer,
            perf,
            label,
            ..
        } = self;
        let Some(tracer) = tracer.as_mut() else {
            return;
        };
        let track = format!("session:{label}");
        let blocks = frame.computed_blocks + frame.skipped_blocks;
        let fraction = if blocks == 0 {
            0.0
        } else {
            frame.computed_blocks as f64 / blocks as f64
        };
        let duty = fraction + GATE_COST_FRACTION * (1.0 - fraction);
        let start = tracer.now_ns;
        tracer.sink.record(
            TraceEvent::span(
                "frame",
                label,
                &track,
                start,
                frame.latency.ns(),
                frame.energy.pj(),
            )
            .with_arg("frame", frame.index)
            .with_arg("computed_blocks", frame.computed_blocks)
            .with_arg("skipped_blocks", frame.skipped_blocks),
        );
        let mut cursor = start;
        for stage in crate::trace::frame_stages(perf_acquire)
            .iter()
            .chain(crate::trace::frame_stages(perf).iter())
        {
            let dur = stage.latency.ns() * duty;
            tracer.sink.record(TraceEvent::span(
                "stage",
                stage.stage,
                &track,
                cursor,
                dur,
                stage.energy.pj() * duty,
            ));
            cursor += dur;
        }
        tracer.now_ns = start + frame.latency.ns();
    }

    /// Index of the global frame the next [`Session::run`] executes as.
    ///
    /// Fresh sessions start at frame 0 and every processed frame —
    /// successful or not, on any workload — consumes exactly one index
    /// ([`Session::run_batch`] one per scene). This is what keeps a serving
    /// pool's ticket accounting aligned with sequential execution even
    /// around failed requests.
    #[must_use]
    pub fn next_frame_index(&self) -> u64 {
        self.lowered.next_frame_index()
    }

    /// Positions the session at global frame `index`.
    ///
    /// The analog-noise stream is a deterministic function of
    /// `(seed, frame index)`, so a session that seeks to `index` before
    /// running a frame produces exactly what a single sequential session
    /// would have produced for its `index`-th frame. A sharded serving pool
    /// seeks each shard to the ticket of the batch it drained, which is what
    /// keeps pooled execution bit-identical to sequential execution.
    pub fn seek_frame(&mut self, index: u64) {
        self.lowered.set_next_frame_index(index);
    }

    /// Rejects the per-frame entry points on video-stream sessions.
    fn ensure_frame_workload(&self) -> Result<()> {
        if matches!(self.workload, Workload::VideoStream { .. }) {
            return Err(CoreError::ModelMismatch {
                reason: "video-stream sessions process frames through `run_stream` \
                         (or `resume_stream`), not `run`/`run_batch`"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Processes a video stream end to end under the frame-delta gate,
    /// starting a **fresh** stream: the first frame computes every block,
    /// and every later frame recomputes only the blocks whose scene delta
    /// exceeds the configured threshold — the rest ride the DMVA feedback
    /// path at [`GATE_COST_FRACTION`] of their optical cost.
    ///
    /// Every frame — computed, partially skipped or fully skipped —
    /// consumes exactly one global frame index, so the analog-noise stream
    /// of a stream frame depends only on its position, exactly like the
    /// single-frame workloads. A failed frame aborts the stream having
    /// consumed its index.
    ///
    /// The session keeps the final [`StreamState`] (see
    /// [`Session::stream_state`]), so a later [`Session::resume_stream`]
    /// can continue the stream — or replay its tail on a fresh session —
    /// bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ModelMismatch`] for non-stream workloads or a
    /// frame whose resolution does not match the platform sensor, and
    /// propagates sensor/CA/photonic errors.
    pub fn run_stream<I>(&mut self, frames: I) -> Result<StreamReport>
    where
        I: IntoIterator,
        I::Item: Borrow<RgbFrame>,
    {
        if let Some(pipeline) = self.stream.as_mut() {
            pipeline.state = None;
        }
        self.continue_stream(frames)
    }

    /// Continues a stream from a previously captured [`StreamState`]
    /// instead of starting fresh.
    ///
    /// Combined with [`Session::seek_frame`], this replays the tail of a
    /// stream bit-exactly: seek to the global index of the first tail
    /// frame, restore the state captured after the preceding frame, and the
    /// session produces exactly what a single full run produced for those
    /// frames — analog noise included.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run_stream`], plus [`CoreError::ModelMismatch`]
    /// if the state's shapes do not match this session's stream geometry.
    pub fn resume_stream<I>(&mut self, state: StreamState, frames: I) -> Result<StreamReport>
    where
        I: IntoIterator,
        I::Item: Borrow<RgbFrame>,
    {
        let pipeline = self.stream.as_mut().ok_or_else(non_stream_error)?;
        let (rows, cols) = pipeline.differencer.grid();
        let bs = pipeline.differencer.config().block_size;
        let expected = [1, rows * bs, cols * bs];
        if state.ref_acquired.shape() != expected || state.prev_output.shape() != expected {
            return Err(CoreError::ModelMismatch {
                reason: format!(
                    "stream state (acquired {:?}, output {:?}) does not match this \
                     session's acquired map {expected:?}",
                    state.ref_acquired.shape(),
                    state.prev_output.shape()
                ),
            });
        }
        // The reference scene must match the sensor, not just the acquired
        // map: two platforms can share an acquired shape while differing in
        // sensor resolution (CA window), and the gate indexes the scene.
        let (sensor_h, sensor_w) = (rows * bs * pipeline.window, cols * bs * pipeline.window);
        if state.ref_scene.height() != sensor_h || state.ref_scene.width() != sensor_w {
            return Err(CoreError::ModelMismatch {
                reason: format!(
                    "stream state's reference scene is {}x{} but this session's \
                     sensor is {sensor_h}x{sensor_w}",
                    state.ref_scene.height(),
                    state.ref_scene.width()
                ),
            });
        }
        pipeline.state = Some(state);
        self.continue_stream(frames)
    }

    /// The stream's temporal state after the last processed frame, or
    /// `None` before any stream frame ran. Capture it to later
    /// [`Session::resume_stream`] from the following frame.
    #[must_use]
    pub fn stream_state(&self) -> Option<StreamState> {
        self.stream.as_ref().and_then(|p| p.state.clone())
    }

    /// Drives the stream over `frames` with whatever state the pipeline
    /// currently holds.
    fn continue_stream<I>(&mut self, frames: I) -> Result<StreamReport>
    where
        I: IntoIterator,
        I::Item: Borrow<RgbFrame>,
    {
        let pipeline = self.stream.as_ref().ok_or_else(non_stream_error)?;
        let mut report = StreamReport::new(self.label.clone(), pipeline.differencer.blocks());
        let dense_latency = pipeline.perf_acquire.frame_latency + self.perf.frame_latency;
        let dense_energy = pipeline.perf_acquire.frame_energy + self.perf.frame_energy;
        let perf_acquire = self.tracer.is_some().then(|| pipeline.perf_acquire.clone());
        for frame in frames {
            let index = self.lowered.next_frame_index();
            let result = self.stream_frame(frame.borrow(), index);
            // One frame, one index — success or failure, however many
            // block tiles the gate actually computed.
            self.lowered.set_next_frame_index(index + 1);
            let frame = match result {
                Ok(frame) => frame,
                Err(err) => {
                    if let Some(tracer) = self.tracer.as_mut() {
                        let track = format!("session:{}", self.label);
                        tracer.sink.record(
                            TraceEvent::instant("frame", "frame-error", &track, tracer.now_ns)
                                .with_arg("frame", index),
                        );
                    }
                    return Err(err);
                }
            };
            if let Some(perf_acquire) = perf_acquire.as_ref() {
                self.trace_stream_frame(&frame, perf_acquire);
            }
            report.push(frame, dense_latency, dense_energy);
        }
        Ok(report)
    }

    /// Processes one stream frame: gate, per-block optical work through the
    /// cached plan, feedback reuse, and the frame's gated performance
    /// numbers.
    fn stream_frame(&mut self, scene: &RgbFrame, index: u64) -> Result<StreamFrame> {
        // Gate first: the delta decision only reads the raw scene (the CRC
        // comparators sit before the optical path), so a fully-skipped
        // frame never pays for acquisition at all.
        let mask = {
            let pipeline = self
                .stream
                .as_mut()
                .ok_or_else(|| CoreError::ModelMismatch {
                    reason: "stream frame submitted to a non-stream session".to_string(),
                })?;
            let (rows, cols) = pipeline.differencer.grid();
            let bs = pipeline.differencer.config().block_size;
            let window = pipeline.window;
            let (sensor_h, sensor_w) = (rows * bs * window, cols * bs * window);
            if scene.height() != sensor_h || scene.width() != sensor_w {
                return Err(CoreError::ModelMismatch {
                    reason: format!(
                        "stream frame is {}x{} but the platform sensor is \
                         {sensor_h}x{sensor_w}",
                        scene.height(),
                        scene.width()
                    ),
                });
            }
            let StreamPipeline {
                differencer, state, ..
            } = pipeline;
            differencer.gate(scene, state.as_ref().map(|s| &s.ref_scene))
        };
        // Acquire only when at least one block actually wakes the CA banks.
        let acquired = if mask.iter().any(|&compute| compute) {
            Some(self.acquire(scene)?)
        } else {
            None
        };
        let Self {
            lowered,
            stream,
            perf,
            ..
        } = self;
        let pipeline = stream.as_mut().ok_or_else(|| CoreError::ModelMismatch {
            reason: "stream frame submitted to a non-stream session".to_string(),
        })?;
        let (rows, cols) = pipeline.differencer.grid();
        let bs = pipeline.differencer.config().block_size;
        let (ah, aw) = (rows * bs, cols * bs);

        let mut state = match pipeline.state.take() {
            Some(state) => state,
            None => StreamState {
                ref_scene: scene.clone(),
                ref_acquired: acquired
                    .clone()
                    // The gate sees no reference scene on the first frame, so
                    // every block computes and an acquisition always ran.
                    // lightator: allow(no-unwrap)
                    .expect("the first frame of a stream computes every block"),
                prev_output: Tensor::zeros(&[1, ah, aw]),
            },
        };

        // Refresh the references of every computed block: the feedback path
        // of later frames replays the *last computed* values, and deltas are
        // measured against the last computed scene so sub-threshold drift
        // cannot accumulate unboundedly.
        for (block, &compute) in mask.iter().enumerate() {
            if !compute {
                continue;
            }
            let (br, bc) = (block / cols, block % cols);
            let acquired = acquired
                .as_ref()
                // `acquired` is only `None` when the mask has no computed
                // block, and this loop body runs only for computed blocks.
                // lightator: allow(no-unwrap)
                .expect("computed blocks imply an acquisition pass");
            copy_scene_block(&mut state.ref_scene, scene, br, bc, bs * pipeline.window)?;
            copy_tensor_block(&mut state.ref_acquired, acquired, aw, br, bc, bs);
        }

        // Gather the computed blocks' tiles into the plan's reusable tile
        // buffer and run them — however many there are — inside one frame's
        // noise stream, in row-major block order.
        let mut tiles = lowered.plan_mut().take_tiles();
        let mut used = 0usize;
        for (block, &compute) in mask.iter().enumerate() {
            if !compute {
                continue;
            }
            let (br, bc) = (block / cols, block % cols);
            if used < tiles.len() {
                gather_tile_into(
                    tiles[used].data_mut(),
                    &state.ref_acquired,
                    ah,
                    aw,
                    bs,
                    br,
                    bc,
                );
            } else {
                tiles.push(gather_tile(&state.ref_acquired, ah, aw, bs, br, bc)?);
            }
            used += 1;
        }
        tiles.truncate(used);
        let outputs = lowered.forward_frame_batch(&tiles);
        lowered.plan_mut().return_tiles(tiles);
        let outputs = outputs?;

        let mut output = state.prev_output.clone();
        let mut outputs = outputs.into_iter();
        for (block, &compute) in mask.iter().enumerate() {
            if !compute {
                continue;
            }
            // The tile batch was built from this same mask a few lines up,
            // so the output iterator yields exactly one tile per computed
            // block. lightator: allow(no-unwrap)
            let tile = outputs.next().expect("one output per computed tile");
            scatter_tile(&mut output, &tile, aw, bs, block / cols, block % cols);
        }

        let computed = mask.iter().filter(|&&c| c).count();
        let skipped = mask.len() - computed;
        let fraction = computed as f64 / mask.len() as f64;
        let duty = fraction + GATE_COST_FRACTION * (1.0 - fraction);
        let latency = (pipeline.perf_acquire.frame_latency + perf.frame_latency) * duty;
        let energy = (pipeline.perf_acquire.frame_energy + perf.frame_energy) * duty;

        let frame = StreamFrame {
            index,
            computed_blocks: computed,
            skipped_blocks: skipped,
            shape: vec![1, ah, aw],
            data: output.data().to_vec(),
            latency,
            energy,
        };
        state.prev_output = output;
        pipeline.state = Some(state);
        Ok(frame)
    }

    /// Adapts an iterator of frames into a streaming iterator of reports,
    /// processing one frame per `next()` call.
    pub fn process_iter<I>(&mut self, frames: I) -> ProcessIter<'_, I::IntoIter>
    where
        I: IntoIterator,
        I::Item: Borrow<RgbFrame>,
    {
        ProcessIter {
            session: self,
            frames: frames.into_iter(),
        }
    }

    /// Evaluates the classify workload's accuracy on a dataset split,
    /// through the photonic datapath and digitally for reference.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ModelMismatch`] for non-classify workloads and
    /// propagates photonic errors.
    pub fn evaluate(&mut self, dataset: &Dataset, limit: usize) -> Result<PhotonicAccuracy> {
        let Self {
            lowered, workload, ..
        } = self;
        match workload {
            Workload::Classify { model } => lowered.evaluate(model, dataset, limit),
            other => Err(CoreError::ModelMismatch {
                reason: format!(
                    "accuracy evaluation needs a classify workload, not `{}`",
                    other.label()
                ),
            }),
        }
    }
}

/// Streaming adapter returned by [`Session::process_iter`].
#[derive(Debug)]
pub struct ProcessIter<'s, I> {
    session: &'s mut Session,
    frames: I,
}

impl<I> Iterator for ProcessIter<'_, I>
where
    I: Iterator,
    I::Item: Borrow<RgbFrame>,
{
    type Item = Result<Report>;

    fn next(&mut self) -> Option<Self::Item> {
        let frame = self.frames.next()?;
        Some(self.session.run(frame.borrow()))
    }
}

/// What the frame entry points hand the lowered plan once the
/// workload-level checks passed (borrow-splits `self.workload` from
/// `self.lowered`).
enum FrameStep {
    Classify,
    Acquire,
    Kernel(&'static str),
}

fn non_stream_error() -> CoreError {
    CoreError::ModelMismatch {
        reason: "streaming needs a `Workload::VideoStream` session".to_string(),
    }
}

/// Copies one gate block (in sensor pixels) of `scene` into `target`.
fn copy_scene_block(
    target: &mut RgbFrame,
    scene: &RgbFrame,
    block_row: usize,
    block_col: usize,
    sensor_block: usize,
) -> Result<()> {
    for row in block_row * sensor_block..(block_row + 1) * sensor_block {
        for col in block_col * sensor_block..(block_col + 1) * sensor_block {
            target.set_pixel(row, col, scene.pixel(row, col)?)?;
        }
    }
    Ok(())
}

/// Copies one gate block (in acquired pixels) of `source` into `target`;
/// both are `[1, h, w]` tensors of width `width`.
fn copy_tensor_block(
    target: &mut Tensor,
    source: &Tensor,
    width: usize,
    block_row: usize,
    block_col: usize,
    block_size: usize,
) {
    for row in block_row * block_size..(block_row + 1) * block_size {
        let base = row * width + block_col * block_size;
        target.data_mut()[base..base + block_size]
            .copy_from_slice(&source.data()[base..base + block_size]);
    }
}

/// Writes a `block+halo` tile (`[1, bs+2, bs+2]`) of the acquired map into
/// `data`, zero-filling outside the frame — exactly the receptive field a
/// padded 3×3 convolution sees for that block.
fn gather_tile_into(
    data: &mut [f32],
    acquired: &Tensor,
    height: usize,
    width: usize,
    block_size: usize,
    block_row: usize,
    block_col: usize,
) {
    let edge = block_size + 2;
    data.fill(0.0);
    for tr in 0..edge {
        let row = block_row * block_size + tr;
        if row == 0 || row > height {
            continue; // above the first or below the last frame row
        }
        let row = row - 1;
        for tc in 0..edge {
            let col = block_col * block_size + tc;
            if col == 0 || col > width {
                continue;
            }
            data[tr * edge + tc] = acquired.data()[row * width + col - 1];
        }
    }
}

/// Extracts a fresh `block+halo` tile tensor from the acquired map (the
/// allocating fallback behind the plan's reusable tile buffer).
fn gather_tile(
    acquired: &Tensor,
    height: usize,
    width: usize,
    block_size: usize,
    block_row: usize,
    block_col: usize,
) -> Result<Tensor> {
    let edge = block_size + 2;
    let mut data = vec![0.0f32; edge * edge];
    gather_tile_into(
        &mut data, acquired, height, width, block_size, block_row, block_col,
    );
    Ok(Tensor::from_vec(data, &[1, edge, edge])?)
}

/// Writes a computed `[1, bs, bs]` tile back into the `[1, h, w]` output.
fn scatter_tile(
    output: &mut Tensor,
    tile: &Tensor,
    width: usize,
    block_size: usize,
    block_row: usize,
    block_col: usize,
) {
    for tr in 0..block_size {
        let base = (block_row * block_size + tr) * width + block_col * block_size;
        output.data_mut()[base..base + block_size]
            .copy_from_slice(&tile.data()[tr * block_size..(tr + 1) * block_size]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CaConfig;
    use crate::platform::{ImageKernel, Platform};
    use lightator_nn::layers::{Activation, Flatten, Linear};
    use lightator_nn::model::Sequential;
    use lightator_photonics::noise::NoiseConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_model(input: [usize; 3], classes: usize) -> Sequential {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model = Sequential::new(&input);
        model.push(Flatten::new());
        model.push(Linear::new(input.iter().product(), 12, &mut rng).expect("ok"));
        model.push(Activation::relu());
        model.push(Linear::new(12, classes, &mut rng).expect("ok"));
        model
    }

    fn small_platform(with_ca: bool, resolution: usize) -> Platform {
        let builder = Platform::builder()
            .sensor_resolution(resolution, resolution)
            .noise(NoiseConfig::ideal());
        let builder = if with_ca {
            builder.compressive_acquisition(CaConfig::default())
        } else {
            builder.without_compressive_acquisition()
        };
        builder.build().expect("valid platform")
    }

    #[test]
    fn acquisition_with_ca_halves_each_dimension() {
        let platform = small_platform(true, 8);
        assert_eq!(platform.acquired_shape(), [1, 4, 4]);
        let session = platform.session(Workload::Acquire).expect("session");
        let scene = RgbFrame::filled(8, 8, [0.4, 0.6, 0.2]).expect("ok");
        let tensor = session.acquire(&scene).expect("ok");
        assert_eq!(tensor.shape(), &[1, 4, 4]);
        assert!(session.uses_compressive_acquisition());
    }

    #[test]
    fn acquisition_without_ca_keeps_resolution() {
        let platform = small_platform(false, 8);
        let session = platform.session(Workload::Acquire).expect("session");
        let scene = RgbFrame::filled(8, 8, [0.4, 0.6, 0.2]).expect("ok");
        let tensor = session.acquire(&scene).expect("ok");
        assert_eq!(tensor.shape(), &[1, 8, 8]);
    }

    #[test]
    fn classify_run_reports_accuracy_and_perf_together() {
        let platform = small_platform(true, 8);
        let model = tiny_model([1, 4, 4], 3);
        let mut session = platform
            .session(Workload::Classify { model })
            .expect("session");
        let scene = RgbFrame::filled(8, 8, [0.9, 0.2, 0.1]).expect("ok");
        let report = session.run(&scene).expect("frame processed");
        assert!(report.class().expect("class") < 3);
        assert_eq!(report.logits().expect("logits").len(), 3);
        // The same report carries the perf side.
        assert!(report.latency().ns() > 0.0);
        assert!(report.max_power().watts() > 0.0);
        assert!(report.energy().joules() > 0.0);
        assert!(report.fps() > 0.0);
        assert!(report.kfps_per_watt() > 0.0);
    }

    #[test]
    fn mismatched_model_is_reported() {
        // A classify model that cannot ingest acquired frames still opens
        // (the evaluate path feeds dataset tensors directly); the mismatch
        // surfaces when a frame is actually run.
        let platform = small_platform(true, 8);
        let model = tiny_model([1, 8, 8], 3);
        let mut session = platform
            .session(Workload::Classify { model })
            .expect("session");
        let scene = RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("ok");
        assert!(matches!(
            session.run(&scene),
            Err(CoreError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn run_batch_matches_sequential_runs() {
        let scenes: Vec<RgbFrame> = (0..4)
            .map(|i| {
                RgbFrame::filled(8, 8, [0.2 + 0.1 * i as f64, 0.5, 0.9 - 0.2 * i as f64])
                    .expect("ok")
            })
            .collect();
        let platform = small_platform(true, 8);

        let mut sequential = platform
            .session(Workload::Classify {
                model: tiny_model([1, 4, 4], 3),
            })
            .expect("session");
        let expected: Vec<Report> = scenes
            .iter()
            .map(|s| sequential.run(s).expect("ok"))
            .collect();

        let mut batched = platform
            .session(Workload::Classify {
                model: tiny_model([1, 4, 4], 3),
            })
            .expect("session");
        let got = batched.run_batch(&scenes).expect("ok");
        assert_eq!(expected, got);
    }

    #[test]
    fn sessions_compile_their_plan_once_and_count_reuse() {
        // The tentpole contract: one encode at open, a cache hit per frame.
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform");
        let mut session = platform
            .session(Workload::ImageKernel {
                kernel: ImageKernel::SobelX,
            })
            .expect("session");
        assert_eq!(session.plan_stats().encodes, 1);
        assert_eq!(session.plan_stats().cache_hits, 0);
        let scene = RgbFrame::filled(8, 8, [0.3, 0.6, 0.9]).expect("ok");
        for _ in 0..3 {
            session.run(&scene).expect("ok");
        }
        session.run_batch(&vec![scene; 4]).expect("ok");
        let stats = session.plan_stats();
        assert_eq!(stats.encodes, 1, "steady state never re-encodes");
        assert_eq!(stats.cache_hits, 7, "3 runs + 4 batched frames");
        assert!(session.plan_reuse());
    }

    #[test]
    fn run_is_bit_identical_with_and_without_plan_reuse() {
        // Regression for the plan refactor: `Session::run` now goes through
        // the cached plan; it must reproduce the per-call-encode path bit
        // for bit, analog noise included.
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("noisy platform");
        let scenes: Vec<RgbFrame> = (0..3)
            .map(|i| RgbFrame::filled(8, 8, [0.1 + 0.25 * f64::from(i), 0.5, 0.8]).expect("ok"))
            .collect();
        for workload in [
            Workload::Classify {
                model: tiny_model([1, 4, 4], 3),
            },
            Workload::ImageKernel {
                kernel: ImageKernel::Laplacian,
            },
            Workload::Acquire,
        ] {
            let mut planned = platform.session(workload.clone()).expect("session");
            let mut unplanned = platform.session(workload).expect("session");
            unplanned.set_plan_reuse(false);
            assert!(!unplanned.plan_reuse());
            for scene in &scenes {
                assert_eq!(
                    planned.run(scene).expect("ok"),
                    unplanned.run(scene).expect("ok"),
                    "plan-cached run diverged from per-call encode"
                );
            }
            assert_eq!(unplanned.plan_stats().cache_hits, 0);
        }
    }

    #[test]
    fn empty_batch_returns_no_reports_and_leaves_the_session_untouched() {
        // Regression: `run_batch(&[])` used to hand the executor an empty
        // input list; it must early-return without touching any state.
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform with default (noisy) optics");
        let model = tiny_model([1, 4, 4], 3);
        let mut touched = platform
            .session(Workload::Classify {
                model: model.clone(),
            })
            .expect("session");
        assert_eq!(touched.run_batch(&[]).expect("empty batch"), Vec::new());
        assert_eq!(touched.next_frame_index(), 0, "frame index advanced");

        // The next frame behaves exactly as on a session that never saw the
        // empty batch — including its analog noise draw.
        let mut fresh = platform
            .session(Workload::Classify { model })
            .expect("session");
        let scene = RgbFrame::filled(8, 8, [0.3, 0.8, 0.5]).expect("ok");
        assert_eq!(
            touched.run(&scene).expect("ok"),
            fresh.run(&scene).expect("ok")
        );
    }

    #[test]
    fn failed_frames_still_consume_their_frame_index() {
        // A failed frame must not shift the noise stream of later frames:
        // the session behaves as if the slot was used, matching a serving
        // pool's per-ticket accounting.
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform");
        let workload = || Workload::Classify {
            model: tiny_model([1, 4, 4], 3),
        };
        let good = RgbFrame::filled(8, 8, [0.3, 0.8, 0.5]).expect("ok");
        let bad = RgbFrame::filled(6, 6, [0.5, 0.5, 0.5]).expect("ok");

        let mut with_error = platform.session(workload()).expect("session");
        assert!(with_error.run(&bad).is_err());
        assert_eq!(with_error.next_frame_index(), 1, "error skipped the slot");
        let after_error = with_error.run(&good).expect("ok");

        let mut seeked = platform.session(workload()).expect("session");
        seeked.seek_frame(1);
        assert_eq!(seeked.run(&good).expect("ok"), after_error);

        // Batches account the same way: a failed batch consumes one index
        // per scene.
        let mut batched = platform.session(workload()).expect("session");
        assert!(batched
            .run_batch(&[good.clone(), bad, good.clone()])
            .is_err());
        assert_eq!(batched.next_frame_index(), 3);
        assert_eq!(batched.run(&good).expect("ok"), {
            let mut reference = platform.session(workload()).expect("session");
            reference.seek_frame(3);
            reference.run(&good).expect("ok")
        });
    }

    #[test]
    fn seeked_sessions_reproduce_sequential_frames() {
        // With the paper's (noisy) optics: running frame i on a session
        // seeked to i matches the i-th frame of a sequential session.
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .build()
            .expect("platform");
        let scenes: Vec<RgbFrame> = (0..4)
            .map(|i| RgbFrame::filled(8, 8, [0.1 + 0.2 * f64::from(i), 0.4, 0.6]).expect("ok"))
            .collect();
        let workload = || Workload::Classify {
            model: tiny_model([1, 4, 4], 3),
        };
        let mut sequential = platform.session(workload()).expect("session");
        let expected: Vec<Report> = scenes
            .iter()
            .map(|s| sequential.run(s).expect("ok"))
            .collect();
        for (i, scene) in scenes.iter().enumerate() {
            let mut seeked = platform.session(workload()).expect("session");
            seeked.seek_frame(i as u64);
            assert_eq!(seeked.run(scene).expect("ok"), expected[i]);
        }
    }

    #[test]
    fn process_iter_streams_reports() {
        let platform = small_platform(true, 8);
        let mut session = platform.session(Workload::Acquire).expect("session");
        let scenes: Vec<RgbFrame> = (0..3)
            .map(|_| RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("ok"))
            .collect();
        let reports: Vec<Report> = session
            .process_iter(&scenes)
            .collect::<Result<_>>()
            .expect("ok");
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.workload == "acquire"));
    }

    #[test]
    fn image_kernels_filter_the_acquired_frame() {
        let platform = small_platform(true, 16);
        // A vertical edge: left half dark, right half bright.
        let mut data = Vec::new();
        for _row in 0..16 {
            for col in 0..16 {
                let v = if col < 8 { 0.1 } else { 0.9 };
                data.extend_from_slice(&[v, v, v]);
            }
        }
        let scene = RgbFrame::new(16, 16, data).expect("ok");
        let mut session = platform
            .session(Workload::ImageKernel {
                kernel: ImageKernel::SobelX,
            })
            .expect("session");
        let report = session.run(&scene).expect("ok");
        let (shape, values) = report.frame().expect("filtered frame");
        assert_eq!(shape, &[1, 8, 8]);
        // The response at the edge column dominates the flat regions.
        let max_mag = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let flat_mag = values[0].abs();
        assert!(max_mag > 5.0 * (flat_mag + 1e-6), "edge not detected");
        assert!(report.latency().ns() > 0.0);
    }

    #[test]
    fn identity_kernel_roughly_preserves_the_frame() {
        let platform = small_platform(true, 8);
        let scene = RgbFrame::filled(8, 8, [0.6, 0.6, 0.6]).expect("ok");
        let mut session = platform
            .session(Workload::ImageKernel {
                kernel: ImageKernel::Identity,
            })
            .expect("session");
        let acquired = session.acquire(&scene).expect("ok");
        let report = session.run(&scene).expect("ok");
        let (_, values) = report.frame().expect("filtered frame");
        for (a, b) in acquired.data().iter().zip(values) {
            assert!((a - b).abs() < 0.1, "identity drifted: {a} vs {b}");
        }
    }

    fn stream_workload(threshold: f64) -> Workload {
        Workload::VideoStream {
            kernel: ImageKernel::SobelX,
            stream: crate::stream::StreamConfig {
                block_size: 2,
                delta_threshold: threshold,
            },
        }
    }

    fn moving_scenes(count: usize) -> Vec<RgbFrame> {
        // A bright pixel hopping along the top row of a 16x16 scene: low
        // motion, so most 2x2 acquired blocks stay on the feedback path.
        (0..count)
            .map(|i| {
                let mut scene = RgbFrame::filled(16, 16, [0.2, 0.2, 0.2]).expect("ok");
                scene.set_pixel(0, i % 16, [0.9, 0.9, 0.9]).expect("ok");
                scene
            })
            .collect()
    }

    #[test]
    fn static_streams_skip_every_block_after_the_first_frame() {
        // Default (noisy) optics: skipping is a gating decision on the
        // deterministic scene, so noise cannot flip it.
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        let mut session = platform.session(stream_workload(0.05)).expect("session");
        let frames = vec![RgbFrame::filled(16, 16, [0.5, 0.5, 0.5]).expect("ok"); 4];
        let report = session.run_stream(&frames).expect("stream");
        assert_eq!(report.frames_processed(), 4);
        assert_eq!(report.frames[0].skipped_blocks, 0, "first frame is dense");
        for frame in &report.frames[1..] {
            assert_eq!(frame.computed_blocks, 0, "static frames must skip");
            assert_eq!(frame.data, report.frames[0].data, "feedback replays");
        }
        assert!(report.speedup_vs_dense() > 2.0);
        assert_eq!(session.next_frame_index(), 4);
    }

    #[test]
    fn zero_threshold_recomputes_every_block() {
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        let mut session = platform.session(stream_workload(0.0)).expect("session");
        let report = session.run_stream(moving_scenes(3)).expect("stream");
        assert_eq!(report.blocks_skipped(), 0);
        assert!((report.speedup_vs_dense() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_motion_streams_skip_most_blocks_and_track_dense_output() {
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .noise(NoiseConfig::ideal())
            .build()
            .expect("platform");
        let frames = moving_scenes(6);
        let mut gated = platform.session(stream_workload(0.05)).expect("session");
        let report = gated.run_stream(&frames).expect("stream");
        assert!(
            report.skip_ratio() > 0.5,
            "low motion must skip most blocks, got {:.2}",
            report.skip_ratio()
        );
        assert!(report.speedup_vs_dense() > 1.5);

        // With ideal optics, gated outputs match dense outputs wherever the
        // scene is temporally static (the gate is exact for zero delta).
        let mut dense = platform.session(stream_workload(0.0)).expect("session");
        let dense_report = dense.run_stream(&frames).expect("stream");
        for (g, d) in report.frames.iter().zip(&dense_report.frames) {
            let mismatch = g
                .data
                .iter()
                .zip(&d.data)
                .filter(|(a, b)| (**a - **b).abs() > 1e-6)
                .count();
            assert!(
                mismatch < g.data.len() / 4,
                "gated output diverged on {mismatch}/{} values",
                g.data.len()
            );
        }
    }

    #[test]
    fn stream_sessions_reject_the_frame_entry_points() {
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        let mut session = platform.session(stream_workload(0.05)).expect("session");
        let scene = RgbFrame::filled(16, 16, [0.5, 0.5, 0.5]).expect("ok");
        assert!(session.run(&scene).is_err());
        assert!(session.run_batch(&[scene]).is_err());
        assert_eq!(session.next_frame_index(), 0, "rejection consumes nothing");
        // And frame sessions reject the stream entry points.
        let mut acquire = platform.session(Workload::Acquire).expect("session");
        assert!(acquire.run_stream(moving_scenes(1)).is_err());
    }

    #[test]
    fn stream_frames_of_the_wrong_resolution_fail_but_consume_their_index() {
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        let mut session = platform.session(stream_workload(0.05)).expect("session");
        let bad = RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("ok");
        assert!(session.run_stream(&[bad]).is_err());
        assert_eq!(session.next_frame_index(), 1);
    }

    #[test]
    fn resumed_streams_reproduce_the_tail_of_a_full_run() {
        // Noise stays on: the tail replay must still be bit-exact.
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        let frames = moving_scenes(8);
        let split = 3usize;

        let mut full = platform.session(stream_workload(0.05)).expect("session");
        let full_report = full.run_stream(&frames).expect("stream");

        let mut prefix = platform.session(stream_workload(0.05)).expect("session");
        prefix.run_stream(&frames[..split]).expect("prefix");
        let state = prefix.stream_state().expect("state after the prefix");

        let mut tail = platform.session(stream_workload(0.05)).expect("session");
        tail.seek_frame(split as u64);
        let tail_report = tail
            .resume_stream(state, &frames[split..])
            .expect("tail replay");
        assert_eq!(
            tail_report.frames,
            full_report.frames[split..],
            "tail replay diverged from the full run"
        );
    }

    #[test]
    fn resume_rejects_mismatched_stream_state() {
        let platform16 = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        let platform32 = Platform::builder()
            .sensor_resolution(32, 32)
            .build()
            .expect("platform");
        let mut small = platform16.session(stream_workload(0.05)).expect("session");
        small.run_stream(moving_scenes(2)).expect("stream");
        let state = small.stream_state().expect("state");
        let mut large = platform32.session(stream_workload(0.05)).expect("session");
        assert!(large.resume_stream(state, moving_scenes(1)).is_err());
    }

    #[test]
    fn resume_rejects_state_whose_scene_matches_the_acquired_map_but_not_the_sensor() {
        // Both platforms acquire to a 16x16 map, but the sensors differ
        // (16x16 without CA vs 32x32 with 2x2 CA): the acquired-shape check
        // alone would accept the state and the gate would then index the
        // wrong-sized reference scene.
        let no_ca = Platform::builder()
            .sensor_resolution(16, 16)
            .without_compressive_acquisition()
            .build()
            .expect("platform");
        let with_ca = Platform::builder()
            .sensor_resolution(32, 32)
            .build()
            .expect("platform");
        let mut small = no_ca.session(stream_workload(0.05)).expect("session");
        small.run_stream(moving_scenes(2)).expect("stream");
        let state = small.stream_state().expect("state");
        let mut large = with_ca.session(stream_workload(0.05)).expect("session");
        let err = large
            .resume_stream(state, moving_scenes(1))
            .expect_err("sensor mismatch");
        assert!(err.to_string().contains("reference scene"));
    }

    #[test]
    fn fully_skipped_frames_do_not_touch_the_acquisition_path() {
        // A static stream after frame 0: the gate short-circuits before
        // acquisition, so outputs keep replaying the feedback path.
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform");
        let mut session = platform.session(stream_workload(0.05)).expect("session");
        let frames = vec![RgbFrame::filled(16, 16, [0.4, 0.4, 0.4]).expect("ok"); 3];
        let report = session.run_stream(&frames).expect("stream");
        assert_eq!(report.frames[1].computed_blocks, 0);
        assert_eq!(report.frames[2].data, report.frames[0].data);
    }

    #[test]
    fn stream_sessions_reject_indivisible_block_grids() {
        // 16x16 sensor with 2x2 CA acquires to 8x8; a block size of 3 does
        // not divide it.
        let err = Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform")
            .session(Workload::VideoStream {
                kernel: ImageKernel::Identity,
                stream: crate::stream::StreamConfig {
                    block_size: 3,
                    delta_threshold: 0.05,
                },
            })
            .expect_err("3 does not divide 8");
        assert!(err.to_string().contains("block size"));
    }

    #[test]
    fn evaluate_rejects_non_classify_workloads() {
        let platform = small_platform(true, 8);
        let mut session = platform.session(Workload::Acquire).expect("session");
        let mut rng = SmallRng::seed_from_u64(3);
        let dataset = lightator_nn::datasets::generate(
            "tiny",
            lightator_nn::datasets::SyntheticConfig::tiny(2),
            &mut rng,
        )
        .expect("dataset");
        assert!(session.evaluate(&dataset, 2).is_err());
    }
}
