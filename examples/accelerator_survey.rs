//! Accelerator survey: compare Lightator against the photonic baselines of
//! Table 1 and the electronic accelerators of Fig. 10 on power, efficiency
//! and execution time, with Lightator's numbers served by the `Platform`
//! facade.
//!
//! ```text
//! cargo run --example accelerator_survey
//! ```

use lightator_suite::baselines::electronic::ElectronicBaseline;
use lightator_suite::baselines::optical::OpticalBaseline;
use lightator_suite::core::platform::Platform;
use lightator_suite::core::CoreError;
use lightator_suite::nn::quant::{Precision, PrecisionSchedule};
use lightator_suite::nn::spec::NetworkSpec;

fn main() -> Result<(), CoreError> {
    let platform = Platform::paper()?;
    let lenet = NetworkSpec::lenet();
    let alexnet = NetworkSpec::alexnet();

    println!("Photonic accelerators (LeNet workload):");
    println!("{:<14} {:>14} {:>10}", "design", "max power (W)", "KFPS/W");
    for design in OpticalBaseline::table1_designs() {
        println!(
            "{:<14} {:>14.1} {:>10.1}",
            design.name(),
            design.max_power().watts(),
            design.kfps_per_watt(&lenet)
        );
    }
    for precision in [Precision::w4a4(), Precision::w3a4()] {
        let report = platform.simulate_with(&lenet, PrecisionSchedule::Uniform(precision))?;
        println!(
            "{:<14} {:>14.1} {:>10.1}",
            format!("Lightator {precision}"),
            report.max_power.watts(),
            report.kfps_per_watt()
        );
    }

    println!("\nElectronic accelerators (AlexNet workload):");
    println!("{:<14} {:>16}", "design", "exec time (ms)");
    let lightator_alexnet = platform
        .simulate_with(&alexnet, PrecisionSchedule::Uniform(Precision::w4a4()))?
        .frame_latency;
    for design in ElectronicBaseline::fig10_designs() {
        println!(
            "{:<14} {:>16.2}",
            design.name(),
            design.execution_time(&alexnet).ms()
        );
    }
    println!("{:<14} {:>16.2}", "Lightator", lightator_alexnet.ms());

    println!("\nLightator draws an order of magnitude less power than prior photonic designs");
    println!("(weights-only MR tuning, no activation DACs) and runs the CNNs several times");
    println!("faster than the electronic edge accelerators — the paper's Table 1 and Fig. 10.");
    Ok(())
}
