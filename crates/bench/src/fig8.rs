//! Figure 8: layer-wise power breakdown of LeNet on Lightator for the
//! \[4:4\], \[3:4\] and \[2:4\] weight:activation configurations.

use crate::harness::{platform, PRECISIONS};
use lightator_core::energy::ComponentPower;
use lightator_core::CoreError;
use lightator_nn::quant::PrecisionSchedule;
use lightator_nn::spec::NetworkSpec;
use serde::{Deserialize, Serialize};

/// One bar group of Fig. 8: a layer of LeNet under one precision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Precision label (`[4:4]`, `[3:4]`, `[2:4]`).
    pub precision: String,
    /// Layer label (`L1`..`L7`).
    pub layer: String,
    /// Layer kind (`conv`, `pool`, `fc`).
    pub kind: String,
    /// Per-component power in watts, in the order of
    /// [`ComponentPower::LABELS`].
    pub components_w: [f64; 6],
    /// Total layer power in watts.
    pub total_w: f64,
}

/// Generates the full Fig. 8 dataset: 7 LeNet layers × 3 precisions.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn generate() -> Result<Vec<Fig8Row>, CoreError> {
    let platform = platform()?;
    let network = NetworkSpec::lenet();
    let mut rows = Vec::new();
    for precision in PRECISIONS {
        let report = platform.simulate_with(&network, PrecisionSchedule::Uniform(precision))?;
        for layer in &report.layers {
            let values = layer.power.values();
            let mut components_w = [0.0; 6];
            for (slot, value) in components_w.iter_mut().zip(values.iter()) {
                *slot = value.watts();
            }
            rows.push(Fig8Row {
                precision: precision.to_string(),
                layer: format!("L{}", layer.index + 1),
                kind: layer.kind.clone(),
                components_w,
                total_w: layer.power.total().watts(),
            });
        }
    }
    Ok(rows)
}

/// Renders the dataset as the text table printed by the harness binary.
#[must_use]
pub fn render(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 8 — LeNet layer-wise power breakdown on Lightator (W)\n");
    out.push_str(&format!(
        "{:<8} {:<5} {:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "config", "layer", "kind", "ADCs", "DACs", "DMVA", "TUN", "BPD", "Misc.", "total"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<8} {:<5} {:<6} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e}\n",
            row.precision,
            row.layer,
            row.kind,
            row.components_w[0],
            row.components_w[1],
            row.components_w[2],
            row.components_w[3],
            row.components_w[4],
            row.components_w[5],
            row.total_w,
        ));
    }
    let _ = ComponentPower::LABELS;
    out
}

/// Average power-efficiency gain of dropping the weight precision from
/// \[4:4\] to \[2:4\] across the LeNet layers (the paper reports ~2.4×).
#[must_use]
pub fn average_efficiency_gain(rows: &[Fig8Row]) -> f64 {
    let total = |label: &str| -> f64 {
        rows.iter()
            .filter(|r| r.precision == label)
            .map(|r| r.total_w)
            .sum()
    };
    let p44 = total("[4:4]");
    let p24 = total("[2:4]");
    if p24 == 0.0 {
        return 0.0;
    }
    p44 / p24
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_seven_layers_per_precision() {
        let rows = generate().expect("ok");
        assert_eq!(rows.len(), 21);
        for label in ["[4:4]", "[3:4]", "[2:4]"] {
            assert_eq!(rows.iter().filter(|r| r.precision == label).count(), 7);
        }
    }

    #[test]
    fn totals_match_component_sums() {
        for row in generate().expect("ok") {
            let sum: f64 = row.components_w.iter().sum();
            assert!((sum - row.total_w).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_precision_reduces_every_layers_power() {
        let rows = generate().expect("ok");
        for layer_idx in 0..7 {
            let layer = format!("L{}", layer_idx + 1);
            let get = |label: &str| {
                rows.iter()
                    .find(|r| r.precision == label && r.layer == layer)
                    .map(|r| r.total_w)
                    .expect("row exists")
            };
            assert!(get("[4:4]") >= get("[3:4]"));
            assert!(get("[3:4]") >= get("[2:4]"));
        }
    }

    #[test]
    fn efficiency_gain_is_in_the_papers_ballpark() {
        let rows = generate().expect("ok");
        let gain = average_efficiency_gain(&rows);
        assert!(gain > 1.5 && gain < 5.0, "gain {gain}");
    }

    #[test]
    fn render_contains_every_layer() {
        let rows = generate().expect("ok");
        let text = render(&rows);
        for l in 1..=7 {
            assert!(text.contains(&format!("L{l}")));
        }
    }
}
