//! Typed workloads and the optical image kernels — what a [`Session`]
//! (see [`crate::platform::session`]) can be opened for.
//!
//! A [`Workload`] is the *source* program of the facade's
//! acquire → compile → execute pipeline: opening a session lowers it into a
//! [`crate::plan::CompiledPlan`] (the pre-encoded MR weight bank and CA
//! operator) which every later execution reuses.
//!
//! [`Session`]: crate::platform::Session

use crate::error::{CoreError, Result};
use lightator_nn::layers::LayerNode;
use lightator_nn::model::Sequential;
use lightator_nn::spec::{NetworkSpec, NetworkSpecBuilder};
use serde::{Deserialize, Serialize};

use crate::stream::StreamConfig;

/// The typed workloads a [`Session`](crate::platform::Session) can serve —
/// the paper's "versatile image processing" surface.
#[derive(Debug, Clone)]
pub enum Workload {
    /// DNN inference: classify acquired frames with a trained model.
    Classify {
        /// The trained (and typically weight-quantized) model.
        model: Sequential,
    },
    /// Acquisition only: raw ADC-less readout, or the CA-compressed map when
    /// the platform enables compressive acquisition.
    Acquire,
    /// A classic 3×3 image-processing kernel executed on the optical core.
    ImageKernel {
        /// The filter to apply.
        kernel: ImageKernel,
    },
    /// A continuous video stream filtered by a 3×3 kernel under the
    /// frame-delta gate: blocks whose scene delta stays below the
    /// configured threshold ride the DMVA feedback path instead of waking
    /// the optical core. Served through
    /// [`Session::run_stream`](crate::platform::Session::run_stream).
    VideoStream {
        /// The filter applied to every (recomputed) block.
        kernel: ImageKernel,
        /// Block grid and delta threshold of the temporal gate.
        stream: StreamConfig,
    },
}

impl Workload {
    /// Short label used in reports and performance specs.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Workload::Classify { .. } => "classify".to_string(),
            Workload::Acquire => "acquire".to_string(),
            Workload::ImageKernel { kernel } => format!("kernel:{}", kernel.name()),
            Workload::VideoStream { kernel, .. } => format!("stream:{}", kernel.name()),
        }
    }
}

/// The 3×3 image-processing kernels the optical core serves directly
/// (weights in MR transmissions, one stride per arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImageKernel {
    /// Pass-through (useful for calibration).
    Identity,
    /// 3×3 box blur.
    BoxBlur,
    /// 3×3 Gaussian blur.
    GaussianBlur,
    /// Sharpening filter.
    Sharpen,
    /// Horizontal Sobel edge detector.
    SobelX,
    /// Vertical Sobel edge detector.
    SobelY,
    /// Laplacian edge detector.
    Laplacian,
}

impl ImageKernel {
    /// Every supported kernel.
    pub const ALL: [ImageKernel; 7] = [
        ImageKernel::Identity,
        ImageKernel::BoxBlur,
        ImageKernel::GaussianBlur,
        ImageKernel::Sharpen,
        ImageKernel::SobelX,
        ImageKernel::SobelY,
        ImageKernel::Laplacian,
    ];

    /// Human-readable kernel name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ImageKernel::Identity => "identity",
            ImageKernel::BoxBlur => "box-blur",
            ImageKernel::GaussianBlur => "gaussian-blur",
            ImageKernel::Sharpen => "sharpen",
            ImageKernel::SobelX => "sobel-x",
            ImageKernel::SobelY => "sobel-y",
            ImageKernel::Laplacian => "laplacian",
        }
    }

    /// Row-major 3×3 coefficients, as programmed into one bank arm.
    #[must_use]
    pub fn coefficients(&self) -> [f32; 9] {
        match self {
            ImageKernel::Identity => [0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            ImageKernel::BoxBlur => [1.0 / 9.0; 9],
            ImageKernel::GaussianBlur => {
                let mut k = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
                for v in &mut k {
                    *v /= 16.0;
                }
                k
            }
            ImageKernel::Sharpen => [0.0, -1.0, 0.0, -1.0, 5.0, -1.0, 0.0, -1.0, 0.0],
            ImageKernel::SobelX => [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],
            ImageKernel::SobelY => [-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0],
            ImageKernel::Laplacian => [0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0],
        }
    }
}

/// Derives the architecture-simulator spec of a trained [`Sequential`]
/// model, so one session reports accuracy and performance from one place.
pub(crate) fn network_spec_of(model: &Sequential, name: &str) -> Result<NetworkSpec> {
    let shape = model.input_shape();
    let input: [usize; 3] = match *shape {
        [c, h, w] => [c, h, w],
        [h, w] => [1, h, w],
        [n] => [1, 1, n],
        _ => {
            return Err(CoreError::ModelMismatch {
                reason: format!(
                    "cannot derive a performance spec for a model with input shape {shape:?}"
                ),
            })
        }
    };
    let mut builder = NetworkSpecBuilder::new(name, input);
    for layer in model.layers() {
        builder = match layer {
            LayerNode::Conv2d(conv) => builder
                .conv(
                    conv.out_channels(),
                    conv.kernel(),
                    conv.stride(),
                    conv.padding(),
                )
                .map_err(CoreError::from)?,
            LayerNode::Linear(linear) => builder
                .linear(linear.out_features())
                .map_err(CoreError::from)?,
            LayerNode::MaxPool2d(pool) => builder
                .pool(pool.window(), false)
                .map_err(CoreError::from)?,
            LayerNode::AvgPool2d(pool) => {
                builder.pool(pool.window(), true).map_err(CoreError::from)?
            }
            LayerNode::Activation(_) | LayerNode::Flatten(_) => builder,
        };
    }
    Ok(builder.build())
}
