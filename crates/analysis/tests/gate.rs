//! End-to-end tests of the `lint_workspace` gate: the binary must pass the
//! real workspace and fail the seeded-violation fixture, and the shipped
//! `analysis.cfg` must stay in lockstep with the built-in rule table.

use std::path::{Path, PathBuf};
use std::process::Command;

use lightator_analysis::rules::{AnalysisConfig, Rule};
use lightator_analysis::scan::scan_workspace;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded")
}

fn lint_workspace_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lint_workspace"))
}

#[test]
fn gate_passes_the_real_workspace() {
    let output = lint_workspace_bin()
        .args(["--gate", "--no-emit", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run lint_workspace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "gate failed on the real workspace:\n{stdout}"
    );
    assert!(
        stdout.contains("files scanned"),
        "missing summary:\n{stdout}"
    );
}

#[test]
fn gate_fails_the_seeded_fixture_and_names_the_rules() {
    let output = lint_workspace_bin()
        .args(["--gate", "--no-emit", "--root"])
        .arg(fixture_root())
        .output()
        .expect("run lint_workspace");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !output.status.success(),
        "gate must fail on seeded violations:\n{stdout}"
    );
    for rule in Rule::ALL {
        assert!(
            stdout.contains(rule.name()),
            "fixture should trip {}:\n{stdout}",
            rule.name()
        );
    }
    assert!(stdout.contains("gate FAILED"), "missing verdict:\n{stdout}");
    // The suppressed expect is reported but does not count against the gate.
    assert!(
        stdout.contains("(suppressed)"),
        "missing suppression:\n{stdout}"
    );
}

#[test]
fn workspace_self_check_has_no_unsuppressed_findings() {
    let config = AnalysisConfig::default();
    let report = scan_workspace(&workspace_root(), &config).expect("scan");
    assert!(report.files_scanned > 50, "scan looks truncated");
    let unsuppressed = report.unsuppressed();
    assert!(
        unsuppressed.is_empty(),
        "workspace has unsuppressed findings:\n{}",
        unsuppressed
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every suppression in the tree documents a real invariant; the count
    // can move, but a sudden explosion means the escape hatch is abused.
    let suppressed = report.findings.len() - unsuppressed.len();
    assert!(
        suppressed <= 40,
        "suppression count {suppressed} grew past the review threshold"
    );
}

#[test]
fn shipped_analysis_cfg_matches_the_builtin_table() {
    let path = workspace_root().join("analysis.cfg");
    let text = std::fs::read_to_string(&path).expect("read analysis.cfg");
    let parsed = AnalysisConfig::from_text(&text).expect("parse analysis.cfg");
    assert_eq!(parsed, AnalysisConfig::default());
    assert_eq!(text, AnalysisConfig::default().to_text());
}

#[test]
fn fixture_scan_counts_one_finding_per_seeded_site() {
    let report = scan_workspace(&fixture_root(), &AnalysisConfig::default()).expect("scan");
    assert_eq!(report.files_scanned, 1);
    let by_rule = |rule: Rule| {
        report
            .findings
            .iter()
            .filter(|f| f.rule == rule && !f.suppressed)
            .count()
    };
    assert_eq!(by_rule(Rule::NoWallClock), 1);
    assert_eq!(by_rule(Rule::NoHashCollections), 1);
    assert_eq!(by_rule(Rule::NoUnseededRng), 1);
    assert_eq!(by_rule(Rule::NoUnsafe), 1);
    assert_eq!(by_rule(Rule::NoUnwrap), 1);
    assert_eq!(report.findings.iter().filter(|f| f.suppressed).count(), 1);
}

#[test]
fn artifact_is_written_and_validates() {
    let dir = std::env::temp_dir().join(format!("lightator-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let output = lint_workspace_bin()
        .args(["--root"])
        .arg(fixture_root())
        .env("LIGHTATOR_BENCH_DIR", &dir)
        .output()
        .expect("run lint_workspace");
    assert!(
        output.status.success(),
        "without --gate findings don't fail"
    );
    let artifact = dir.join("BENCH_lint_workspace.json");
    let json = std::fs::read_to_string(&artifact).expect("artifact written");
    let metrics = lightator_bench::emit::validate(&json).expect("artifact parses");
    assert!(metrics.iter().any(|m| m == "findings_unsuppressed"));
    assert!(json.contains("\"rule\": \"no-wall-clock\""));
    std::fs::remove_dir_all(&dir).ok();
}
