//! Tracing overhead: a session with a [`TraceRecorder`] attached must stay
//! within **5%** of the untraced simulation throughput.
//!
//! The recorder is a lock-cheap ring buffer and every event is computed
//! from numbers the executor already has (stage latencies and energies of
//! the compiled plan), so attaching it should be close to free. This bench
//! measures frames simulated per wall-clock second on the 32×32 Sobel
//! kernel workload — the plan-cached hot path where fixed per-frame costs
//! show up most — with the recorder attached vs detached, interleaved so
//! both paths see the same machine state, asserts the median overhead is
//! ≤ 5%, and emits `BENCH_telemetry_overhead.json`.
//!
//! Smoke mode (`LIGHTATOR_BENCH_SMOKE=1`, used by the CI bench-smoke step)
//! runs one short round — enough to exercise the harness and validate the
//! emitted JSON without asserting the ratio on noisy shared runners.
//!
//! [`TraceRecorder`]: lightator_telemetry::TraceRecorder

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lightator_bench::emit::{self, BenchMetric};
use lightator_core::platform::{ImageKernel, Platform, Session, Workload};
use lightator_photonics::noise::NoiseConfig;
use lightator_sensor::frame::RgbFrame;
use lightator_telemetry::TraceRecorder;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const SENSOR: usize = 32;

/// The optical 3×3 filter on a 32×32 sensor with ideal noise: the cheapest
/// per-frame simulation in the workspace, i.e. the worst case for any
/// fixed per-frame tracing cost.
fn kernel_session() -> Session {
    Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .noise(NoiseConfig::ideal())
        .build()
        .expect("platform")
        .session(Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        })
        .expect("session")
}

fn scene() -> RgbFrame {
    let mut rng = SmallRng::seed_from_u64(41);
    let data: Vec<f64> = (0..SENSOR * SENSOR * 3).map(|_| rng.gen::<f64>()).collect();
    RgbFrame::new(SENSOR, SENSOR, data).expect("frame")
}

/// Frames per wall-clock second for `reps` runs of the closure.
fn throughput(reps: usize, mut run: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..reps {
        run();
    }
    reps as f64 / start.elapsed().as_secs_f64()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let smoke = std::env::var("LIGHTATOR_BENCH_SMOKE").is_ok();
    let frame = scene();

    // Criterion-visible timings.
    let mut detached = kernel_session();
    c.bench_function("telemetry_overhead/kernel_detached", |b| {
        b.iter(|| black_box(detached.run(&frame).expect("run")));
    });
    let mut attached = kernel_session();
    let recorder = Arc::new(TraceRecorder::new());
    attached.attach_recorder(recorder.clone());
    c.bench_function("telemetry_overhead/kernel_attached", |b| {
        b.iter(|| black_box(attached.run(&frame).expect("run")));
    });

    // Headline measurement: interleaved rounds, median ratio.
    let rounds = if smoke { 2 } else { 7 };
    let reps = if smoke { 50 } else { 400 };
    black_box(detached.run(&frame).expect("warm-up"));
    black_box(attached.run(&frame).expect("warm-up"));
    let mut ratios = Vec::new();
    let mut detached_fps = 0.0f64;
    let mut events_per_frame = 0.0f64;
    for _ in 0..rounds {
        let detached_tp = throughput(reps, || {
            black_box(detached.run(&frame).expect("run"));
        });
        // Keep the ring from wrapping between rounds so every round pays
        // the same (non-evicting) recording cost.
        recorder.clear();
        let before = recorder.recorded();
        let attached_tp = throughput(reps, || {
            black_box(attached.run(&frame).expect("run"));
        });
        events_per_frame = (recorder.recorded() - before) as f64 / reps as f64;
        detached_fps = detached_fps.max(detached_tp);
        ratios.push(attached_tp / detached_tp);
    }
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite ratios"));
    let median_ratio = ratios[ratios.len() / 2];
    let overhead_pct = (1.0 - median_ratio) * 100.0;

    println!(
        "traced kernel simulation throughput vs untraced: {median_ratio:.3}x \
         ({overhead_pct:+.2}% overhead, budget 5%)"
    );

    let path = emit::emit(
        "telemetry_overhead",
        &[
            BenchMetric::new("attached_over_detached_throughput", median_ratio, "x"),
            BenchMetric::new("overhead_pct", overhead_pct, "%"),
            BenchMetric::new(
                "detached_kernel_sim_throughput",
                detached_fps,
                "frames simulated per wall-clock second",
            ),
            BenchMetric::new("events_per_frame", events_per_frame, "events"),
        ],
    )
    .expect("BENCH_telemetry_overhead.json written and validated");
    println!("wrote {}", path.display());

    assert!(
        smoke || median_ratio >= 0.95,
        "tracing must cost <= 5% simulation throughput, measured \
         {median_ratio:.3}x (overhead {overhead_pct:.2}%)"
    );
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
