//! Workspace-wiring smoke test: instantiates one public type from each of
//! the seven member crates *through the `lightator_suite` re-exports*, so
//! any future manifest regression (a dropped `path` dependency, a renamed
//! crate, a broken re-export) fails loudly here rather than deep inside an
//! integration test.

use lightator_suite::baselines::electronic::ElectronicBaseline;
use lightator_suite::bench::harness;
use lightator_suite::core::config::LightatorConfig;
use lightator_suite::nn::spec::NetworkSpec;
use lightator_suite::photonics::units::Wavelength;
use lightator_suite::sensor::frame::RgbFrame;
use lightator_suite::serve::ServeConfig;

/// One value of one public type per crate, reached only via the umbrella.
#[test]
fn every_crate_is_reachable_through_the_umbrella() {
    // lightator-photonics
    let lambda = Wavelength::from_nm(1550.0);
    assert!((lambda.nm() - 1550.0).abs() < 1e-9);

    // lightator-sensor
    let frame = RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("valid frame");
    assert_eq!((frame.width(), frame.height()), (8, 8));

    // lightator-nn
    let lenet = NetworkSpec::lenet();
    assert!(lenet.total_macs() > 0);

    // lightator-core
    let config = LightatorConfig::paper();
    assert_eq!(config.geometry.mrs_per_arm, 9);

    // lightator-baselines
    let eyeriss = ElectronicBaseline::eyeriss();
    assert!(eyeriss.execution_time(&lenet).ms() > 0.0);

    // lightator-bench
    let variants = harness::lightator_variants();
    assert!(!variants.is_empty(), "paper precision variants missing");

    // lightator-serve
    let serve = ServeConfig::default();
    assert_eq!(
        ServeConfig::from_text(&serve.to_text()).expect("round-trip"),
        serve
    );
}

/// The umbrella's module aliases stay aligned with the underlying crate
/// names (`lightator_suite::core` really is `lightator_core`, etc.).
#[test]
fn umbrella_aliases_point_at_the_member_crates() {
    // Same type through both paths: compiles only if the re-export is the
    // genuine crate rather than a shadowing module.
    let via_suite: lightator_suite::core::config::LightatorConfig = LightatorConfig::paper();
    let sim = harness::simulator().expect("bench harness builds its simulator");
    let report = sim
        .simulate(
            &NetworkSpec::lenet(),
            lightator_suite::nn::quant::PrecisionSchedule::Uniform(
                lightator_suite::nn::quant::Precision::w4a4(),
            ),
        )
        .expect("simulation runs");
    assert!(report.kfps_per_watt() > 0.0);
    assert_eq!(via_suite.geometry.mrs_per_arm, 9);
}

/// The facade types are re-exported at the top of the umbrella, so the
/// quickstart path is one `use` away.
#[test]
fn facade_is_reachable_from_the_umbrella_root() {
    let platform: lightator_suite::Platform = lightator_suite::Platform::builder()
        .sensor_resolution(8, 8)
        .build()
        .expect("platform");
    let mut session = platform
        .session(lightator_suite::Workload::Acquire)
        .expect("session");
    let report = session
        .run(&RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("scene"))
        .expect("run");
    assert_eq!(report.workload, "acquire");
}

/// The serving layer is one `use` away too: a pooled server built on the
/// facade serves a frame end to end through the umbrella re-exports.
#[test]
fn serving_is_reachable_from_the_umbrella_root() {
    let platform = lightator_suite::Platform::builder()
        .sensor_resolution(8, 8)
        .build()
        .expect("platform");
    let server = lightator_suite::Server::builder(platform)
        .shards(2)
        .workload(lightator_suite::Workload::Acquire)
        .build()
        .expect("server");
    let report = server
        .run(lightator_suite::Request::Acquire {
            frame: RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("scene"),
        })
        .expect("served");
    assert_eq!(report.workload, "acquire");
    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 1);
}
