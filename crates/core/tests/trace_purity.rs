//! Observational purity of tracing: attaching a [`TraceRecorder`] to a
//! session must not change a single output bit, even with analog noise on.
//!
//! Every property runs the same proptest-generated frames through two
//! sessions opened on the same platform — one with a recorder attached,
//! one without — and asserts the full [`Report`] / `StreamReport` values
//! compare equal (f64 equality, i.e. bit-exact for non-NaN outputs). The
//! platform keeps the **default analog noise** so the noisy execution path
//! is the one being compared, and each property also asserts the recorder
//! actually captured events, so the purity check can never pass vacuously.
//!
//! [`TraceRecorder`]: lightator_telemetry::TraceRecorder
//! [`Report`]: lightator_core::platform::Report

use lightator_core::ca::CaConfig;
use lightator_core::platform::{ImageKernel, Platform, Workload};
use lightator_core::stream::StreamConfig;
use lightator_nn::layers::{Activation, Flatten, Linear};
use lightator_nn::model::Sequential;
use lightator_sensor::frame::RgbFrame;
use lightator_telemetry::TraceRecorder;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const SENSOR: usize = 8;

/// An 8x8 platform with compressive acquisition and the default (noisy)
/// analog model: purity must hold on the path that draws noise.
fn platform() -> Platform {
    Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .compressive_acquisition(CaConfig::default())
        .build()
        .expect("platform")
}

fn classifier() -> Sequential {
    let mut rng = SmallRng::seed_from_u64(5);
    // 2x2 compressive acquisition halves the 8x8 sensor to [1, 4, 4].
    let mut model = Sequential::new(&[1, 4, 4]);
    model.push(Flatten::new());
    model.push(Linear::new(16, 24, &mut rng).expect("linear"));
    model.push(Activation::relu());
    model.push(Linear::new(24, 4, &mut rng).expect("linear"));
    model
}

fn scenes(seed: u64, count: usize) -> Vec<RgbFrame> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let data: Vec<f64> = (0..SENSOR * SENSOR * 3).map(|_| rng.gen::<f64>()).collect();
            RgbFrame::new(SENSOR, SENSOR, data).expect("frame")
        })
        .collect()
}

/// Runs `frames` through a plain and a traced session of `workload` and
/// asserts bit-exact reports plus a non-empty trace.
fn assert_frame_workload_pure(workload: Workload, frames: &[RgbFrame]) {
    let platform = platform();
    let mut plain = platform.session(workload.clone()).expect("plain session");
    let mut traced = platform.session(workload).expect("traced session");
    let recorder = Arc::new(TraceRecorder::new());
    traced.attach_recorder(recorder.clone());

    // Single-frame path.
    for frame in frames {
        let expected = plain.run(frame).expect("plain run");
        let observed = traced.run(frame).expect("traced run");
        assert_eq!(expected, observed);
    }
    // Batched path (shares the plan cache, replays the same noise order).
    let expected = plain.run_batch(frames).expect("plain run_batch");
    let observed = traced.run_batch(frames).expect("traced run_batch");
    assert_eq!(expected, observed);

    assert!(
        recorder.recorded() > 0,
        "the traced session must actually emit events"
    );
}

proptest! {
    /// Acquire: raw CA readout is identical with and without a recorder.
    #[test]
    fn acquire_is_pure_under_tracing(seed in 0u64..1 << 32, count in 1usize..4) {
        assert_frame_workload_pure(Workload::Acquire, &scenes(seed, count));
    }

    /// Image kernel: the optical 3x3 filter path is identical.
    #[test]
    fn image_kernel_is_pure_under_tracing(seed in 0u64..1 << 32, count in 1usize..4) {
        assert_frame_workload_pure(
            Workload::ImageKernel { kernel: ImageKernel::SobelX },
            &scenes(seed, count),
        );
    }

    /// Classify: full DNN inference (CA + MAC rows + activations) is
    /// identical, including the classification outputs.
    #[test]
    fn classify_is_pure_under_tracing(seed in 0u64..1 << 32, count in 1usize..3) {
        assert_frame_workload_pure(
            Workload::Classify { model: classifier() },
            &scenes(seed, count),
        );
    }

    /// Video stream: the delta-gated streaming path — including gate
    /// decisions, duty-scaled energy and the per-frame records — is
    /// identical with and without a recorder.
    #[test]
    fn video_stream_is_pure_under_tracing(seed in 0u64..1 << 32, count in 2usize..5) {
        let workload = Workload::VideoStream {
            kernel: ImageKernel::SobelX,
            stream: StreamConfig { block_size: 2, delta_threshold: 0.05 },
        };
        // Append a repeat of every frame so the delta gate exercises both
        // the recompute and the skip branch.
        let mut frames = scenes(seed, count);
        frames.extend(frames.clone());

        let platform = platform();
        let mut plain = platform.session(workload.clone()).expect("plain session");
        let mut traced = platform.session(workload).expect("traced session");
        let recorder = Arc::new(TraceRecorder::new());
        traced.attach_recorder(recorder.clone());

        let expected = plain.run_stream(&frames).expect("plain run_stream");
        let observed = traced.run_stream(&frames).expect("traced run_stream");
        prop_assert_eq!(expected, observed);
        prop_assert!(recorder.recorded() > 0);
    }

    /// Detaching mid-run is equally invisible: trace the first half of a
    /// batch only, and the outputs still match an untraced session.
    #[test]
    fn detach_mid_run_is_pure(seed in 0u64..1 << 32, count in 3usize..6) {
        let frames = scenes(seed, count);
        let platform = platform();
        let mut plain = platform.session(Workload::Acquire).expect("plain session");
        let mut traced = platform.session(Workload::Acquire).expect("traced session");
        let recorder = Arc::new(TraceRecorder::new());
        traced.attach_recorder(recorder.clone());
        for (i, frame) in frames.iter().enumerate() {
            if i == 2 {
                prop_assert!(traced.detach_recorder().is_some());
            }
            let expected = plain.run(frame).expect("plain run");
            let observed = traced.run(frame).expect("traced run");
            prop_assert_eq!(expected, observed);
        }
        prop_assert!(recorder.recorded() > 0);
        prop_assert!(!traced.has_recorder());
    }
}
