//! Optical core: MVM banks, the summation tree and the photonic MAC unit.
//!
//! The functional behaviour of every bank arm is identical (same ring design,
//! same WDM grid), so functional inference reuses one [`OpticalArm`] per
//! execution context and models the two-stage electronic summation tree that
//! combines partial sums of long dot products (paper Figs. 5 and 6).

use crate::config::OcGeometry;
use crate::error::{CoreError, Result};
use lightator_photonics::arm::{ArmConfig, OpticalArm};
use lightator_photonics::microring::MicroringConfig;
use lightator_photonics::noise::NoiseConfig;
use lightator_photonics::units::Power;
use serde::{Deserialize, Serialize};

/// A photonic dot-product engine of arbitrary length.
///
/// Long dot products are segmented into arm-sized (9-MAC) chunks; each chunk
/// is evaluated optically on an [`OpticalArm`] and the partial results are
/// accumulated electronically, exactly as the bank summation tree does.
///
/// ```
/// use lightator_core::oc::PhotonicMacUnit;
/// use lightator_photonics::noise::NoiseConfig;
///
/// # fn main() -> Result<(), lightator_core::CoreError> {
/// let mut unit = PhotonicMacUnit::new(NoiseConfig::ideal(), 42)?;
/// let value = unit.dot(&[0.5, -0.5, 0.25], &[1.0, 1.0, 0.5])?;
/// assert!((value - 0.125).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PhotonicMacUnit {
    arm: OpticalArm,
    seed: u64,
    segments_evaluated: u64,
}

impl PhotonicMacUnit {
    /// Creates a MAC unit with the paper's 9-MR arm and a deterministic seed
    /// for the analog noise processes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Photonics`] if the arm configuration is invalid.
    pub fn new(noise: NoiseConfig, seed: u64) -> Result<Self> {
        Self::with_arm_config(
            ArmConfig {
                channels: 9,
                ring: MicroringConfig::default(),
                noise,
            },
            seed,
        )
    }

    /// Creates a MAC unit with an explicit arm configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Photonics`] if the arm configuration is invalid.
    pub fn with_arm_config(config: ArmConfig, seed: u64) -> Result<Self> {
        let mut arm = OpticalArm::new(config)?;
        // A fresh unit sits at the frame-0 stream.
        arm.begin_frame(seed, 0);
        Ok(Self {
            arm,
            seed,
            segments_evaluated: 0,
        })
    }

    /// Rewinds the analog-noise stream to the start of frame `index`.
    ///
    /// Every draw of frame `index` is a pure function of
    /// `(seed, index, channel, element)` — see
    /// [`lightator_photonics::noise::CounterRng`] — so the noise a frame
    /// sees depends only on its global position in the frame sequence, not
    /// on which executor (or which shard of a serving pool) happens to
    /// evaluate it. This is what lets batched, pooled and worker-tiled
    /// execution reproduce sequential runs bit for bit.
    pub fn begin_frame(&mut self, index: u64) {
        self.arm.begin_frame(self.seed, index);
    }

    /// The MAC-call cursor within the current frame's noise stream (see
    /// [`lightator_photonics::arm::OpticalArm::mac_cursor`]).
    #[must_use]
    pub fn mac_cursor(&self) -> u64 {
        self.arm.mac_cursor()
    }

    /// Repositions the MAC-call cursor within the current frame's noise
    /// stream. With keyed draws the cursor fully determines the noise each
    /// call sees, so a clone of this unit positioned at cursor `n`
    /// reproduces the `n`-th sequential MAC call bit for bit — the hook the
    /// executor's parallel tiling is built on.
    pub fn set_mac_cursor(&mut self, cursor: u64) {
        self.arm.set_mac_cursor(cursor);
    }

    /// Adds externally evaluated segments (e.g. from worker clones of this
    /// unit) to the segment counter.
    pub(crate) fn add_segments_evaluated(&mut self, segments: u64) {
        self.segments_evaluated += segments;
    }

    /// Number of arm-sized segments evaluated so far (one per optical wave).
    #[must_use]
    pub fn segments_evaluated(&self) -> u64 {
        self.segments_evaluated
    }

    /// Number of MAC elements one segment carries.
    #[must_use]
    pub fn segment_length(&self) -> usize {
        self.arm.channels()
    }

    /// Programs one arm-sized weight row onto the MRs for weight-stationary
    /// streaming: the row stays loaded across subsequent
    /// [`PhotonicMacUnit::mac_loaded`] calls, which is how a bank serves all
    /// strides of one output channel (and, in a batch, all frames) with a
    /// single DAC programming pass.
    ///
    /// Weight programming is deterministic (analog noise is drawn during the
    /// MAC itself), so hoisting it out of the stride loop does not change any
    /// result — it only removes redundant tuning work.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Photonics`] if the row is longer than the arm or
    /// a weight is outside `[-1, 1]`.
    pub fn load_row(&mut self, weights: &[f64]) -> Result<()> {
        self.arm.load_weights(weights)?;
        Ok(())
    }

    /// Evaluates one MAC against the row programmed by
    /// [`PhotonicMacUnit::load_row`], advancing the analog-noise stream
    /// exactly as one segment of [`PhotonicMacUnit::dot`] would.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Photonics`] for activations outside `[0, 1]` or
    /// longer than the arm.
    pub fn mac_loaded(&mut self, activations: &[f64]) -> Result<f64> {
        let out = self.arm.mac(activations)?;
        self.segments_evaluated += 1;
        Ok(out.value)
    }

    /// Evaluates `Σ wᵢ·aᵢ` photonically.
    ///
    /// Weights must lie in `[-1, 1]` and activations in `[0, 1]` (the
    /// caller — the photonic executor — normalises and de-normalises around
    /// this primitive).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Nn`]-free: length mismatches between the two slices are
    ///   reported as [`CoreError::Photonics`] length errors.
    pub fn dot(&mut self, weights: &[f64], activations: &[f64]) -> Result<f64> {
        if weights.len() != activations.len() {
            return Err(CoreError::Photonics(
                lightator_photonics::PhotonicsError::LengthMismatch {
                    expected: weights.len(),
                    actual: activations.len(),
                },
            ));
        }
        let segment = self.arm.channels();
        let mut total = 0.0;
        for (w_chunk, a_chunk) in weights.chunks(segment).zip(activations.chunks(segment)) {
            self.arm.load_weights(w_chunk)?;
            let out = self.arm.mac(a_chunk)?;
            total += out.value;
            self.segments_evaluated += 1;
        }
        Ok(total)
    }
}

/// Structural model of one MVM bank (arms + summation tree), used for power
/// accounting and for demonstrating the Fig. 6 mapping configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MvmBank {
    /// Arms in the bank.
    pub arms: usize,
    /// MRs per arm.
    pub mrs_per_arm: usize,
}

impl MvmBank {
    /// Creates a bank description.
    #[must_use]
    pub fn new(arms: usize, mrs_per_arm: usize) -> Self {
        Self { arms, mrs_per_arm }
    }

    /// Total MRs in the bank.
    #[must_use]
    pub fn mrs(&self) -> usize {
        self.arms * self.mrs_per_arm
    }

    /// Maximum concurrent strides for a kernel of `kernel²` weights.
    #[must_use]
    pub fn strides_for_kernel(&self, kernel: usize) -> usize {
        let needed = (kernel * kernel).div_ceil(self.mrs_per_arm).max(1);
        self.arms / needed
    }
}

/// Aggregated optical core: geometry plus the per-device power hooks needed
/// by the energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpticalCore {
    geometry: OcGeometry,
}

impl OpticalCore {
    /// Creates an optical core for a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid geometry.
    pub fn new(geometry: OcGeometry) -> Result<Self> {
        geometry.validate()?;
        Ok(Self { geometry })
    }

    /// The geometry.
    #[must_use]
    pub fn geometry(&self) -> &OcGeometry {
        &self.geometry
    }

    /// One bank of this core.
    #[must_use]
    pub fn bank(&self) -> MvmBank {
        MvmBank::new(self.geometry.arms_per_bank, self.geometry.mrs_per_arm)
    }

    /// Peak MR tuning power when `active_mrs` rings hold weights.
    #[must_use]
    pub fn tuning_power(&self, active_mrs: usize, per_mr: Power) -> Power {
        per_mr * active_mrs.min(self.geometry.mrs()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_unit_matches_exact_dot_product_for_short_vectors() {
        let mut unit = PhotonicMacUnit::new(NoiseConfig::ideal(), 1).expect("ok");
        let w = [0.5, -0.25, 0.75];
        let a = [1.0, 0.5, 0.25];
        let exact: f64 = w.iter().zip(a).map(|(w, a)| w * a).sum();
        let value = unit.dot(&w, &a).expect("ok");
        assert!((value - exact).abs() < 0.05, "{value} vs {exact}");
        assert_eq!(unit.segments_evaluated(), 1);
    }

    #[test]
    fn mac_unit_segments_long_vectors() {
        let mut unit = PhotonicMacUnit::new(NoiseConfig::ideal(), 2).expect("ok");
        let w: Vec<f64> = (0..25).map(|i| (f64::from(i % 5) - 2.0) / 4.0).collect();
        let a: Vec<f64> = (0..25).map(|i| f64::from(i % 3) / 2.0).collect();
        let exact: f64 = w.iter().zip(&a).map(|(w, a)| w * a).sum();
        let value = unit.dot(&w, &a).expect("ok");
        // ceil(25 / 9) = 3 segments, like a 5x5 kernel in Fig. 6(b).
        assert_eq!(unit.segments_evaluated(), 3);
        assert!((value - exact).abs() < 0.15, "{value} vs {exact}");
    }

    #[test]
    fn mac_unit_rejects_mismatched_lengths() {
        let mut unit = PhotonicMacUnit::new(NoiseConfig::ideal(), 3).expect("ok");
        assert!(unit.dot(&[0.1, 0.2], &[0.5]).is_err());
    }

    #[test]
    fn noisy_mac_unit_is_reproducible_per_seed() {
        let w = [0.4, -0.3, 0.2, 0.7, -0.9, 0.1, 0.0, 0.5, -0.5];
        let a = [0.9, 0.1, 0.4, 0.6, 0.3, 0.8, 0.2, 0.5, 0.7];
        let mut unit_a = PhotonicMacUnit::new(NoiseConfig::default(), 99).expect("ok");
        let mut unit_b = PhotonicMacUnit::new(NoiseConfig::default(), 99).expect("ok");
        assert_eq!(
            unit_a.dot(&w, &a).expect("ok"),
            unit_b.dot(&w, &a).expect("ok")
        );
    }

    #[test]
    fn begin_frame_rewinds_the_noise_stream() {
        let w = [0.4, -0.3, 0.2, 0.7, -0.9, 0.1, 0.0, 0.5, -0.5];
        let a = [0.9, 0.1, 0.4, 0.6, 0.3, 0.8, 0.2, 0.5, 0.7];
        let mut unit = PhotonicMacUnit::new(NoiseConfig::default(), 99).expect("ok");
        // A fresh unit sits at the frame-0 stream.
        let first = unit.dot(&w, &a).expect("ok");
        let moved_on = unit.dot(&w, &a).expect("ok");
        assert_ne!(
            first, moved_on,
            "noise stream should advance within a frame"
        );
        unit.begin_frame(0);
        assert_eq!(unit.dot(&w, &a).expect("ok"), first);
        // Distinct frames see distinct (but per-index reproducible) streams.
        unit.begin_frame(3);
        let frame3 = unit.dot(&w, &a).expect("ok");
        assert_ne!(frame3, first);
        unit.begin_frame(3);
        assert_eq!(unit.dot(&w, &a).expect("ok"), frame3);
    }

    #[test]
    fn mac_cursor_replays_any_segment_position() {
        let w = [0.4, -0.3, 0.2, 0.7, -0.9, 0.1, 0.0, 0.5, -0.5];
        let a = [0.9, 0.1, 0.4, 0.6, 0.3, 0.8, 0.2, 0.5, 0.7];
        let mut unit = PhotonicMacUnit::new(NoiseConfig::default(), 17).expect("ok");
        unit.begin_frame(2);
        let sequential: Vec<f64> = (0..4).map(|_| unit.dot(&w, &a).expect("ok")).collect();
        assert_eq!(unit.mac_cursor(), 4);
        // A clone repositioned at any cursor reproduces that call's bits.
        for (cursor, expected) in sequential.iter().enumerate() {
            let mut replay = PhotonicMacUnit::new(NoiseConfig::default(), 17).expect("ok");
            replay.begin_frame(2);
            replay.set_mac_cursor(cursor as u64);
            assert_eq!(
                replay.dot(&w, &a).expect("ok").to_bits(),
                expected.to_bits()
            );
        }
    }

    #[test]
    fn bank_stride_counts_match_figure_six() {
        let bank = MvmBank::new(6, 9);
        assert_eq!(bank.mrs(), 54);
        assert_eq!(bank.strides_for_kernel(3), 6);
        assert_eq!(bank.strides_for_kernel(5), 2);
        assert_eq!(bank.strides_for_kernel(7), 1);
    }

    #[test]
    fn optical_core_tuning_power_saturates_at_capacity() {
        let core = OpticalCore::new(OcGeometry::paper()).expect("ok");
        let per_mr = Power::from_mw(0.1);
        let at_capacity = core.tuning_power(5184, per_mr);
        let beyond = core.tuning_power(10_000, per_mr);
        assert_eq!(at_capacity, beyond);
        assert!((at_capacity.mw() - 518.4).abs() < 1e-9);
    }
}
