//! Property-based tests for the quantized DNN stack.

use lightator_nn::layers::{Activation, ActivationKind, AvgPool2d, Conv2d, Linear};
use lightator_nn::quant::{
    quantization_rmse, quantize_symmetric, quantize_tensor_symmetric, quantize_unsigned, Precision,
    PrecisionSchedule,
};
use lightator_nn::spec::NetworkSpec;
use lightator_nn::tensor::Tensor;
use lightator_nn::train::softmax;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Symmetric quantization never increases magnitude beyond the scale and
    /// is idempotent (quantizing twice equals quantizing once).
    #[test]
    fn symmetric_quantization_idempotent(value in -10.0f32..10.0, bits in 2u8..8) {
        let scale = 5.0;
        let q1 = quantize_symmetric(value, scale, bits);
        let q2 = quantize_symmetric(q1, scale, bits);
        prop_assert!(q1.abs() <= scale + 1e-6);
        prop_assert!((q1 - q2).abs() < 1e-6);
    }

    /// Quantization error is bounded by half a step of the quantization grid.
    #[test]
    fn quantization_error_bounded(value in -1.0f32..1.0, bits in 2u8..8) {
        let scale = 1.0;
        let q = quantize_symmetric(value, scale, bits);
        let q_max = ((1u32 << (bits - 1)) - 1) as f32;
        let step = scale / q_max;
        prop_assert!((q - value).abs() <= step / 2.0 + 1e-6);
    }

    /// Unsigned quantization stays within [0, scale].
    #[test]
    fn unsigned_quantization_bounded(value in -2.0f32..4.0, bits in 1u8..8) {
        let q = quantize_unsigned(value, 2.0, bits);
        prop_assert!((0.0..=2.0 + 1e-6).contains(&q));
    }

    /// Per-tensor RMSE is bounded by half the quantization step at every
    /// bit-width (strict per-bit monotonicity does not hold in general
    /// because individual values may land exactly on a coarser grid).
    #[test]
    fn rmse_bounded_by_half_step(values in proptest::collection::vec(-1.0f32..1.0, 8..64)) {
        let t = Tensor::from_vec(values.clone(), &[values.len()]).unwrap();
        let scale = f64::from(t.max_abs());
        for bits in 2u8..=6 {
            let e = quantization_rmse(&t, bits);
            let step = scale / f64::from((1u32 << (bits - 1)) - 1);
            prop_assert!(e <= step / 2.0 + 1e-9, "bits {bits}: rmse {e} step {step}");
        }
        // The coarsest and finest grids still order correctly.
        prop_assert!(quantization_rmse(&t, 6) <= quantization_rmse(&t, 2) + 1e-9);
    }

    /// Tensor quantization preserves signs.
    #[test]
    fn quantization_preserves_sign(values in proptest::collection::vec(-1.0f32..1.0, 4..32)) {
        let len = values.len();
        let t = Tensor::from_vec(values, &[len]).unwrap();
        let (q, _) = quantize_tensor_symmetric(&t, 4);
        for (&orig, &quant) in t.data().iter().zip(q.data()) {
            if quant != 0.0 {
                prop_assert!(orig.signum() == quant.signum());
            }
        }
    }

    /// Softmax always produces a probability distribution.
    #[test]
    fn softmax_distribution(values in proptest::collection::vec(-20.0f32..20.0, 2..16)) {
        let t = Tensor::from_vec(values.clone(), &[values.len()]).unwrap();
        let p = softmax(&t);
        prop_assert!((p.sum() - 1.0).abs() < 1e-4);
        prop_assert!(p.data().iter().all(|&x| x >= 0.0));
        // Softmax preserves the argmax.
        prop_assert_eq!(p.argmax(), t.argmax());
    }

    /// ReLU/Tanh/Sign keep their mathematical ranges for any input.
    #[test]
    fn activation_ranges(x in -50.0f32..50.0) {
        prop_assert!(ActivationKind::Relu.apply(x) >= 0.0);
        prop_assert!(ActivationKind::Tanh.apply(x).abs() <= 1.0);
        let s = ActivationKind::Sign.apply(x);
        prop_assert!(s == 1.0 || s == -1.0);
    }

    /// Convolution MAC counts scale linearly with the number of filters.
    #[test]
    fn conv_macs_scale_with_filters(filters in 1usize..16) {
        let mut rng = SmallRng::seed_from_u64(1);
        let one = Conv2d::new(2, 1, 3, 1, 1, &mut rng).unwrap();
        let many = Conv2d::new(2, filters, 3, 1, 1, &mut rng).unwrap();
        let base = one.mac_count(&[2, 8, 8]).unwrap();
        prop_assert_eq!(many.mac_count(&[2, 8, 8]).unwrap(), base * filters);
    }

    /// A mixed-precision schedule never assigns more weight bits to later
    /// layers than the uniform schedule it degrades to.
    #[test]
    fn mixed_schedule_consistent(layer in 0usize..12) {
        let mx = PrecisionSchedule::Mixed { first: Precision::w4a4(), rest: Precision::w2a4() };
        let p = mx.for_layer(layer);
        if layer == 0 {
            prop_assert_eq!(p.weight_bits, 4);
        } else {
            prop_assert_eq!(p.weight_bits, 2);
        }
        prop_assert_eq!(p.activation_bits, 4);
    }

    /// Average pooling of a constant feature map returns the same constant.
    #[test]
    fn avg_pool_constant_invariant(value in 0.0f32..1.0) {
        let mut pool = AvgPool2d::new(2).unwrap();
        let x = Tensor::full(&[2, 4, 4], value);
        let y = pool.forward(&x).unwrap();
        prop_assert!(y.data().iter().all(|&v| (v - value).abs() < 1e-6));
    }

    /// Linear layers are, in fact, linear: f(ax) = a f(x) when the bias is
    /// zero.
    #[test]
    fn linear_layer_homogeneous(alpha in 0.1f32..3.0) {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut layer = Linear::new(6, 4, &mut rng).unwrap();
        layer.bias_mut().data_mut().fill(0.0);
        let x = Tensor::from_vec((0..6).map(|i| i as f32 / 6.0).collect(), &[6]).unwrap();
        let y1 = layer.forward(&x).unwrap();
        let y2 = layer.forward(&x.scaled(alpha)).unwrap();
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a * alpha - b).abs() < 1e-4);
        }
    }

    /// Activation layers never change tensor shapes.
    #[test]
    fn activations_preserve_shape(len in 1usize..64) {
        let mut act = Activation::relu();
        let x = Tensor::zeros(&[len]);
        let y = act.forward(&x);
        prop_assert_eq!(y.shape(), &[len]);
    }
}

#[test]
fn network_specs_macs_are_strictly_ordered_by_size() {
    // Structural sanity across the topology zoo: LeNet < VGG9 < AlexNet < VGG16.
    let lenet = NetworkSpec::lenet().total_macs();
    let vgg9 = NetworkSpec::vgg9(10).total_macs();
    let alexnet = NetworkSpec::alexnet().total_macs();
    let vgg16 = NetworkSpec::vgg16().total_macs();
    assert!(lenet < vgg9);
    assert!(vgg9 < alexnet);
    assert!(alexnet < vgg16);
}
