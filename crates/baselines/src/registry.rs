//! The backend registry: every comparison point of the paper's evaluation
//! as a [`Backend`], plus the Table-1 / Fig-10 row descriptions that turn
//! the bench harness into thin loops.
//!
//! Three backend families are registered:
//!
//! * [`photonic_variants`] — the five Lightator precision variants of
//!   Table 1 (`photonic:w4a4` … `photonic:mx-w2a4`), built on
//!   [`PhotonicBackend::with_schedule`];
//! * [`electronic_references`] — the four Fig-10 electronic designs and
//!   the GPU baseline as executable [`ElectronicReference`] backends;
//! * [`roofline_backends`] — the five Table-1 photonic baselines as
//!   analytical [`RooflineBackend`]s.
//!
//! [`table1_registry`] and [`fig10_registry`] describe the two headline
//! comparisons as data: each entry names the backend plus the row policy
//! (process node, which network the power column is measured on, which
//! columns the original paper leaves unreported), so the bench harness
//! iterates entries instead of hand-looping per baseline family.

use std::sync::Arc;

use lightator_core::backend::{Backend, PhotonicBackend};
use lightator_nn::quant::{Precision, PrecisionSchedule};
use lightator_nn::spec::NetworkSpec;

use crate::electronic::ElectronicBaseline;
use crate::optical::OpticalBaseline;
use crate::reference::ElectronicReference;
use crate::roofline::RooflineBackend;

/// The five Lightator precision variants of Table 1: three uniform
/// schedules and two mixed (first layer at `[4:4]`, the rest lower).
///
/// Names match the harness labels exactly (`"Lightator [4:4]"`,
/// `"Lightator-MX [4:4][3:4]"`, ...); ids are `photonic:w4a4`,
/// `photonic:mx-w3a4`, and so on.
#[must_use]
pub fn photonic_variants() -> Vec<PhotonicBackend> {
    let uniform = [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()]
        .into_iter()
        .map(|p| {
            let schedule = PrecisionSchedule::Uniform(p);
            PhotonicBackend::with_schedule(
                format!("photonic:w{}a{}", p.weight_bits, p.activation_bits),
                format!("Lightator {}", schedule.label()),
                schedule,
            )
        });
    let mixed = [Precision::w3a4(), Precision::w2a4()]
        .into_iter()
        .map(|rest| {
            let schedule = PrecisionSchedule::Mixed {
                first: Precision::w4a4(),
                rest,
            };
            PhotonicBackend::with_schedule(
                format!("photonic:mx-w{}a{}", rest.weight_bits, rest.activation_bits),
                format!("Lightator-MX {}", schedule.label()),
                schedule,
            )
        });
    uniform.chain(mixed).collect()
}

/// The executable electronic reference backends: the four Fig-10 edge
/// accelerators plus the GPU baseline.
#[must_use]
pub fn electronic_references() -> Vec<ElectronicReference> {
    ElectronicBaseline::fig10_designs()
        .into_iter()
        .chain(std::iter::once(ElectronicBaseline::gpu_rtx3060ti()))
        .map(ElectronicReference::new)
        .collect()
}

/// The analytical roofline backends: the five Table-1 photonic baselines.
#[must_use]
pub fn roofline_backends() -> Vec<RooflineBackend> {
    OpticalBaseline::table1_designs()
        .into_iter()
        .map(RooflineBackend::new)
        .collect()
}

/// Every non-default backend of the evaluation, ready for
/// [`PlatformBuilder::register_backend`](lightator_core::platform::PlatformBuilder::register_backend):
/// the five Lightator variants, five electronic references and five
/// rooflines.
#[must_use]
pub fn all_backends() -> Vec<Arc<dyn Backend>> {
    let mut backends: Vec<Arc<dyn Backend>> = Vec::new();
    backends.extend(
        photonic_variants()
            .into_iter()
            .map(|b| Arc::new(b) as Arc<dyn Backend>),
    );
    backends.extend(
        electronic_references()
            .into_iter()
            .map(|b| Arc::new(b) as Arc<dyn Backend>),
    );
    backends.extend(
        roofline_backends()
            .into_iter()
            .map(|b| Arc::new(b) as Arc<dyn Backend>),
    );
    backends
}

/// One row description of the Table-1 performance comparison.
#[derive(Debug, Clone)]
pub struct Table1Entry {
    /// Row label (`"LightBulb [1:1]"`, `"Lightator-MX [4:4][3:4]"`, ...).
    pub label: String,
    /// The backend whose performance report fills the row.
    pub backend: Arc<dyn Backend>,
    /// Process node in nm, when the original paper reports one.
    pub node_nm: Option<u32>,
    /// Table 1 reports each design's power on the VGG9/CIFAR workload
    /// while the KFPS/W figure of merit runs the MNIST-class network. For
    /// the Lightator rows this is `Some((schedule, vgg9))`: the power
    /// column is the platform peak under that schedule on that network.
    /// `None` takes the power straight from the backend's performance
    /// report (network-independent for the analytical models).
    pub power_basis: Option<(PrecisionSchedule, NetworkSpec)>,
    /// Whether the power column is printed (HQNNA's is unreported).
    pub reports_power: bool,
    /// Whether the KFPS/W column is printed (the GPU row's is not).
    pub reports_throughput: bool,
}

/// The eleven rows of the Table-1 performance comparison in paper order:
/// the GPU baseline, the five photonic rooflines, the five Lightator
/// variants.
#[must_use]
pub fn table1_registry() -> Vec<Table1Entry> {
    let mut entries = Vec::new();

    // GPU baseline row (the paper reports only its power and accuracy).
    entries.push(Table1Entry {
        label: "baseline GPU [32:32]".to_string(),
        backend: Arc::new(ElectronicReference::new(ElectronicBaseline::gpu_rtx3060ti())),
        node_nm: Some(8),
        power_basis: None,
        reports_power: true,
        reports_throughput: false,
    });

    // Photonic baselines as analytical rooflines.
    for design in OpticalBaseline::table1_designs() {
        let p = design.precision();
        entries.push(Table1Entry {
            label: format!(
                "{} [{}:{}]",
                design.name(),
                p.weight_bits,
                p.activation_bits
            ),
            node_nm: design.process_node_nm(),
            // The original paper does not report HQNNA's power.
            reports_power: design.name() != "HQNNA",
            reports_throughput: true,
            power_basis: None,
            backend: Arc::new(RooflineBackend::new(design)),
        });
    }

    // Lightator variants: power measured as the platform peak on the
    // VGG9/CIFAR workload (Table 1 discussion, observations 1 and 5).
    let vgg9 = NetworkSpec::vgg9(100);
    for variant in photonic_variants() {
        // Every photonic variant is constructed with_schedule(), so the
        // label always parses. lightator: allow(no-unwrap)
        let schedule = variant.schedule().expect("table-1 variants pin a schedule");
        entries.push(Table1Entry {
            label: variant.name(),
            backend: Arc::new(variant),
            node_nm: Some(45),
            power_basis: Some((schedule, vgg9.clone())),
            reports_power: true,
            reports_throughput: true,
        });
    }
    entries
}

/// One accelerator of the Fig-10 execution-time comparison.
#[derive(Debug, Clone)]
pub struct Fig10Entry {
    /// Accelerator label as plotted (`"Eyeriss"`, ..., `"Lightator"`).
    pub label: String,
    /// The backend whose performance report provides the execution times.
    pub backend: Arc<dyn Backend>,
    /// The VGG-class network this design runs (YodaNN substitutes VGG13
    /// for VGG16, as in the paper).
    pub vgg: NetworkSpec,
}

impl Fig10Entry {
    /// Whether this entry is an electronic design (the speed-up rows of
    /// the figure are Lightator over each electronic accelerator).
    #[must_use]
    pub fn is_electronic(&self) -> bool {
        self.backend.id().as_str().starts_with("electronic:")
    }
}

/// The five accelerators of Fig. 10 in figure order: the four electronic
/// designs, then Lightator at the paper's `[4:4]` operating point.
#[must_use]
pub fn fig10_registry() -> Vec<Fig10Entry> {
    let vgg16 = NetworkSpec::vgg16();
    let vgg13 = NetworkSpec::vgg13();
    let mut entries: Vec<Fig10Entry> = ElectronicBaseline::fig10_designs()
        .into_iter()
        .map(|design| Fig10Entry {
            label: design.name().to_string(),
            vgg: if design.name() == "YodaNN" {
                vgg13.clone()
            } else {
                vgg16.clone()
            },
            backend: Arc::new(ElectronicReference::new(design)),
        })
        .collect();
    entries.push(Fig10Entry {
        label: "Lightator".to_string(),
        backend: Arc::new(PhotonicBackend::with_schedule(
            "photonic:w4a4",
            "Lightator [4:4]",
            PrecisionSchedule::Uniform(Precision::w4a4()),
        )),
        vgg: vgg16,
    });
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn photonic_variant_names_match_the_table() {
        let names: Vec<String> = photonic_variants().iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            [
                "Lightator [4:4]",
                "Lightator [3:4]",
                "Lightator [2:4]",
                "Lightator-MX [4:4][3:4]",
                "Lightator-MX [4:4][2:4]",
            ]
        );
    }

    #[test]
    fn all_backend_ids_are_unique() {
        let backends = all_backends();
        assert_eq!(backends.len(), 15);
        let ids: BTreeSet<String> = backends
            .iter()
            .map(|b| b.id().as_str().to_string())
            .collect();
        assert_eq!(ids.len(), backends.len());
    }

    #[test]
    fn table1_registry_lists_eleven_rows_in_paper_order() {
        let entries = table1_registry();
        assert_eq!(entries.len(), 11);
        assert_eq!(entries[0].label, "baseline GPU [32:32]");
        assert!(!entries[0].reports_throughput);
        assert_eq!(entries[1].label, "LightBulb [1:1]");
        let hqnna = entries.iter().find(|e| e.label.contains("HQNNA")).unwrap();
        assert!(!hqnna.reports_power);
        assert!(hqnna.reports_throughput);
        // Every Lightator row measures power on the VGG9 workload.
        for entry in entries.iter().filter(|e| e.label.starts_with("Lightator")) {
            let (_, network) = entry.power_basis.as_ref().expect("power basis");
            assert_eq!(network.name(), NetworkSpec::vgg9(100).name());
            assert_eq!(entry.node_nm, Some(45));
        }
    }

    #[test]
    fn fig10_registry_substitutes_vgg13_for_yodann() {
        let entries = fig10_registry();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries.iter().filter(|e| e.is_electronic()).count(), 4);
        let yodann = entries.iter().find(|e| e.label == "YodaNN").unwrap();
        assert_eq!(yodann.vgg.name(), "VGG13");
        assert_eq!(entries[4].label, "Lightator");
        assert!(!entries[4].is_electronic());
    }
}
