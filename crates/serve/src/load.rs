//! Deterministic open-loop soak harness.
//!
//! Closed-loop benchmarks (clients that wait for a response before
//! submitting again) self-throttle: when the server slows down, the
//! offered load slows down with it, which hides queueing collapse. This
//! module generates *open-loop* traffic instead — arrivals follow a
//! seeded stochastic schedule on the **simulated** clock, independent of
//! how fast the server drains them — and drives it through
//! [`Server::submit_at`]. The same `(seed, config)` pair always produces
//! the same arrival timestamps, the same request kinds, and the same
//! priority lanes, so soak results are reproducible bit-for-bit across
//! hosts and thread schedules.
//!
//! The harness never waits on responses (the [`Pending`](crate::Pending)
//! handles are dropped on admission and drained by
//! [`Server::shutdown`]); its own tallies count *offered* traffic, and
//! the server's [`MetricsSnapshot`](crate::MetricsSnapshot) counts what
//! was admitted, served, and dropped. Under the open-loop accounting
//! contract, `offered == admitted + dropped` exactly.

use lightator_core::platform::ImageKernel;
use lightator_sensor::frame::RgbFrame;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::{Result, ServeError};
use crate::request::{Priority, Request};
use crate::server::Server;

/// Nanoseconds per second, as the float used for rate conversions.
const NS_PER_SEC: f64 = 1e9;

/// The stochastic process generating inter-arrival gaps on the simulated
/// clock. Both variants sample exponential gaps from a seeded generator,
/// so the schedule is a deterministic function of the soak seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate: gaps are
    /// exponentially distributed with mean `1 / mean_qps` seconds.
    Poisson {
        /// Mean offered load, requests per simulated second.
        mean_qps: f64,
    },
    /// Square-wave load: every `cycle` requests, the first `burst_len`
    /// arrive at `burst_qps` and the remainder at `calm_qps` (each phase
    /// still sampling exponential gaps). Models diurnal or flash-crowd
    /// traffic without losing determinism.
    Bursty {
        /// Offered load outside bursts, requests per simulated second.
        calm_qps: f64,
        /// Offered load inside bursts, requests per simulated second.
        burst_qps: f64,
        /// Requests per calm+burst cycle.
        cycle: u64,
        /// Requests at `burst_qps` at the start of each cycle
        /// (`burst_len <= cycle`).
        burst_len: u64,
    },
}

impl ArrivalProcess {
    /// The mean rate in effect for request number `index` (0-based).
    fn rate_qps(&self, index: u64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_qps } => mean_qps,
            ArrivalProcess::Bursty {
                calm_qps,
                burst_qps,
                cycle,
                burst_len,
            } => {
                if index % cycle.max(1) < burst_len {
                    burst_qps
                } else {
                    calm_qps
                }
            }
        }
    }

    /// Samples the simulated-time gap (ns) before request `index`.
    /// Exponential via inversion: `-ln(1 - u) / rate`, with `u` in
    /// `[0, 1)` so the argument of `ln` never reaches zero. Gaps are
    /// rounded up to at least 1 ns so arrival timestamps are strictly
    /// increasing.
    fn next_gap_ns(&self, index: u64, rng: &mut SmallRng) -> u64 {
        let rate = self.rate_qps(index);
        let u: f64 = rng.gen();
        let gap_s = -(1.0 - u).ln() / rate;
        ((gap_s * NS_PER_SEC).ceil() as u64).max(1)
    }

    /// Validates the process parameters.
    fn validate(&self) -> Result<()> {
        let bad = |reason: String| ServeError::InvalidConfig { reason };
        match *self {
            ArrivalProcess::Poisson { mean_qps } => {
                if !mean_qps.is_finite() || mean_qps <= 0.0 {
                    return Err(bad(format!(
                        "arrival mean_qps must be finite and positive, got {mean_qps}"
                    )));
                }
            }
            ArrivalProcess::Bursty {
                calm_qps,
                burst_qps,
                cycle,
                burst_len,
            } => {
                for (name, qps) in [("calm_qps", calm_qps), ("burst_qps", burst_qps)] {
                    if !qps.is_finite() || qps <= 0.0 {
                        return Err(bad(format!(
                            "arrival {name} must be finite and positive, got {qps}"
                        )));
                    }
                }
                if cycle == 0 || burst_len > cycle {
                    return Err(bad(format!(
                        "arrival cycle must be >= 1 and burst_len <= cycle, \
                         got cycle {cycle}, burst_len {burst_len}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Relative weights of the request kinds in the offered traffic, plus the
/// interactive-lane share. Weights need not sum to one; an arm with
/// weight `0.0` is never offered (so its workload need not be registered
/// on the server).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMix {
    /// Weight of [`Request::Classify`] traffic.
    pub classify: f64,
    /// Weight of [`Request::Acquire`] traffic.
    pub acquire: f64,
    /// Weight of [`Request::ImageKernel`] traffic (using
    /// [`TrafficMix::kernel_filter`]).
    pub kernel: f64,
    /// Weight of [`Request::VideoStream`] traffic (using
    /// [`TrafficMix::kernel_filter`], [`TrafficMix::stream_frames`]
    /// frames per stream).
    pub stream: f64,
    /// The filter for the kernel and stream arms; a matching workload
    /// must be registered when either weight is positive.
    pub kernel_filter: ImageKernel,
    /// Frames per video-stream request.
    pub stream_frames: usize,
    /// Probability in `[0, 1]` that a request rides the
    /// [`Priority::Interactive`] lane; the rest are [`Priority::Batch`].
    pub interactive_fraction: f64,
}

impl Default for TrafficMix {
    /// Pure interactive classify traffic.
    fn default() -> Self {
        TrafficMix {
            classify: 1.0,
            acquire: 0.0,
            kernel: 0.0,
            stream: 0.0,
            kernel_filter: ImageKernel::SobelX,
            stream_frames: 4,
            interactive_fraction: 1.0,
        }
    }
}

impl TrafficMix {
    /// Validates the weights and lane fraction.
    fn validate(&self) -> Result<()> {
        let bad = |reason: String| ServeError::InvalidConfig { reason };
        for (name, weight) in [
            ("classify", self.classify),
            ("acquire", self.acquire),
            ("kernel", self.kernel),
            ("stream", self.stream),
        ] {
            if !weight.is_finite() || weight < 0.0 {
                return Err(bad(format!(
                    "traffic-mix weight {name} must be finite and >= 0, got {weight}"
                )));
            }
        }
        if self.classify + self.acquire + self.kernel + self.stream <= 0.0 {
            return Err(bad(
                "traffic mix must have at least one positive weight".to_string()
            ));
        }
        if self.stream > 0.0 && self.stream_frames == 0 {
            return Err(bad("stream traffic requires stream_frames >= 1".to_string()));
        }
        if !self.interactive_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.interactive_fraction)
        {
            return Err(bad(format!(
                "interactive_fraction must be in [0, 1], got {}",
                self.interactive_fraction
            )));
        }
        Ok(())
    }

    /// Samples the request kind for one offered request.
    fn sample_request(&self, frames: &FramePool, rng: &mut SmallRng) -> Request {
        let total = self.classify + self.acquire + self.kernel + self.stream;
        let mut draw = rng.gen::<f64>() * total;
        draw -= self.classify;
        if draw < 0.0 {
            return Request::Classify {
                frame: frames.next(rng),
            };
        }
        draw -= self.acquire;
        if draw < 0.0 {
            return Request::Acquire {
                frame: frames.next(rng),
            };
        }
        draw -= self.kernel;
        if draw < 0.0 {
            return Request::ImageKernel {
                kernel: self.kernel_filter,
                frame: frames.next(rng),
            };
        }
        Request::VideoStream {
            kernel: self.kernel_filter,
            frames: (0..self.stream_frames).map(|_| frames.next(rng)).collect(),
        }
    }

    /// Samples the scheduling lane for one offered request.
    fn sample_priority(&self, rng: &mut SmallRng) -> Priority {
        if rng.gen_bool(self.interactive_fraction) {
            Priority::Interactive
        } else {
            Priority::Batch
        }
    }
}

/// One soak run: how much traffic to offer, shaped how.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Seed for the whole run — schedule, mix, and lane draws all derive
    /// from it, so equal seeds give bit-identical offered traffic.
    pub seed: u64,
    /// Total requests to offer.
    pub requests: u64,
    /// Sensor width of the generated frames (must match the platform).
    pub width: usize,
    /// Sensor height of the generated frames (must match the platform).
    pub height: usize,
    /// Distinct pre-generated frames cycled through the traffic; a small
    /// pool keeps a multi-million-request soak allocation-light.
    pub frame_pool: usize,
    /// The inter-arrival process on the simulated clock.
    pub arrivals: ArrivalProcess,
    /// Request-kind and priority-lane composition.
    pub mix: TrafficMix,
}

impl Default for SoakConfig {
    /// 10k interactive classify requests at 1M sim-QPS on an 8x8 sensor.
    fn default() -> Self {
        SoakConfig {
            seed: 7,
            requests: 10_000,
            width: 8,
            height: 8,
            frame_pool: 64,
            arrivals: ArrivalProcess::Poisson { mean_qps: 1e6 },
            mix: TrafficMix::default(),
        }
    }
}

impl SoakConfig {
    /// Validates the run parameters.
    fn validate(&self) -> Result<()> {
        let bad = |reason: String| ServeError::InvalidConfig { reason };
        if self.requests == 0 {
            return Err(bad("soak requests must be >= 1".to_string()));
        }
        if self.width == 0 || self.height == 0 {
            return Err(bad(format!(
                "soak sensor must be non-empty, got {}x{}",
                self.width, self.height
            )));
        }
        if self.frame_pool == 0 {
            return Err(bad("soak frame_pool must be >= 1".to_string()));
        }
        self.arrivals.validate()?;
        self.mix.validate()
    }
}

/// A small cycle of pre-generated scenes shared by all offered requests.
struct FramePool {
    frames: Vec<RgbFrame>,
}

impl FramePool {
    /// Generates `count` uniformly random frames from `seed`.
    fn new(count: usize, width: usize, height: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frames = (0..count)
            .map(|_| {
                let data: Vec<f64> = (0..width * height * 3).map(|_| rng.gen()).collect();
                // lightator: allow(no-unwrap) - dims validated non-empty.
                RgbFrame::new(width, height, data).expect("soak frame")
            })
            .collect();
        FramePool { frames }
    }

    /// A uniformly chosen frame (cheap clone; frames share no state).
    fn next(&self, rng: &mut SmallRng) -> RgbFrame {
        self.frames[rng.gen_range(0..self.frames.len())].clone()
    }
}

/// What the harness offered and what the server did with it, in the
/// harness's own tallies (the authoritative server-side view is the
/// [`MetricsSnapshot`](crate::MetricsSnapshot) from
/// [`Server::shutdown`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoakOutcome {
    /// Requests offered on the interactive lane.
    pub offered_interactive: u64,
    /// Requests offered on the batch lane.
    pub offered_batch: u64,
    /// Interactive requests the server admitted.
    pub admitted_interactive: u64,
    /// Batch requests the server admitted.
    pub admitted_batch: u64,
    /// Interactive requests dropped with `Overloaded` at their arrival
    /// time.
    pub dropped_interactive: u64,
    /// Batch requests dropped with `Overloaded` at their arrival time.
    pub dropped_batch: u64,
    /// Simulated timestamp (ns) of the last offered arrival.
    pub last_arrival_ns: u64,
}

impl SoakOutcome {
    /// Total requests offered.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered_interactive + self.offered_batch
    }

    /// Total requests admitted.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted_interactive + self.admitted_batch
    }

    /// Total requests dropped.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped_interactive + self.dropped_batch
    }

    /// Dropped / offered, in `[0, 1]`.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.offered() as f64
        }
    }

    /// Mean offered load over the generated schedule, requests per
    /// simulated second.
    #[must_use]
    pub fn offered_qps(&self) -> f64 {
        if self.last_arrival_ns == 0 {
            0.0
        } else {
            self.offered() as f64 * NS_PER_SEC / self.last_arrival_ns as f64
        }
    }
}

/// Generates the seeded arrival schedule and offers it to `server`
/// open-loop via [`Server::submit_at`]. Returns the harness tallies;
/// call [`Server::shutdown`] afterwards for the server-side metrics
/// (queue-wait quantiles, per-lane admitted/rejected, throughput).
///
/// The run upholds `offered == admitted + dropped` exactly: every
/// request is counted once, at its simulated arrival time.
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] for malformed soak parameters, plus any
/// non-`Overloaded` submission error (e.g.
/// [`ServeError::UnknownWorkload`] when the mix offers a kind the server
/// does not serve) — `Overloaded` is accounting, not failure.
pub fn run_soak(server: &Server, config: &SoakConfig) -> Result<SoakOutcome> {
    config.validate()?;
    let frames = FramePool::new(
        config.frame_pool,
        config.width,
        config.height,
        config.seed ^ 0x5F0A_6B3D_9E1C_2487,
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut outcome = SoakOutcome::default();
    let mut arrival_ns: u64 = 0;
    for index in 0..config.requests {
        arrival_ns = arrival_ns.saturating_add(config.arrivals.next_gap_ns(index, &mut rng));
        let request = config.mix.sample_request(&frames, &mut rng);
        let priority = config.mix.sample_priority(&mut rng);
        match priority {
            Priority::Interactive => outcome.offered_interactive += 1,
            Priority::Batch => outcome.offered_batch += 1,
        }
        match server.submit_at(request, priority, arrival_ns) {
            Ok(_pending) => match priority {
                // Dropped handle: shutdown() drains in-flight work.
                Priority::Interactive => outcome.admitted_interactive += 1,
                Priority::Batch => outcome.admitted_batch += 1,
            },
            Err(ServeError::Overloaded { .. }) => match priority {
                Priority::Interactive => outcome.dropped_interactive += 1,
                Priority::Batch => outcome.dropped_batch += 1,
            },
            Err(err) => return Err(err),
        }
    }
    outcome.last_arrival_ns = arrival_ns;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_core::ca::CaConfig;
    use lightator_core::platform::{Platform, Workload};
    use lightator_photonics::noise::NoiseConfig;

    /// The schedule a config generates, without a server.
    fn schedule(config: &SoakConfig) -> Vec<(u64, String, Priority)> {
        let frames = FramePool::new(config.frame_pool, config.width, config.height, config.seed);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut arrival = 0u64;
        (0..config.requests)
            .map(|index| {
                arrival += config.arrivals.next_gap_ns(index, &mut rng);
                let request = config.mix.sample_request(&frames, &mut rng);
                let priority = config.mix.sample_priority(&mut rng);
                (arrival, request.label(), priority)
            })
            .collect()
    }

    #[test]
    fn equal_seeds_generate_identical_schedules() {
        let config = SoakConfig {
            requests: 500,
            mix: TrafficMix {
                classify: 0.4,
                acquire: 0.4,
                kernel: 0.1,
                stream: 0.1,
                interactive_fraction: 0.5,
                ..TrafficMix::default()
            },
            ..SoakConfig::default()
        };
        let first = schedule(&config);
        let second = schedule(&config);
        assert_eq!(first, second, "same seed must replay the same traffic");
        let shifted = schedule(&SoakConfig {
            seed: config.seed + 1,
            ..config.clone()
        });
        assert_ne!(first, shifted, "a different seed must move the schedule");
        let mut kinds: Vec<&str> = first.iter().map(|(_, label, _)| label.as_str()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert!(kinds.len() >= 3, "the mix should offer several kinds");
        assert!(
            first.windows(2).all(|w| w[0].0 < w[1].0),
            "arrival timestamps must be strictly increasing"
        );
    }

    #[test]
    fn bursty_arrivals_run_hotter_inside_the_burst() {
        let process = ArrivalProcess::Bursty {
            calm_qps: 1e3,
            burst_qps: 1e6,
            cycle: 100,
            burst_len: 50,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let (mut burst_total, mut calm_total) = (0u64, 0u64);
        for index in 0..10_000u64 {
            let gap = process.next_gap_ns(index, &mut rng);
            if index % 100 < 50 {
                burst_total += gap;
            } else {
                calm_total += gap;
            }
        }
        assert!(
            calm_total > 100 * burst_total,
            "calm gaps ({calm_total} ns) must dwarf burst gaps ({burst_total} ns)"
        );
    }

    #[test]
    fn malformed_soak_configs_are_rejected_with_the_reason() {
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .compressive_acquisition(CaConfig::default())
            .noise(NoiseConfig::ideal())
            .build()
            .expect("platform");
        let server = Server::builder(platform)
            .workload(Workload::Acquire)
            .build()
            .expect("server");
        for (config, needle) in [
            (
                SoakConfig {
                    requests: 0,
                    ..SoakConfig::default()
                },
                "requests",
            ),
            (
                SoakConfig {
                    arrivals: ArrivalProcess::Poisson { mean_qps: 0.0 },
                    ..SoakConfig::default()
                },
                "mean_qps",
            ),
            (
                SoakConfig {
                    arrivals: ArrivalProcess::Bursty {
                        calm_qps: 1.0,
                        burst_qps: 2.0,
                        cycle: 4,
                        burst_len: 9,
                    },
                    ..SoakConfig::default()
                },
                "burst_len",
            ),
            (
                SoakConfig {
                    mix: TrafficMix {
                        classify: 0.0,
                        ..TrafficMix::default()
                    },
                    ..SoakConfig::default()
                },
                "positive weight",
            ),
            (
                SoakConfig {
                    mix: TrafficMix {
                        interactive_fraction: 1.5,
                        ..TrafficMix::default()
                    },
                    ..SoakConfig::default()
                },
                "interactive_fraction",
            ),
        ] {
            let err = run_soak(&server, &config).expect_err("config must be rejected");
            let text = err.to_string();
            assert!(
                text.contains(needle),
                "error for {needle} must name the constraint, got: {text}"
            );
        }
        drop(server.shutdown());
    }

    #[test]
    fn open_loop_accounting_matches_the_server_exactly() {
        let platform = Platform::builder()
            .sensor_resolution(8, 8)
            .compressive_acquisition(CaConfig::default())
            .noise(NoiseConfig::ideal())
            .build()
            .expect("platform");
        // A tiny queue under a hot schedule forces genuine drops.
        let server = Server::builder(platform)
            .shards(2)
            .max_batch(2)
            .queue_depth(2)
            .workload(Workload::Acquire)
            .build()
            .expect("server");
        let config = SoakConfig {
            requests: 400,
            arrivals: ArrivalProcess::Poisson { mean_qps: 5e7 },
            mix: TrafficMix {
                classify: 0.0,
                acquire: 1.0,
                interactive_fraction: 0.75,
                ..TrafficMix::default()
            },
            ..SoakConfig::default()
        };
        let outcome = run_soak(&server, &config).expect("soak");
        let snapshot = server.shutdown();
        assert_eq!(outcome.offered(), config.requests);
        assert_eq!(
            outcome.offered(),
            outcome.admitted() + outcome.dropped(),
            "open-loop accounting must be exact"
        );
        assert_eq!(outcome.admitted_interactive, snapshot.admitted_interactive);
        assert_eq!(outcome.admitted_batch, snapshot.admitted_batch);
        assert_eq!(outcome.dropped_interactive, snapshot.rejected_interactive);
        assert_eq!(outcome.dropped_batch, snapshot.rejected_batch);
        assert_eq!(snapshot.completed, outcome.admitted());
        assert!(
            (outcome.drop_rate() - snapshot.drop_rate()).abs() < 1e-12,
            "both sides must agree on the drop rate"
        );
        assert!(outcome.offered_qps() > 0.0);
    }
}
