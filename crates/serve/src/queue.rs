//! The bounded per-group request queue and the micro-batcher's drain rules.
//!
//! Every admitted request gets a monotone **ticket** — its first global
//! frame index within the workload group — and a **weight** — how many
//! frame indices it consumes (1 for single-frame requests, the frame count
//! for video streams). Tickets drive two guarantees:
//!
//! * **Determinism.** A shard seeks its session to the first ticket of the
//!   batch it drained; because a drain only takes a run of requests whose
//!   tickets are contiguous *by weight*, every frame executes at exactly
//!   the frame index a single sequential session would have used.
//! * **FIFO fairness.** Within a lane no request is overtaken; an
//!   interactive request may overtake queued batch-lane requests at
//!   batch-formation time, bounded by the interactive credit.
//!
//! Admission lands each run of consecutive tickets on one **sub-deque**
//! (one per shard when work stealing is on), so a shard's drain is
//! contiguous by construction instead of racing its siblings for the head
//! of one shared deque. An idle shard whose own sub-deque ran dry *steals*
//! the contiguous run at the front of the longest sibling sub-deque —
//! execution still happens at the stolen tickets' frame indices, so
//! stealing moves wall-clock work without moving a single noise draw.
//!
//! Admission control is strictly non-blocking: a full queue rejects with
//! [`ServeError::Overloaded`] rather than stalling the caller.

use crate::error::{Result, ServeError};
use crate::metrics::VirtualClock;
use crate::request::{Payload, Priority, ResponseSlot};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Real-time backstop for the straggler wait: the simulated flush deadline
/// only advances while other shards complete work, so an otherwise idle
/// server flushes partial batches after this wall-clock pause instead.
const STRAGGLER_BACKSTOP: Duration = Duration::from_micros(200);

/// One admitted request, queued for a shard group.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    pub(crate) payload: Payload,
    /// First global frame index of this request within its workload group.
    pub(crate) ticket: u64,
    /// Frame indices the request consumes (`payload.weight()`).
    pub(crate) weight: u64,
    /// Simulated arrival time (virtual-clock stamp at admission).
    pub(crate) arrival_ns: u64,
    /// Scheduling lane the request was submitted on.
    pub(crate) priority: Priority,
    pub(crate) slot: Arc<ResponseSlot>,
}

/// One drained micro-batch plus where it came from.
#[derive(Debug)]
pub(crate) struct DrainedBatch {
    pub(crate) requests: Vec<QueuedRequest>,
    /// The batch was pulled from a sibling shard's sub-deque.
    pub(crate) stolen: bool,
}

#[derive(Debug)]
struct QueueState {
    /// One sub-deque per shard when stealing is enabled, else a single
    /// shared deque. Each holds runs of consecutive tickets.
    slots: Vec<VecDeque<QueuedRequest>>,
    /// Sub-deque currently receiving the run of consecutive tickets.
    fill: usize,
    /// Requests placed into the current run so far.
    run_filled: usize,
    /// Remaining drains that may start at an interactive request instead
    /// of the queue head; refilled to `interactive_weight` once spent.
    jump_credit: usize,
    next_ticket: u64,
    queued: usize,
    shutdown: bool,
}

impl QueueState {
    fn is_empty(&self) -> bool {
        self.queued == 0
    }
}

/// The bounded MPMC queue one workload group's shards drain.
#[derive(Debug)]
pub(crate) struct SharedQueue {
    capacity: usize,
    /// Consecutive-ticket requests routed to one sub-deque before the fill
    /// cursor advances (the group's effective max batch, so a full batch
    /// drains from a single sub-deque).
    run_length: usize,
    /// Consecutive priority-first drains allowed before one head drain is
    /// forced (the batch-lane starvation bound).
    interactive_weight: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl SharedQueue {
    /// `slots` sub-deques (one per shard when work stealing is on, one
    /// shared otherwise) bounded by `capacity` requests in total.
    pub(crate) fn new(
        capacity: usize,
        slots: usize,
        run_length: usize,
        interactive_weight: usize,
    ) -> Self {
        let slots = slots.max(1);
        let interactive_weight = interactive_weight.max(1);
        Self {
            capacity,
            run_length: run_length.max(1),
            interactive_weight,
            state: Mutex::new(QueueState {
                slots: (0..slots).map(|_| VecDeque::new()).collect(),
                fill: 0,
                run_filled: 0,
                jump_credit: interactive_weight,
                next_ticket: 0,
                queued: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Requests currently waiting in this queue (all sub-deques).
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").queued // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
    }

    /// Admits one request, assigning it the group's next ticket and
    /// advancing the ticket counter by the payload's weight (one frame
    /// index per frame the request carries). Runs of `run_length`
    /// consecutive tickets land on one sub-deque so shard drains stay
    /// contiguous.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::ShuttingDown`] once shutdown began.
    pub(crate) fn push(
        &self,
        payload: Payload,
        priority: Priority,
        arrival_ns: u64,
        slot: Arc<ResponseSlot>,
    ) -> Result<u64> {
        let weight = payload.weight();
        let mut state = self.state.lock().expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if state.queued >= self.capacity {
            return Err(ServeError::Overloaded {
                queue_depth: self.capacity,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += weight;
        let fill = state.fill;
        state.slots[fill].push_back(QueuedRequest {
            payload,
            ticket,
            weight,
            arrival_ns,
            priority,
            slot,
        });
        state.queued += 1;
        state.run_filled += 1;
        if state.run_filled >= self.run_length {
            state.fill = (state.fill + 1) % state.slots.len();
            state.run_filled = 0;
        }
        drop(state);
        self.ready.notify_one();
        Ok(ticket)
    }

    /// Begins shutdown: no further admissions, all waiting shards wake up
    /// and drain whatever is still queued before exiting.
    pub(crate) fn shutdown(&self) {
        self.state.lock().expect("queue poisoned").shutdown = true; // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        self.ready.notify_all();
    }

    /// Blocks for work, then drains one micro-batch of up to `max_batch`
    /// contiguous-ticket requests — from the shard's own sub-deque, or
    /// (work stealing) from the fullest sibling sub-deque when its own ran
    /// dry.
    ///
    /// Flush rules: a batch flushes once it reaches `max_batch`, once the
    /// queue ran dry and the simulated flush deadline (or its real-time
    /// idle backstop) expired, or once no queued request can extend the
    /// batch contiguously. Returns `None` when the queue shut down and
    /// nothing is left to drain.
    pub(crate) fn wait_batch(
        &self,
        slot_index: usize,
        max_batch: usize,
        flush_deadline_ns: u64,
        clock: &VirtualClock,
    ) -> Option<DrainedBatch> {
        let mut state = self.state.lock().expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        loop {
            if !state.is_empty() {
                break;
            }
            if state.shutdown {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        }
        let own = slot_index.min(state.slots.len() - 1);
        // Drain the shard's own sub-deque; when it ran dry, steal the run
        // at the front of the fullest sibling.
        let source = if state.slots[own].is_empty() {
            state
                .slots
                .iter()
                .enumerate()
                .max_by_key(|(_, deque)| deque.len())
                .map(|(i, _)| i)
                .unwrap_or(own) // lightator: allow(no-unwrap) — slots is non-empty by construction
        } else {
            own
        };
        let stolen = source != own;
        let mut batch = Vec::with_capacity(max_batch);
        self.drain_slot(&mut state, source, &mut batch, max_batch);
        if flush_deadline_ns > 0 {
            let opened_ns = clock.now();
            while batch.len() < max_batch && !state.shutdown {
                if !state.is_empty() && !Self::can_extend(&state, &batch) {
                    // No queued request continues our ticket run: flush.
                    break;
                }
                if clock.now().saturating_sub(opened_ns) >= flush_deadline_ns {
                    break;
                }
                let (next, timeout) = self
                    .ready
                    .wait_timeout(state, STRAGGLER_BACKSTOP)
                    .expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
                state = next;
                let was_empty = state.is_empty();
                Self::extend_contiguous(&mut state, &mut batch, max_batch);
                if timeout.timed_out() && was_empty {
                    // Idle backstop: nothing arrived in real time either.
                    break;
                }
            }
        }
        Some(DrainedBatch {
            requests: batch,
            stolen,
        })
    }

    /// Drains one contiguous run from `slots[source]` into `batch`.
    ///
    /// When the sub-deque's head request is batch-lane, the head holds a
    /// mix, and interactive credit remains, the batch *starts* at the first
    /// interactive request instead (spending one credit); with credit
    /// exhausted the head drains and the credit refills. Either way the
    /// batch extends only with ticket-contiguous successors, so the
    /// determinism contract is untouched.
    fn drain_slot(
        &self,
        state: &mut QueueState,
        source: usize,
        batch: &mut Vec<QueuedRequest>,
        max_batch: usize,
    ) {
        let start = {
            let deque = &state.slots[source];
            let head_is_batch_lane = deque.front().is_some_and(|r| r.priority == Priority::Batch);
            if head_is_batch_lane && state.jump_credit > 0 {
                deque
                    .iter()
                    .position(|r| r.priority == Priority::Interactive)
            } else {
                None
            }
        };
        match start {
            Some(index) => {
                state.jump_credit -= 1;
                let deque = &mut state.slots[source];
                // Start the batch at the first interactive request; the
                // overtaken batch-lane requests stay queued in order.
                let first = deque.remove(index).expect("position() found it"); // lightator: allow(no-unwrap) — index comes from position()
                state.queued -= 1;
                batch.push(first);
                // After the removal the contiguous successors sit at the
                // same index; extend while tickets continue the run.
                while batch.len() < max_batch {
                    let deque = &mut state.slots[source];
                    let continues = deque.get(index).is_some_and(|next| {
                        let last = &batch[batch.len() - 1];
                        next.ticket == last.ticket + last.weight
                    });
                    if !continues {
                        break;
                    }
                    let next = deque.remove(index).expect("get() found it"); // lightator: allow(no-unwrap) — the guard checked the index
                    state.queued -= 1;
                    batch.push(next);
                }
            }
            None => {
                if state.slots[source]
                    .front()
                    .is_some_and(|r| r.priority == Priority::Batch)
                {
                    // A forced head drain repays the overtaken lane; let
                    // the next mixed drain jump again.
                    state.jump_credit = self.interactive_weight;
                }
                Self::drain_front(state, source, batch, max_batch);
            }
        }
    }

    /// Pops `slots[source]`-front requests into `batch` while their tickets
    /// stay contiguous and the batch has room.
    fn drain_front(
        state: &mut QueueState,
        source: usize,
        batch: &mut Vec<QueuedRequest>,
        max_batch: usize,
    ) {
        while batch.len() < max_batch {
            let deque = &state.slots[source];
            let contiguous = match (batch.last(), deque.front()) {
                (_, None) => false,
                (None, Some(_)) => true,
                (Some(last), Some(front)) => front.ticket == last.ticket + last.weight,
            };
            if !contiguous {
                return;
            }
            let front = state.slots[source]
                .pop_front()
                .expect("front checked above"); // lightator: allow(no-unwrap) — loop guard checked the front
            state.queued -= 1;
            batch.push(front);
        }
    }

    /// Whether any sub-deque's front continues the batch's ticket run.
    fn can_extend(state: &QueueState, batch: &[QueuedRequest]) -> bool {
        let Some(last) = batch.last() else {
            return !state.is_empty();
        };
        let next_ticket = last.ticket + last.weight;
        state
            .slots
            .iter()
            .any(|deque| deque.front().is_some_and(|r| r.ticket == next_ticket))
    }

    /// Extends `batch` with ticket-contiguous requests from whichever
    /// sub-deque's front continues the run (the straggler-window drain:
    /// the continuation may have been placed on a different sub-deque when
    /// admission rolled the fill cursor).
    fn extend_contiguous(state: &mut QueueState, batch: &mut Vec<QueuedRequest>, max_batch: usize) {
        while batch.len() < max_batch {
            let next_ticket = match batch.last() {
                Some(last) => last.ticket + last.weight,
                None => {
                    // Empty batch: fall back to any non-empty sub-deque.
                    let Some(source) = state.slots.iter().position(|d| !d.is_empty()) else {
                        return;
                    };
                    Self::drain_front(state, source, batch, max_batch);
                    continue;
                }
            };
            let Some(source) = state
                .slots
                .iter()
                .position(|deque| deque.front().is_some_and(|r| r.ticket == next_ticket))
            else {
                return;
            };
            let front = state.slots[source]
                .pop_front()
                .expect("position() checked the front"); // lightator: allow(no-unwrap) — the guard checked the front
            state.queued -= 1;
            batch.push(front);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_sensor::frame::RgbFrame;

    fn frame() -> Payload {
        Payload::Frame(RgbFrame::filled(2, 2, [0.5, 0.5, 0.5]).expect("ok"))
    }

    fn stream(frames: usize) -> Payload {
        Payload::Stream(vec![
            RgbFrame::filled(2, 2, [0.5, 0.5, 0.5]).expect("ok");
            frames
        ])
    }

    fn slot() -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot::new())
    }

    fn single(capacity: usize) -> SharedQueue {
        SharedQueue::new(capacity, 1, 4, 4)
    }

    fn tickets(batch: &DrainedBatch) -> Vec<u64> {
        batch.requests.iter().map(|r| r.ticket).collect()
    }

    #[test]
    fn tickets_are_assigned_in_admission_order() {
        let queue = single(4);
        assert_eq!(
            queue
                .push(frame(), Priority::Interactive, 0, slot())
                .expect("ok"),
            0
        );
        assert_eq!(
            queue
                .push(frame(), Priority::Interactive, 0, slot())
                .expect("ok"),
            1
        );
        assert_eq!(
            queue
                .push(frame(), Priority::Interactive, 0, slot())
                .expect("ok"),
            2
        );
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn stream_requests_advance_tickets_by_their_frame_count() {
        let queue = single(8);
        assert_eq!(
            queue
                .push(stream(3), Priority::Interactive, 0, slot())
                .expect("ok"),
            0
        );
        assert_eq!(
            queue
                .push(frame(), Priority::Interactive, 0, slot())
                .expect("ok"),
            3
        );
        assert_eq!(
            queue
                .push(stream(2), Priority::Interactive, 0, slot())
                .expect("ok"),
            4
        );
        let clock = VirtualClock::new();
        // Weighted tickets still drain as one contiguous run.
        let batch = queue.wait_batch(0, 8, 0, &clock).expect("work");
        assert_eq!(
            batch
                .requests
                .iter()
                .map(|r| (r.ticket, r.weight))
                .collect::<Vec<_>>(),
            vec![(0, 3), (3, 1), (4, 2)]
        );
    }

    #[test]
    fn a_full_queue_rejects_instead_of_blocking() {
        let queue = single(2);
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok");
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok");
        assert_eq!(
            queue.push(frame(), Priority::Interactive, 0, slot()),
            Err(ServeError::Overloaded { queue_depth: 2 })
        );
        // Rejections do not consume tickets.
        let clock = VirtualClock::new();
        let batch = queue.wait_batch(0, 4, 0, &clock).expect("work");
        assert_eq!(tickets(&batch), vec![0, 1]);
    }

    #[test]
    fn wait_batch_drains_up_to_max_batch_in_fifo_order() {
        let queue = single(8);
        for _ in 0..5 {
            queue
                .push(frame(), Priority::Interactive, 0, slot())
                .expect("ok");
        }
        let clock = VirtualClock::new();
        let first = queue.wait_batch(0, 3, 0, &clock).expect("work");
        assert_eq!(tickets(&first), vec![0, 1, 2]);
        let second = queue.wait_batch(0, 3, 0, &clock).expect("work");
        assert_eq!(tickets(&second), vec![3, 4]);
    }

    #[test]
    fn shutdown_rejects_new_work_and_wakes_waiters() {
        let queue = Arc::new(single(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.wait_batch(0, 4, 0, &VirtualClock::new()))
        };
        queue.shutdown();
        assert!(waiter.join().expect("no panic").is_none());
        assert_eq!(
            queue.push(frame(), Priority::Interactive, 0, slot()),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn shutdown_still_drains_queued_work() {
        let queue = single(4);
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok");
        queue.shutdown();
        let clock = VirtualClock::new();
        assert_eq!(
            queue
                .wait_batch(0, 4, 0, &clock)
                .expect("drain")
                .requests
                .len(),
            1
        );
        assert!(queue.wait_batch(0, 4, 0, &clock).is_none());
    }

    #[test]
    fn straggler_wait_extends_a_partial_batch() {
        let queue = Arc::new(single(8));
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok");
        let worker = {
            let queue = Arc::clone(&queue);
            // A generous simulated deadline that never expires (the clock
            // stays at zero): the batch closes on max_batch.
            std::thread::spawn(move || queue.wait_batch(0, 2, u64::MAX, &VirtualClock::new()))
        };
        // Feed the straggler from this thread; the worker either drains
        // both up front or picks it up in its wait_timeout loop.
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok");
        let batch = worker.join().expect("no panic").expect("work");
        assert_eq!(batch.requests.len(), 2);
        assert_eq!(batch.requests[1].ticket, batch.requests[0].ticket + 1);
    }

    #[test]
    fn runs_of_consecutive_tickets_land_on_alternating_sub_deques() {
        // Two sub-deques, run length 2: tickets {0,1} on deque 0, {2,3} on
        // deque 1, {4} back on deque 0 — each shard's drain is contiguous
        // by construction.
        let queue = SharedQueue::new(16, 2, 2, 4);
        for _ in 0..5 {
            queue
                .push(frame(), Priority::Interactive, 0, slot())
                .expect("ok");
        }
        let clock = VirtualClock::new();
        let shard0 = queue.wait_batch(0, 2, 0, &clock).expect("work");
        assert_eq!(tickets(&shard0), vec![0, 1]);
        assert!(!shard0.stolen);
        let shard1 = queue.wait_batch(1, 2, 0, &clock).expect("work");
        assert_eq!(tickets(&shard1), vec![2, 3]);
        assert!(!shard1.stolen);
        let shard0_again = queue.wait_batch(0, 2, 0, &clock).expect("work");
        assert_eq!(tickets(&shard0_again), vec![4]);
    }

    #[test]
    fn an_idle_shard_steals_a_contiguous_run_from_its_sibling() {
        let queue = SharedQueue::new(16, 2, 2, 4);
        for _ in 0..2 {
            queue
                .push(frame(), Priority::Interactive, 0, slot())
                .expect("ok");
        }
        // All work landed on sub-deque 0; shard 1's own deque is empty, so
        // it steals the contiguous run {0, 1}.
        let clock = VirtualClock::new();
        let stolen = queue.wait_batch(1, 2, 0, &clock).expect("work");
        assert_eq!(tickets(&stolen), vec![0, 1]);
        assert!(stolen.stolen);
        assert_eq!(queue.len(), 0);
    }

    #[test]
    fn interactive_requests_overtake_batch_lane_heads() {
        let queue = single(16);
        queue.push(frame(), Priority::Batch, 0, slot()).expect("ok"); // ticket 0
        queue.push(frame(), Priority::Batch, 0, slot()).expect("ok"); // ticket 1
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok"); // ticket 2
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok"); // ticket 3
        let clock = VirtualClock::new();
        // Batch formation starts at the first interactive request (ticket
        // 2) and extends contiguously — never with the skipped heads.
        let first = queue.wait_batch(0, 4, 0, &clock).expect("work");
        assert_eq!(tickets(&first), vec![2, 3]);
        // The overtaken batch-lane requests drain next, still in order.
        let second = queue.wait_batch(0, 4, 0, &clock).expect("work");
        assert_eq!(tickets(&second), vec![0, 1]);
    }

    #[test]
    fn interactive_credit_bounds_batch_lane_starvation() {
        // Credit 1: after one priority-first drain the next drain must take
        // the batch-lane head even though interactive work is queued.
        let queue = SharedQueue::new(64, 1, 64, 1);
        queue.push(frame(), Priority::Batch, 0, slot()).expect("ok"); // 0
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok"); // 1
        queue.push(frame(), Priority::Batch, 0, slot()).expect("ok"); // 2
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok"); // 3
        let clock = VirtualClock::new();
        let first = queue.wait_batch(0, 1, 0, &clock).expect("work");
        assert_eq!(tickets(&first), vec![1], "first drain jumps the head");
        let second = queue.wait_batch(0, 1, 0, &clock).expect("work");
        assert_eq!(
            tickets(&second),
            vec![0],
            "credit spent: the head drains before more interactive work"
        );
        let third = queue.wait_batch(0, 1, 0, &clock).expect("work");
        assert_eq!(
            tickets(&third),
            vec![3],
            "the head drain refilled the credit"
        );
        let fourth = queue.wait_batch(0, 1, 0, &clock).expect("work");
        assert_eq!(tickets(&fourth), vec![2]);
    }

    #[test]
    fn priority_jumps_never_break_ticket_contiguity() {
        let queue = single(16);
        queue.push(frame(), Priority::Batch, 0, slot()).expect("ok"); // 0
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok"); // 1
        queue.push(frame(), Priority::Batch, 0, slot()).expect("ok"); // 2
        queue
            .push(frame(), Priority::Interactive, 0, slot())
            .expect("ok"); // 3
        let clock = VirtualClock::new();
        // The jump starts at ticket 1 and takes the contiguous {1, 2, 3}
        // run; ticket 0 is left queued, so every drained batch satisfies
        // `front.ticket == last.ticket + last.weight`.
        let batch = queue.wait_batch(0, 4, 0, &clock).expect("work");
        assert_eq!(tickets(&batch), vec![1, 2, 3]);
        for pair in batch.requests.windows(2) {
            assert_eq!(pair[1].ticket, pair[0].ticket + pair[0].weight);
        }
        let rest = queue.wait_batch(0, 4, 0, &clock).expect("work");
        assert_eq!(tickets(&rest), vec![0]);
    }
}
