//! Sequential model container.

use crate::error::{NnError, Result};
use crate::layers::LayerNode;
use crate::quant::{quantize_tensor_unsigned, Precision};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A feed-forward stack of layers applied in order.
///
/// ```
/// use lightator_nn::layers::{Activation, Flatten, Linear};
/// use lightator_nn::model::Sequential;
/// use lightator_nn::tensor::Tensor;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// # fn main() -> Result<(), lightator_nn::NnError> {
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut model = Sequential::new(&[4]);
/// model.push(Linear::new(4, 8, &mut rng)?);
/// model.push(Activation::relu());
/// model.push(Linear::new(8, 3, &mut rng)?);
/// let logits = model.forward(&Tensor::full(&[4], 0.5))?;
/// assert_eq!(logits.shape(), &[3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequential {
    input_shape: Vec<usize>,
    layers: Vec<LayerNode>,
}

impl Sequential {
    /// Creates an empty model expecting inputs of the given shape.
    #[must_use]
    pub fn new(input_shape: &[usize]) -> Self {
        Self {
            input_shape: input_shape.to_vec(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Into<LayerNode>) {
        self.layers.push(layer.into());
    }

    /// The expected input shape.
    #[must_use]
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[LayerNode] {
        &self.layers
    }

    /// Mutable access to the layers (used by quantization passes).
    pub fn layers_mut(&mut self) -> &mut [LayerNode] {
        &mut self.layers
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of layers carrying trainable weights.
    #[must_use]
    pub fn weighted_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weighted()).count()
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(LayerNode::parameter_count).sum()
    }

    /// Output shape of the full model, checking layer compatibility.
    ///
    /// # Errors
    ///
    /// Returns a shape error at the first incompatible layer.
    pub fn output_shape(&self) -> Result<Vec<usize>> {
        let mut shape = self.input_shape.clone();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// Total MAC count of one inference.
    ///
    /// # Errors
    ///
    /// Returns a shape error at the first incompatible layer.
    pub fn total_macs(&self) -> Result<usize> {
        let mut shape = self.input_shape.clone();
        let mut total = 0;
        for layer in &self.layers {
            total += layer.mac_count(&shape)?;
            shape = layer.output_shape(&shape)?;
        }
        Ok(total)
    }

    /// Forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input does not match the declared input
    /// shape or a layer rejects its input.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.shape() != self.input_shape.as_slice() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", self.input_shape),
                actual: input.shape().to_vec(),
            });
        }
        let mut value = input.clone();
        for layer in &mut self.layers {
            value = layer.forward(&value)?;
        }
        Ok(value)
    }

    /// Forward pass that additionally quantizes the activations flowing out
    /// of every weighted layer to `precision.activation_bits`, emulating the
    /// finite VCSEL drive resolution of the accelerator.
    ///
    /// # Errors
    ///
    /// Same as [`Sequential::forward`].
    pub fn forward_with_activation_quant(
        &mut self,
        input: &Tensor,
        precision: Precision,
    ) -> Result<Tensor> {
        if input.shape() != self.input_shape.as_slice() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", self.input_shape),
                actual: input.shape().to_vec(),
            });
        }
        let mut value = input.clone();
        let last = self.layers.len().saturating_sub(1);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let weighted = layer.is_weighted();
            value = layer.forward(&value)?;
            // Quantize hidden activations; the final logits stay continuous
            // so the classifier's argmax is unaffected by a global scale.
            if weighted && i != last {
                let (quantized, _) = quantize_tensor_unsigned(&value, precision.activation_bits);
                // Negative pre-activations are preserved (the following
                // activation layer decides what to do with them); only the
                // positive range is quantized, matching the unsigned optical
                // intensity encoding.
                value = Tensor::from_vec(
                    value
                        .data()
                        .iter()
                        .zip(quantized.data())
                        .map(|(&orig, &q)| if orig > 0.0 { q } else { orig })
                        .collect(),
                    value.shape(),
                )?;
            }
        }
        Ok(value)
    }

    /// Backward pass; returns the gradient with respect to the model input.
    ///
    /// # Errors
    ///
    /// Propagates layer errors ([`NnError::BackwardBeforeForward`] if
    /// `forward` has not run).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    /// Applies accumulated gradients on every layer with a plain SGD step.
    pub fn apply_gradients(&mut self, learning_rate: f32) {
        for layer in &mut self.layers {
            layer.apply_gradients(learning_rate);
        }
    }

    /// Clears accumulated gradients on every layer.
    pub fn zero_gradients(&mut self) {
        for layer in &mut self.layers {
            layer.zero_gradients();
        }
    }

    /// Predicted class (argmax of the logits).
    ///
    /// # Errors
    ///
    /// Same as [`Sequential::forward`].
    pub fn predict(&mut self, input: &Tensor) -> Result<usize> {
        let logits = self.forward(input)?;
        logits.argmax().ok_or(NnError::InvalidDataset {
            reason: "model produced an empty logit vector".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, AvgPool2d, Conv2d, Flatten, Linear};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_cnn() -> Sequential {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut model = Sequential::new(&[1, 8, 8]);
        model.push(Conv2d::new(1, 4, 3, 1, 1, &mut rng).expect("ok"));
        model.push(Activation::relu());
        model.push(AvgPool2d::new(2).expect("ok"));
        model.push(Flatten::new());
        model.push(Linear::new(4 * 4 * 4, 3, &mut rng).expect("ok"));
        model
    }

    #[test]
    fn output_shape_chains_layers() {
        let model = tiny_cnn();
        assert_eq!(model.output_shape().expect("ok"), vec![3]);
        assert_eq!(model.weighted_layer_count(), 2);
        assert!(model.parameter_count() > 0);
        assert!(model.total_macs().expect("ok") > 0);
    }

    #[test]
    fn forward_produces_logits() {
        let mut model = tiny_cnn();
        let x = Tensor::full(&[1, 8, 8], 0.5);
        let y = model.forward(&x).expect("ok");
        assert_eq!(y.shape(), &[3]);
        let class = model.predict(&x).expect("ok");
        assert!(class < 3);
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let mut model = tiny_cnn();
        assert!(model.forward(&Tensor::zeros(&[1, 4, 4])).is_err());
    }

    #[test]
    fn backward_then_update_changes_parameters() {
        let mut model = tiny_cnn();
        let x = Tensor::full(&[1, 8, 8], 0.3);
        let before = model.parameter_fingerprint();
        let logits = model.forward(&x).expect("ok");
        let grad = Tensor::full(logits.shape(), 1.0);
        model.backward(&grad).expect("ok");
        model.apply_gradients(0.05);
        let after = model.parameter_fingerprint();
        assert_ne!(before, after, "an SGD step must move the parameters");
    }

    #[test]
    fn activation_quantized_forward_matches_shape() {
        let mut model = tiny_cnn();
        let x = Tensor::full(&[1, 8, 8], 0.5);
        let exact = model.forward(&x).expect("ok");
        let quantized = model
            .forward_with_activation_quant(&x, Precision::w4a4())
            .expect("ok");
        assert_eq!(exact.shape(), quantized.shape());
        // Quantizing hidden activations perturbs but does not destroy the
        // output.
        let diff: f32 = exact
            .data()
            .iter()
            .zip(quantized.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff < 1.0,
            "activation quantization changed logits by {diff}"
        );
    }

    impl Sequential {
        fn parameter_fingerprint(&self) -> Vec<f32> {
            self.layers
                .iter()
                .filter_map(LayerNode::weight)
                .flat_map(|w| w.data().iter().copied())
                .collect()
        }
    }
}
