//! Umbrella crate for the Lightator reproduction.
//!
//! Re-exports every crate of the workspace so examples, integration tests and
//! downstream users can depend on a single entry point:
//!
//! * [`photonics`] — micro-rings, VCSELs, detectors, WDM, noise;
//! * [`sensor`] — the ADC-less imager and the DMVA;
//! * [`nn`] — tensors, layers, quantization, training, topologies, datasets;
//! * [`core`] — the Lightator optical core, mapper, energy model, simulator
//!   and end-to-end pipeline;
//! * [`baselines`] — photonic and electronic baseline accelerator models;
//! * [`bench`] — the experiment harness regenerating Table 1 and Figs. 8–10.
//!
//! # Quickstart
//!
//! ```
//! use lightator_suite::core::config::LightatorConfig;
//! use lightator_suite::core::sim::ArchitectureSimulator;
//! use lightator_suite::nn::quant::{Precision, PrecisionSchedule};
//! use lightator_suite::nn::spec::NetworkSpec;
//!
//! # fn main() -> Result<(), lightator_suite::core::CoreError> {
//! let sim = ArchitectureSimulator::new(LightatorConfig::paper())?;
//! let report = sim.simulate(&NetworkSpec::lenet(), PrecisionSchedule::Uniform(Precision::w4a4()))?;
//! assert!(report.kfps_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use lightator_baselines as baselines;
pub use lightator_bench as bench;
pub use lightator_core as core;
pub use lightator_nn as nn;
pub use lightator_photonics as photonics;
pub use lightator_sensor as sensor;
