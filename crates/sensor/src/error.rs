//! Error type for the sensor models.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the ADC-less sensor models.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorError {
    /// A frame dimension was zero or otherwise unusable.
    InvalidDimensions {
        /// Frame height in pixels.
        height: usize,
        /// Frame width in pixels.
        width: usize,
    },
    /// Pixel data length does not match the declared dimensions.
    DataLengthMismatch {
        /// Number of samples expected from the dimensions.
        expected: usize,
        /// Number of samples actually provided.
        actual: usize,
    },
    /// A pixel intensity outside `[0, 1]` (or not finite) was supplied.
    IntensityOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A pixel coordinate outside the array was addressed.
    PixelOutOfRange {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Array height.
        height: usize,
        /// Array width.
        width: usize,
    },
    /// An error bubbled up from the photonic device models.
    Photonics(lightator_photonics::PhotonicsError),
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDimensions { height, width } => {
                write!(f, "invalid frame dimensions {height}x{width}")
            }
            Self::DataLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "frame data length mismatch: expected {expected} samples, got {actual}"
                )
            }
            Self::IntensityOutOfRange { value } => {
                write!(f, "pixel intensity {value} is outside the range [0, 1]")
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            Self::PixelOutOfRange {
                row,
                col,
                height,
                width,
            } => {
                write!(
                    f,
                    "pixel ({row}, {col}) is outside the {height}x{width} array"
                )
            }
            Self::Photonics(err) => write!(f, "photonic device error: {err}"),
        }
    }
}

impl StdError for SensorError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Self::Photonics(err) => Some(err),
            _ => None,
        }
    }
}

impl From<lightator_photonics::PhotonicsError> for SensorError {
    fn from(err: lightator_photonics::PhotonicsError) -> Self {
        Self::Photonics(err)
    }
}

/// Convenience result alias for sensor operations.
pub type Result<T> = std::result::Result<T, SensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let errs: Vec<SensorError> = vec![
            SensorError::InvalidDimensions {
                height: 0,
                width: 10,
            },
            SensorError::DataLengthMismatch {
                expected: 100,
                actual: 99,
            },
            SensorError::IntensityOutOfRange { value: 1.7 },
            SensorError::InvalidParameter {
                name: "full_well",
                value: -2.0,
            },
            SensorError::PixelOutOfRange {
                row: 9,
                col: 9,
                height: 4,
                width: 4,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn photonics_errors_convert() {
        let photon_err = lightator_photonics::PhotonicsError::WeightOutOfRange { weight: 3.0 };
        let err: SensorError = photon_err.into();
        assert!(err.to_string().contains("photonic"));
        use std::error::Error;
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SensorError>();
    }
}
