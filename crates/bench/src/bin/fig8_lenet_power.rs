//! Regenerates Fig. 8: LeNet layer-wise power breakdown on Lightator.

use lightator_bench::fig8;

fn main() {
    match fig8::generate() {
        Ok(rows) => {
            print!("{}", fig8::render(&rows));
            println!(
                "\naverage efficiency gain [4:4] -> [2:4]: {:.2}x (paper reports ~2.4x on average)",
                fig8::average_efficiency_gain(&rows)
            );
        }
        Err(err) => {
            eprintln!("fig8 harness failed: {err}");
            std::process::exit(1);
        }
    }
}
