//! Power and energy model of the Lightator platform.
//!
//! Reproduces the component breakdown the paper reports in Figs. 8 and 9:
//! ADCs, DACs, DMVA (CRC + VCSELs + drivers), MR tuning (TUN), balanced
//! photodetectors (BPD) and miscellaneous electronics (controller, SRAM).
//! The absolute constants live in
//! [`DevicePowerTable`](lightator_photonics::power::DevicePowerTable); this
//! module multiplies them by the instance counts and utilisations implied by
//! a layer's [`LayerMapping`].

use crate::config::LightatorConfig;
use crate::error::Result;
use crate::mapping::LayerMapping;
use lightator_nn::quant::Precision;
use lightator_photonics::units::{Area, Energy, Power};
use serde::{Deserialize, Serialize};

/// A simple analytical SRAM model standing in for CACTI (see DESIGN.md §5).
///
/// Per-access energy grows with the square root of the capacity (bit-line /
/// word-line lengths) and leakage linearly with capacity, which is the
/// functional form CACTI exhibits over the small buffer range Lightator
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramModel {
    /// Capacity in KiB.
    pub capacity_kib: usize,
    /// Word width in bytes.
    pub word_bytes: usize,
    /// Base read energy per byte at 1 KiB, in pJ.
    pub base_read_energy_pj: f64,
    /// Base write energy per byte at 1 KiB, in pJ.
    pub base_write_energy_pj: f64,
    /// Leakage power per KiB, in µW.
    pub leakage_per_kib_uw: f64,
    /// Area per KiB, in mm².
    pub area_per_kib_mm2: f64,
}

impl SramModel {
    /// Creates an SRAM model from the device power table's base energies.
    #[must_use]
    pub fn new(capacity_kib: usize, word_bytes: usize, config: &LightatorConfig) -> Self {
        Self {
            capacity_kib,
            word_bytes,
            base_read_energy_pj: config.power.sram_read_energy_per_byte_pj,
            base_write_energy_pj: config.power.sram_write_energy_per_byte_pj,
            leakage_per_kib_uw: config.power.sram_leakage_per_kib_uw,
            area_per_kib_mm2: 0.0018,
        }
    }

    fn size_factor(&self) -> f64 {
        (self.capacity_kib.max(1) as f64).sqrt()
    }

    /// Energy of one word read.
    #[must_use]
    pub fn read_energy(&self) -> Energy {
        Energy::from_pj(self.base_read_energy_pj * self.word_bytes as f64 * self.size_factor())
    }

    /// Energy of one word write.
    #[must_use]
    pub fn write_energy(&self) -> Energy {
        Energy::from_pj(self.base_write_energy_pj * self.word_bytes as f64 * self.size_factor())
    }

    /// Leakage power of the whole macro.
    #[must_use]
    pub fn leakage(&self) -> Power {
        Power::from_mw(self.leakage_per_kib_uw * self.capacity_kib as f64 / 1e3)
    }

    /// Estimated macro area.
    #[must_use]
    pub fn area(&self) -> Area {
        Area::from_mm2(self.area_per_kib_mm2 * self.capacity_kib as f64)
    }
}

/// Per-component power of one layer (the bars of Figs. 8 and 9).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentPower {
    /// Read-out ADCs.
    pub adcs: Power,
    /// Weight-programming DACs.
    pub dacs: Power,
    /// DMVA: CRC comparators, VCSELs and their drivers.
    pub dmva: Power,
    /// MR tuning (thermal/PIN) power.
    pub tuning: Power,
    /// Balanced photodetectors.
    pub bpd: Power,
    /// Controller, buffers and other peripheral electronics.
    pub misc: Power,
}

impl ComponentPower {
    /// Total power of the layer.
    #[must_use]
    pub fn total(&self) -> Power {
        self.adcs + self.dacs + self.dmva + self.tuning + self.bpd + self.misc
    }

    /// Fraction contributed by the DACs (the paper reports >85 % for VGG9).
    #[must_use]
    pub fn dac_share(&self) -> f64 {
        let total = self.total();
        if total.mw() == 0.0 {
            return 0.0;
        }
        self.dacs / total
    }

    /// The component labels in the order the paper's figures use.
    pub const LABELS: [&'static str; 6] = ["ADCs", "DACs", "DMVA", "TUN", "BPD", "Misc."];

    /// The component values in label order.
    #[must_use]
    pub fn values(&self) -> [Power; 6] {
        [
            self.adcs,
            self.dacs,
            self.dmva,
            self.tuning,
            self.bpd,
            self.misc,
        ]
    }
}

/// The Lightator energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    config: LightatorConfig,
}

impl EnergyModel {
    /// Creates an energy model for a platform configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`](crate::CoreError::InvalidConfig)
    /// if the configuration is invalid.
    pub fn new(config: LightatorConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The platform configuration.
    #[must_use]
    pub fn config(&self) -> &LightatorConfig {
        &self.config
    }

    /// Number of arms engaged each cycle for a mapping.
    fn arms_active(&self, mapping: &LayerMapping) -> usize {
        let geometry = &self.config.geometry;
        let engaged =
            mapping.strides_per_cycle.min(mapping.total_strides) * mapping.arms_per_stride;
        engaged.min(geometry.arms())
    }

    /// Per-component power while a mapped layer is executing.
    ///
    /// `precision` selects the weight bit-width (which gates DAC slices) and
    /// `is_first_layer` decides whether the CRC path of the DMVA is active
    /// (only the first layer reads the pixel array).
    #[must_use]
    pub fn layer_power(
        &self,
        mapping: &LayerMapping,
        precision: Precision,
        is_first_layer: bool,
    ) -> ComponentPower {
        let geometry = &self.config.geometry;
        let periphery = &self.config.periphery;
        let table = &self.config.power;

        let arms_active = self.arms_active(mapping);
        let banks_active = arms_active.div_ceil(geometry.arms_per_bank).max(1);
        let mrs_active_per_cycle = (arms_active * geometry.mrs_per_arm)
            .saturating_sub(
                mapping.unused_mrs_per_stride
                    * mapping.strides_per_cycle.min(mapping.total_strides),
            )
            .min(mapping.active_mrs.max(1));

        // DACs re-program the MR weights; one DAC per arm, gated by the
        // weight bit-width (paper: "DACs contribute to more than 85% ...").
        let dacs = table.dac_power_at_bits(precision.weight_bits)
            * (arms_active * periphery.dacs_per_arm) as f64;

        // MR tuning power for every ring that currently holds a weight.
        let tuning = table.mr_tuning_power() * mrs_active_per_cycle as f64;

        // DMVA: VCSELs + drivers for every active wavelength; the CRC ladder
        // only burns power while the pixel array is being read (first layer).
        let vcsels = table.vcsel_power() * (arms_active * periphery.vcsels_per_arm) as f64;
        let crc = if is_first_layer {
            table.crc_power() * periphery.crc_units as f64
        } else {
            Power::zero()
        };
        let dmva = vcsels + crc;

        // Balanced photodetector per arm.
        let bpd = table.bpd_power() * arms_active as f64;

        // Read-out ADCs per active bank.
        let adcs =
            Power::from_mw(table.adc_power_mw) * (banks_active * periphery.adcs_per_bank) as f64;

        // Controller plus SRAM leakage; dynamic SRAM energy is folded into
        // the simulator's energy (not power) accounting.
        let weight_sram = SramModel::new(periphery.weight_sram_kib, 8, &self.config);
        let activation_sram = SramModel::new(periphery.activation_sram_kib, 8, &self.config);
        let misc = Power::from_mw(table.controller_power_mw)
            + weight_sram.leakage()
            + activation_sram.leakage();

        ComponentPower {
            adcs,
            dacs,
            dmva,
            tuning,
            bpd,
            misc,
        }
    }

    /// Peak (maximum) platform power: every arm, MR, DAC and detector active
    /// at the given weight precision — the "Max Power" column of Table 1.
    #[must_use]
    pub fn max_power(&self, precision: Precision) -> ComponentPower {
        let geometry = &self.config.geometry;
        let full = LayerMapping {
            arms_per_stride: 1,
            strides_per_bank: geometry.arms_per_bank,
            unused_mrs_per_stride: 0,
            summation: crate::mapping::SummationUsage::None,
            total_strides: geometry.arms() * 4,
            strides_per_cycle: geometry.arms(),
            compute_cycles: 4,
            weight_reloads: 1,
            active_mrs: geometry.mrs(),
            uses_ca_banks: false,
        };
        self.layer_power(&full, precision, true)
    }

    /// Total die area estimate: optical core (MR pitch), VCSELs, detectors
    /// and the SRAM macros.
    #[must_use]
    pub fn area(&self) -> Area {
        let geometry = &self.config.geometry;
        let mr_area = Area::from_um2(20.0 * 20.0) * geometry.mrs() as f64;
        let vcsel_area = Area::from_um2(15.0 * 15.0)
            * (geometry.arms() * self.config.periphery.vcsels_per_arm) as f64;
        let bpd_area = Area::from_um2(12.0 * 12.0) * geometry.arms() as f64;
        let weight_sram = SramModel::new(self.config.periphery.weight_sram_kib, 8, &self.config);
        let activation_sram =
            SramModel::new(self.config.periphery.activation_sram_kib, 8, &self.config);
        let periphery_area = Area::from_mm2(3.5);
        mr_area
            + vcsel_area
            + bpd_area
            + weight_sram.area()
            + activation_sram.area()
            + periphery_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OcGeometry;
    use crate::mapping::HardwareMapper;
    use lightator_nn::spec::{ConvSpec, LayerSpec};

    fn model() -> EnergyModel {
        EnergyModel::new(LightatorConfig::paper()).expect("valid")
    }

    fn conv_mapping() -> LayerMapping {
        let mapper = HardwareMapper::new(OcGeometry::paper()).expect("valid");
        mapper
            .map_layer(&LayerSpec::Conv(ConvSpec {
                in_channels: 64,
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
                in_height: 32,
                in_width: 32,
            }))
            .expect("ok")
    }

    #[test]
    fn sram_model_scales_with_capacity() {
        let config = LightatorConfig::paper();
        let small = SramModel::new(16, 8, &config);
        let large = SramModel::new(256, 8, &config);
        assert!(large.read_energy().pj() > small.read_energy().pj());
        assert!(large.leakage().mw() > small.leakage().mw());
        assert!(large.area().mm2() > small.area().mm2());
        assert!(small.write_energy().pj() > small.read_energy().pj());
    }

    #[test]
    fn dacs_dominate_the_breakdown() {
        let power = model().layer_power(&conv_mapping(), Precision::w3a4(), false);
        assert!(
            power.dac_share() > 0.6,
            "DACs must dominate, got share {}",
            power.dac_share()
        );
        assert!(power.total().mw() > 0.0);
    }

    #[test]
    fn lower_weight_precision_saves_power() {
        let m = model();
        let mapping = conv_mapping();
        let p4 = m.layer_power(&mapping, Precision::w4a4(), false).total();
        let p3 = m.layer_power(&mapping, Precision::w3a4(), false).total();
        let p2 = m.layer_power(&mapping, Precision::w2a4(), false).total();
        assert!(p4.mw() > p3.mw());
        assert!(p3.mw() > p2.mw());
        // The paper reports ~2.4x average efficiency gain from bit-width
        // reduction; the 4-bit to 2-bit ratio should be of that order.
        let ratio = p4.mw() / p2.mw();
        assert!(ratio > 1.5 && ratio < 4.5, "4-bit/2-bit ratio {ratio}");
    }

    #[test]
    fn first_layer_pays_for_the_crc() {
        let m = model();
        let mapping = conv_mapping();
        let first = m.layer_power(&mapping, Precision::w4a4(), true);
        let later = m.layer_power(&mapping, Precision::w4a4(), false);
        assert!(first.dmva.mw() > later.dmva.mw());
        assert_eq!(first.dacs, later.dacs);
    }

    #[test]
    fn max_power_lands_in_the_papers_range() {
        let m = model();
        let p44 = m.max_power(Precision::w4a4()).total();
        let p34 = m.max_power(Precision::w3a4()).total();
        let p24 = m.max_power(Precision::w2a4()).total();
        // Paper Table 1: 5.28 W, 2.71 W, 1.46 W. Allow a generous band since
        // our circuit constants are representative, not extracted.
        assert!(p44.watts() > 3.0 && p44.watts() < 8.0, "[4:4] {p44}");
        assert!(p34.watts() > 1.5 && p34.watts() < 4.5, "[3:4] {p34}");
        assert!(p24.watts() > 0.7 && p24.watts() < 2.5, "[2:4] {p24}");
        // And the ordering/ratios follow the paper's trend.
        assert!(p44.watts() / p34.watts() > 1.5);
        assert!(p34.watts() / p24.watts() > 1.3);
    }

    #[test]
    fn component_labels_align_with_values() {
        let power = model().layer_power(&conv_mapping(), Precision::w4a4(), false);
        assert_eq!(ComponentPower::LABELS.len(), power.values().len());
        let sum: f64 = power.values().iter().map(|p| p.mw()).sum();
        assert!((sum - power.total().mw()).abs() < 1e-9);
    }

    #[test]
    fn area_fits_the_papers_constraint() {
        let area = model().area();
        assert!(
            area.mm2() > 5.0 && area.mm2() < 60.0,
            "area {area} outside the 20-60 mm^2 band the paper assumes"
        );
    }

    #[test]
    fn small_layers_draw_less_power_than_the_peak() {
        let m = model();
        let mapper = HardwareMapper::new(OcGeometry::paper()).expect("valid");
        let tiny = mapper
            .map_layer(&LayerSpec::Conv(ConvSpec {
                in_channels: 1,
                out_channels: 2,
                kernel: 3,
                stride: 1,
                padding: 1,
                in_height: 8,
                in_width: 8,
            }))
            .expect("ok");
        let tiny_power = m.layer_power(&tiny, Precision::w4a4(), false).total();
        let peak = m.max_power(Precision::w4a4()).total();
        assert!(tiny_power.mw() < peak.mw());
    }
}
