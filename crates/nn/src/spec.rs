//! Architecture-level network descriptions.
//!
//! The Lightator architecture simulator, the baseline accelerator models and
//! the benchmark harness all reason about networks *structurally* — how many
//! MACs and weights each layer has, what kernel sizes occur, where pooling
//! layers sit — without needing trained parameters. [`NetworkSpec`] captures
//! exactly that, and provides the topologies evaluated in the paper: LeNet,
//! VGG9, VGG13, VGG16 and AlexNet.

use crate::error::{NnError, Result};
use serde::{Deserialize, Serialize};

/// Structural description of a convolutional layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters).
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding per border.
    pub padding: usize,
    /// Input height.
    pub in_height: usize,
    /// Input width.
    pub in_width: usize,
}

impl ConvSpec {
    /// Output `[C, H, W]` shape.
    #[must_use]
    pub fn output_shape(&self) -> [usize; 3] {
        let oh = (self.in_height + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (self.in_width + 2 * self.padding - self.kernel) / self.stride + 1;
        [self.out_channels, oh, ow]
    }

    /// Number of weights (excluding bias).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Number of MAC operations per inference.
    #[must_use]
    pub fn mac_count(&self) -> usize {
        let [c, h, w] = self.output_shape();
        c * h * w * self.in_channels * self.kernel * self.kernel
    }

    /// Number of kernel strides — `k²`-element dot products — the Lightator
    /// mapper schedules onto bank arms: one per output position, per output
    /// channel, per input channel.
    #[must_use]
    pub fn stride_count(&self) -> usize {
        let [c, h, w] = self.output_shape();
        c * h * w * self.in_channels
    }
}

/// Structural description of a fully connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearSpec {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

impl LinearSpec {
    /// Number of weights (excluding bias).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.in_features * self.out_features
    }

    /// Number of MAC operations per inference.
    #[must_use]
    pub fn mac_count(&self) -> usize {
        self.weight_count()
    }
}

/// Structural description of a pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Channels (unchanged by pooling).
    pub channels: usize,
    /// Square pooling window.
    pub window: usize,
    /// Pooling stride (equal to `window` for non-overlapping pooling).
    pub stride: usize,
    /// Input height.
    pub in_height: usize,
    /// Input width.
    pub in_width: usize,
    /// `true` for average pooling (mappable onto CA banks), `false` for max.
    pub average: bool,
}

impl PoolSpec {
    /// Output `[C, H, W]` shape.
    #[must_use]
    pub fn output_shape(&self) -> [usize; 3] {
        [
            self.channels,
            (self.in_height - self.window) / self.stride + 1,
            (self.in_width - self.window) / self.stride + 1,
        ]
    }

    /// Equivalent MAC count when the pooling is executed as a weighted sum on
    /// CA banks (window² multiplications per output element); zero for max
    /// pooling, which stays in the electronic domain.
    #[must_use]
    pub fn ca_mac_count(&self) -> usize {
        if !self.average {
            return 0;
        }
        let [c, h, w] = self.output_shape();
        c * h * w * self.window * self.window
    }
}

/// One layer of a [`NetworkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Convolutional layer.
    Conv(ConvSpec),
    /// Fully connected layer.
    Linear(LinearSpec),
    /// Pooling layer.
    Pool(PoolSpec),
}

impl LayerSpec {
    /// Short name used in per-layer reports (`conv`, `fc`, `pool`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerSpec::Conv(_) => "conv",
            LayerSpec::Linear(_) => "fc",
            LayerSpec::Pool(_) => "pool",
        }
    }

    /// Whether the layer holds weights that must be mapped onto MRs.
    #[must_use]
    pub fn is_weighted(&self) -> bool {
        matches!(self, LayerSpec::Conv(_) | LayerSpec::Linear(_))
    }

    /// Number of weights mapped onto the optical core for this layer.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        match self {
            LayerSpec::Conv(c) => c.weight_count(),
            LayerSpec::Linear(l) => l.weight_count(),
            LayerSpec::Pool(_) => 0,
        }
    }

    /// Number of MAC operations executed per inference (for pooling, the CA
    /// weighted-sum equivalent).
    #[must_use]
    pub fn mac_count(&self) -> usize {
        match self {
            LayerSpec::Conv(c) => c.mac_count(),
            LayerSpec::Linear(l) => l.mac_count(),
            LayerSpec::Pool(p) => p.ca_mac_count(),
        }
    }

    /// Kernel size relevant for bank mapping: the convolution kernel, the
    /// pooling window, or 0 for fully connected layers (which are segmented
    /// into 9-MAC chunks regardless).
    #[must_use]
    pub fn kernel_size(&self) -> usize {
        match self {
            LayerSpec::Conv(c) => c.kernel,
            LayerSpec::Pool(p) => p.window,
            LayerSpec::Linear(_) => 0,
        }
    }

    /// Number of activation values produced by the layer.
    #[must_use]
    pub fn output_elements(&self) -> usize {
        match self {
            LayerSpec::Conv(c) => {
                let [a, b, d] = c.output_shape();
                a * b * d
            }
            LayerSpec::Linear(l) => l.out_features,
            LayerSpec::Pool(p) => {
                let [a, b, d] = p.output_shape();
                a * b * d
            }
        }
    }

    /// Number of activation values consumed by the layer.
    #[must_use]
    pub fn input_elements(&self) -> usize {
        match self {
            LayerSpec::Conv(c) => c.in_channels * c.in_height * c.in_width,
            LayerSpec::Linear(l) => l.in_features,
            LayerSpec::Pool(p) => p.channels * p.in_height * p.in_width,
        }
    }
}

/// A complete network topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    name: String,
    input_shape: [usize; 3],
    layers: Vec<LayerSpec>,
}

/// Incrementally builds a [`NetworkSpec`], tracking the current feature-map
/// shape so layer parameters do not have to be repeated.
#[derive(Debug, Clone)]
pub struct NetworkSpecBuilder {
    name: String,
    input_shape: [usize; 3],
    current: [usize; 3],
    flattened: bool,
    layers: Vec<LayerSpec>,
}

impl NetworkSpecBuilder {
    /// Starts a builder for a network with `[C, H, W]` inputs.
    #[must_use]
    pub fn new(name: &str, input_shape: [usize; 3]) -> Self {
        Self {
            name: name.to_string(),
            input_shape,
            current: input_shape,
            flattened: false,
            layers: Vec::new(),
        }
    }

    /// Appends a convolution with the given filter count, kernel, stride and
    /// padding.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] after a `linear` layer or for a
    /// kernel larger than the current feature map.
    pub fn conv(
        mut self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if self.flattened {
            return Err(NnError::InvalidParameter {
                name: "conv_after_linear",
                value: 0.0,
            });
        }
        let [c, h, w] = self.current;
        if h + 2 * padding < kernel || w + 2 * padding < kernel || stride == 0 || kernel == 0 {
            return Err(NnError::InvalidParameter {
                name: "kernel",
                value: kernel as f64,
            });
        }
        let spec = ConvSpec {
            in_channels: c,
            out_channels,
            kernel,
            stride,
            padding,
            in_height: h,
            in_width: w,
        };
        self.current = spec.output_shape();
        self.layers.push(LayerSpec::Conv(spec));
        Ok(self)
    }

    /// Appends a non-overlapping pooling layer (`average = true` maps onto
    /// CA banks, which requires the window to divide the feature map).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the window does not divide
    /// the current feature map.
    pub fn pool(self, window: usize, average: bool) -> Result<Self> {
        let [_, h, w] = self.current;
        if window == 0 || h % window != 0 || w % window != 0 {
            return Err(NnError::InvalidParameter {
                name: "window",
                value: window as f64,
            });
        }
        self.pool_strided(window, window, average)
    }

    /// Appends a pooling layer with an explicit stride (overlapping pooling,
    /// as used by AlexNet's 3×3/stride-2 max pools).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the window is larger than the
    /// feature map or the stride is zero.
    pub fn pool_strided(mut self, window: usize, stride: usize, average: bool) -> Result<Self> {
        if self.flattened {
            return Err(NnError::InvalidParameter {
                name: "pool_after_linear",
                value: 0.0,
            });
        }
        let [c, h, w] = self.current;
        if window == 0 || stride == 0 || window > h || window > w {
            return Err(NnError::InvalidParameter {
                name: "window",
                value: window as f64,
            });
        }
        let spec = PoolSpec {
            channels: c,
            window,
            stride,
            in_height: h,
            in_width: w,
            average,
        };
        self.current = spec.output_shape();
        self.layers.push(LayerSpec::Pool(spec));
        Ok(self)
    }

    /// Appends a fully connected layer; the first one implicitly flattens the
    /// current feature map.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for zero output features.
    pub fn linear(mut self, out_features: usize) -> Result<Self> {
        if out_features == 0 {
            return Err(NnError::InvalidParameter {
                name: "out_features",
                value: 0.0,
            });
        }
        let in_features = if self.flattened {
            self.current[0]
        } else {
            self.current[0] * self.current[1] * self.current[2]
        };
        self.flattened = true;
        self.current = [out_features, 1, 1];
        self.layers.push(LayerSpec::Linear(LinearSpec {
            in_features,
            out_features,
        }));
        Ok(self)
    }

    /// Finalises the specification.
    #[must_use]
    pub fn build(self) -> NetworkSpec {
        NetworkSpec {
            name: self.name,
            input_shape: self.input_shape,
            layers: self.layers,
        }
    }
}

impl NetworkSpec {
    /// Network name (e.g. `"LeNet"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input `[C, H, W]` shape.
    #[must_use]
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of mapped layers (conv + pool + fc), matching the paper's
    /// per-layer figures.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of weighted layers.
    #[must_use]
    pub fn weighted_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weighted()).count()
    }

    /// Total weights mapped onto the optical core.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(LayerSpec::weight_count).sum()
    }

    /// Total MACs per inference.
    #[must_use]
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(LayerSpec::mac_count).sum()
    }

    /// LeNet-5 on 28×28 grayscale inputs (MNIST): the 7 mapped layers of the
    /// paper's Fig. 8 (2 conv, 2 average pool, 3 fully connected).
    ///
    /// # Panics
    ///
    /// Never panics; the topology is statically valid.
    #[must_use]
    pub fn lenet() -> Self {
        NetworkSpecBuilder::new("LeNet", [1, 28, 28])
            .conv(6, 5, 1, 2)
            .and_then(|b| b.pool(2, true))
            .and_then(|b| b.conv(16, 5, 1, 0))
            .and_then(|b| b.pool(2, true))
            .and_then(|b| b.linear(120))
            .and_then(|b| b.linear(84))
            .and_then(|b| b.linear(10))
            // lightator: allow(no-unwrap) — documented "Never panics".
            .expect("LeNet topology is statically valid")
            .build()
    }

    /// VGG9 on 32×32 RGB inputs (CIFAR-10/100): 6 conv + 3 pool + 3 fc = the
    /// 12 mapped layers of the paper's Fig. 9.
    ///
    /// # Panics
    ///
    /// Never panics; the topology is statically valid.
    #[must_use]
    pub fn vgg9(classes: usize) -> Self {
        NetworkSpecBuilder::new("VGG9", [3, 32, 32])
            .conv(64, 3, 1, 1)
            .and_then(|b| b.conv(64, 3, 1, 1))
            .and_then(|b| b.pool(2, true))
            .and_then(|b| b.conv(128, 3, 1, 1))
            .and_then(|b| b.conv(128, 3, 1, 1))
            .and_then(|b| b.pool(2, true))
            .and_then(|b| b.conv(256, 3, 1, 1))
            .and_then(|b| b.conv(256, 3, 1, 1))
            .and_then(|b| b.pool(2, true))
            .and_then(|b| b.linear(512))
            .and_then(|b| b.linear(512))
            .and_then(|b| b.linear(classes))
            // lightator: allow(no-unwrap) — documented "Never panics".
            .expect("VGG9 topology is statically valid")
            .build()
    }

    /// VGG13 on 224×224 RGB inputs (used as the paper does when substituting
    /// YodaNN's VGG16 results).
    ///
    /// # Panics
    ///
    /// Never panics; the topology is statically valid.
    #[must_use]
    pub fn vgg13() -> Self {
        Self::vgg_imagenet("VGG13", &[2, 2, 2, 2, 2])
    }

    /// VGG16 on 224×224 RGB inputs (Fig. 10 workload).
    ///
    /// # Panics
    ///
    /// Never panics; the topology is statically valid.
    #[must_use]
    pub fn vgg16() -> Self {
        Self::vgg_imagenet("VGG16", &[2, 2, 3, 3, 3])
    }

    fn vgg_imagenet(name: &str, convs_per_stage: &[usize]) -> Self {
        let widths = [64usize, 128, 256, 512, 512];
        let mut builder = NetworkSpecBuilder::new(name, [3, 224, 224]);
        for (stage, &reps) in convs_per_stage.iter().enumerate() {
            for _ in 0..reps {
                builder = builder
                    .conv(widths[stage], 3, 1, 1)
                    // lightator: allow(no-unwrap) — documented "Never panics".
                    .expect("VGG topology is statically valid");
            }
            builder = builder
                .pool(2, false)
                // lightator: allow(no-unwrap) — documented "Never panics".
                .expect("VGG topology is statically valid");
        }
        builder
            .linear(4096)
            .and_then(|b| b.linear(4096))
            .and_then(|b| b.linear(1000))
            // lightator: allow(no-unwrap) — documented "Never panics".
            .expect("VGG topology is statically valid")
            .build()
    }

    /// AlexNet on 224×224 RGB inputs (Fig. 10 workload).
    ///
    /// # Panics
    ///
    /// Never panics; the topology is statically valid.
    #[must_use]
    pub fn alexnet() -> Self {
        NetworkSpecBuilder::new("AlexNet", [3, 224, 224])
            .conv(64, 11, 4, 2)
            .and_then(|b| b.pool_strided(3, 2, false))
            .and_then(|b| b.conv(192, 5, 1, 2))
            .and_then(|b| b.pool_strided(3, 2, false))
            .and_then(|b| b.conv(384, 3, 1, 1))
            .and_then(|b| b.conv(256, 3, 1, 1))
            .and_then(|b| b.conv(256, 3, 1, 1))
            .and_then(|b| b.pool_strided(3, 2, false))
            .and_then(|b| b.linear(4096))
            .and_then(|b| b.linear(4096))
            .and_then(|b| b.linear(1000))
            // lightator: allow(no-unwrap) — documented "Never panics".
            .expect("AlexNet topology is statically valid")
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_arithmetic() {
        let spec = ConvSpec {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_height: 32,
            in_width: 32,
        };
        assert_eq!(spec.output_shape(), [64, 32, 32]);
        assert_eq!(spec.weight_count(), 64 * 3 * 9);
        assert_eq!(spec.mac_count(), 64 * 32 * 32 * 27);
    }

    #[test]
    fn pool_spec_arithmetic() {
        let spec = PoolSpec {
            channels: 16,
            window: 2,
            stride: 2,
            in_height: 10,
            in_width: 10,
            average: true,
        };
        assert_eq!(spec.output_shape(), [16, 5, 5]);
        assert_eq!(spec.ca_mac_count(), 16 * 25 * 4);
        let max = PoolSpec {
            average: false,
            ..spec
        };
        assert_eq!(max.ca_mac_count(), 0);
        // Overlapping pooling, AlexNet style: 3x3 window, stride 2 on 55x55.
        let overlapping = PoolSpec {
            channels: 64,
            window: 3,
            stride: 2,
            in_height: 55,
            in_width: 55,
            average: false,
        };
        assert_eq!(overlapping.output_shape(), [64, 27, 27]);
    }

    #[test]
    fn lenet_matches_paper_layer_count() {
        let lenet = NetworkSpec::lenet();
        // Fig. 8 shows 7 mapped layers (L1..L7): conv, pool, conv, pool, 3 fc.
        assert_eq!(lenet.layer_count(), 7);
        assert_eq!(lenet.weighted_layer_count(), 5);
        // Classic LeNet-5 sizes: conv2 output 16x5x5 gives a 400-wide fc1.
        if let LayerSpec::Linear(fc1) = lenet.layers()[4] {
            assert_eq!(fc1.in_features, 400);
            assert_eq!(fc1.out_features, 120);
        } else {
            panic!("layer 5 of LeNet must be fully connected");
        }
    }

    #[test]
    fn vgg9_matches_paper_layer_count() {
        let vgg9 = NetworkSpec::vgg9(10);
        // Fig. 9 shows 12 mapped layers (L1..L12).
        assert_eq!(vgg9.layer_count(), 12);
        assert_eq!(vgg9.weighted_layer_count(), 9, "VGG9 has 9 weighted layers");
        assert!(
            vgg9.total_macs() > 100_000_000,
            "VGG9 on CIFAR is >100 MMAC"
        );
    }

    #[test]
    fn vgg16_and_alexnet_have_expected_weighted_layers() {
        assert_eq!(NetworkSpec::vgg16().weighted_layer_count(), 16);
        assert_eq!(NetworkSpec::vgg13().weighted_layer_count(), 13);
        assert_eq!(NetworkSpec::alexnet().weighted_layer_count(), 8);
        // VGG16 is roughly 15.5 GMAC at 224x224; accept a generous band.
        let macs = NetworkSpec::vgg16().total_macs();
        assert!(
            macs > 10_000_000_000 && macs < 20_000_000_000,
            "VGG16 MACs {macs}"
        );
        // AlexNet is roughly 0.7 GMAC.
        let macs = NetworkSpec::alexnet().total_macs();
        assert!(
            macs > 400_000_000 && macs < 1_500_000_000,
            "AlexNet MACs {macs}"
        );
    }

    #[test]
    fn builder_rejects_invalid_orders() {
        let builder = NetworkSpecBuilder::new("bad", [1, 8, 8])
            .linear(4)
            .expect("ok");
        assert!(builder.conv(4, 3, 1, 1).is_err());
        let builder = NetworkSpecBuilder::new("bad", [1, 8, 8]);
        assert!(
            builder.pool(3, true).is_err(),
            "window must divide the extent"
        );
        let builder = NetworkSpecBuilder::new("bad", [1, 4, 4]);
        assert!(
            builder.conv(4, 7, 1, 0).is_err(),
            "kernel larger than input"
        );
    }

    #[test]
    fn spec_counts_are_consistent() {
        let net = NetworkSpec::vgg9(100);
        let weighted_weight_sum: usize = net
            .layers()
            .iter()
            .filter(|l| l.is_weighted())
            .map(|l| l.weight_count())
            .sum();
        assert_eq!(weighted_weight_sum, net.total_weights());
        for layer in net.layers() {
            if layer.is_weighted() {
                assert!(layer.weight_count() > 0);
                assert!(layer.mac_count() >= layer.weight_count());
            }
        }
    }

    #[test]
    fn last_linear_matches_class_count() {
        for classes in [10, 100] {
            let net = NetworkSpec::vgg9(classes);
            if let Some(LayerSpec::Linear(last)) = net.layers().last() {
                assert_eq!(last.out_features, classes);
            } else {
                panic!("VGG9 must end with a fully connected layer");
            }
        }
    }
}
