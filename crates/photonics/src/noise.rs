//! Analog noise and non-ideality injection.
//!
//! The functional accuracy experiments (paper Table 1) run quantized DNNs
//! through the photonic MAC datapath. This module centralises the stochastic
//! error sources applied to analog quantities: relative amplitude noise on
//! VCSEL outputs, detector-referred additive noise, and the finite resolution
//! of MR tuning DACs.
//!
//! Gaussian samples come from a counter-based (Philox-style) generator: each
//! draw is a pure function of `(seed, frame index, channel, element index)`,
//! with `channel` tagging the physical noise source (intensity / weight /
//! detection). Two consequences follow directly from the keying:
//!
//! * **Per-channel independence.** Zeroing one channel's sigma leaves every
//!   other channel's draw sequence bit-identical, so noise-ablation sweeps
//!   compare exactly what they claim to compare. (The previous sequential
//!   Box–Muller stream shared one cached spare across channels, so ablating
//!   one channel silently shifted the others.)
//! * **Order independence.** Draws need no sequential RNG state, so MAC
//!   loops can be tiled across threads and still produce the sequential
//!   bits exactly.

use serde::{Deserialize, Serialize};

/// Configuration of the analog non-idealities applied to the photonic MAC.
///
/// All noise magnitudes are expressed relative to the full-scale signal so
/// the same configuration applies regardless of the absolute laser power
/// chosen for a link budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Relative RMS amplitude noise of each modulated VCSEL (RIN + driver).
    pub vcsel_relative_sigma: f64,
    /// Detector-referred additive RMS noise relative to full scale
    /// (shot + thermal, folded into one knob for architecture studies).
    pub detector_relative_sigma: f64,
    /// RMS error of the realised MR weight caused by finite tuning-DAC
    /// resolution and thermal drift, in absolute weight units.
    pub weight_sigma: f64,
    /// Whether inter-channel crosstalk should be applied by arm simulations.
    pub apply_crosstalk: bool,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            vcsel_relative_sigma: 0.004,
            detector_relative_sigma: 0.003,
            weight_sigma: 0.004,
            apply_crosstalk: true,
        }
    }
}

impl NoiseConfig {
    /// A perfectly ideal (noise-free, crosstalk-free) configuration.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            vcsel_relative_sigma: 0.0,
            detector_relative_sigma: 0.0,
            weight_sigma: 0.0,
            apply_crosstalk: false,
        }
    }

    /// Returns `true` when every stochastic term is zero.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.vcsel_relative_sigma == 0.0
            && self.detector_relative_sigma == 0.0
            && self.weight_sigma == 0.0
            && !self.apply_crosstalk
    }

    /// Scales every stochastic term by `factor` (useful for sensitivity
    /// sweeps / the noise ablation bench).
    ///
    /// A sigma is an RMS magnitude, so a negative scale has no physical
    /// meaning; negative (or NaN) factors are clamped to zero, making
    /// `scaled(-1.0)` equivalent to zeroing every stochastic term.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let factor = factor.max(0.0);
        Self {
            vcsel_relative_sigma: self.vcsel_relative_sigma * factor,
            detector_relative_sigma: self.detector_relative_sigma * factor,
            weight_sigma: self.weight_sigma * factor,
            apply_crosstalk: self.apply_crosstalk,
        }
    }
}

/// The physical noise source a draw belongs to. Each channel keys an
/// independent Philox stream, so the channels never share entropy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseChannel {
    /// VCSEL amplitude noise on the modulated intensities.
    Intensity,
    /// Realised MR weight error (tuning-DAC resolution + thermal drift).
    Weight,
    /// Detector-referred additive noise on the balanced output.
    Detection,
}

impl NoiseChannel {
    fn tag(self) -> u64 {
        match self {
            NoiseChannel::Intensity => 0,
            NoiseChannel::Weight => 1,
            NoiseChannel::Detection => 2,
        }
    }
}

/// Philox-2x64 round multiplier (Salmon et al., "Parallel random numbers:
/// as easy as 1, 2, 3", SC'11).
const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
/// Weyl sequence increment applied to the Philox key each round (the golden
/// ratio in 0.64 fixed point, as in the reference implementation).
const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;
/// Odd multiplier mixing the channel tag into the Philox key so the three
/// channel streams are decorrelated even under identical counters.
const CHANNEL_KEY_MUL: u64 = 0xA076_1D64_78BD_642F;

/// A counter-based Gaussian generator (Philox-2x64, 10 rounds).
///
/// Unlike a sequential RNG, a `CounterRng` carries no mutable stream state:
/// every draw is a pure function of `(seed, frame, channel, element)`. Draws
/// can therefore be evaluated in any order — or concurrently — and still
/// reproduce the exact bits of a sequential walk, and each draw consumes a
/// whole Philox block (no cached Box–Muller spare), so ablating one channel
/// cannot shift another channel's sequence.
///
/// ```
/// use lightator_photonics::noise::{CounterRng, NoiseChannel};
///
/// let rng = CounterRng::new(7, 0);
/// let a = rng.standard_normal(NoiseChannel::Intensity, 3);
/// let b = rng.standard_normal(NoiseChannel::Intensity, 3);
/// assert_eq!(a.to_bits(), b.to_bits()); // pure function of the key
/// assert!(a.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    seed: u64,
    frame: u64,
}

impl CounterRng {
    /// Creates a generator for one `(seed, frame)` noise stream.
    #[must_use]
    pub fn new(seed: u64, frame: u64) -> Self {
        Self { seed, frame }
    }

    /// The platform seed this stream is keyed by.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The frame index this stream is keyed by.
    #[must_use]
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// One Philox-2x64-10 block for `(seed, frame, channel, element)`.
    fn block(&self, channel: NoiseChannel, element: u64) -> [u64; 2] {
        let mut key = self.seed ^ channel.tag().wrapping_add(1).wrapping_mul(CHANNEL_KEY_MUL);
        let mut ctr = [element, self.frame];
        for _ in 0..10 {
            let product = u128::from(PHILOX_M) * u128::from(ctr[0]);
            let hi = (product >> 64) as u64;
            let lo = product as u64;
            ctr = [hi ^ key ^ ctr[1], lo];
            key = key.wrapping_add(PHILOX_W);
        }
        ctr
    }

    /// One standard-normal draw — a pure function of
    /// `(seed, frame, channel, element)`.
    ///
    /// Both uniforms of the Philox block feed a single Box–Muller cosine
    /// branch; no spare is cached, so draws never couple across channels or
    /// elements.
    #[must_use]
    pub fn standard_normal(&self, channel: NoiseChannel, element: u64) -> f64 {
        let [x0, x1] = self.block(channel, element);
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        // u1 ∈ (0, 1] keeps the logarithm finite; u2 ∈ [0, 1).
        let u1 = ((x0 >> 11) as f64 + 1.0) * SCALE;
        let u2 = (x1 >> 11) as f64 * SCALE;
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Draws one sample from `N(mean, sigma²)` at `(channel, element)`.
    ///
    /// A `sigma` of zero returns `mean` exactly. Because draws are keyed
    /// rather than streamed, the early return cannot shift any other draw.
    #[must_use]
    pub fn sample(&self, channel: NoiseChannel, element: u64, mean: f64, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return mean;
        }
        mean + sigma * self.standard_normal(channel, element)
    }
}

/// Applies the configured non-idealities to analog quantities.
///
/// The injector is positioned on a `(seed, frame)` stream with
/// [`NoiseInjector::begin_frame`]; individual perturbations are then keyed
/// by `(channel, element)` and take `&self`, so callers may evaluate them
/// in any order (including concurrently) without changing a single bit.
#[derive(Debug, Clone)]
pub struct NoiseInjector {
    config: NoiseConfig,
    rng: CounterRng,
}

impl NoiseInjector {
    /// Creates an injector for a configuration, positioned at
    /// `(seed 0, frame 0)` until [`NoiseInjector::begin_frame`] is called.
    #[must_use]
    pub fn new(config: NoiseConfig) -> Self {
        Self {
            config,
            rng: CounterRng::new(0, 0),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// The counter-based generator the injector draws from.
    #[must_use]
    pub fn rng(&self) -> &CounterRng {
        &self.rng
    }

    /// Repositions the injector on the `(seed, frame)` noise stream. Every
    /// draw after this call is a pure function of
    /// `(seed, frame, channel, element)`.
    pub fn begin_frame(&mut self, seed: u64, frame: u64) {
        self.rng = CounterRng::new(seed, frame);
    }

    /// Perturbs a normalised VCSEL intensity (full scale = 1.0). The result
    /// is clamped to `[0, 1]` because intensity cannot be negative nor exceed
    /// the saturated laser output.
    #[must_use]
    pub fn perturb_intensity(&self, element: u64, intensity: f64) -> f64 {
        self.rng
            .sample(
                NoiseChannel::Intensity,
                element,
                intensity,
                self.config.vcsel_relative_sigma,
            )
            .clamp(0.0, 1.0)
    }

    /// Perturbs a realised MR weight (transmission in `[0, 1]`).
    #[must_use]
    pub fn perturb_weight(&self, element: u64, weight: f64) -> f64 {
        self.rng
            .sample(
                NoiseChannel::Weight,
                element,
                weight,
                self.config.weight_sigma,
            )
            .clamp(0.0, 1.0)
    }

    /// Adds detector-referred noise to a normalised MAC result (full scale
    /// = 1.0 per accumulated term; the caller passes the already-summed
    /// value so the noise is applied once per detection event, as in
    /// hardware).
    #[must_use]
    pub fn perturb_detection(&self, element: u64, value: f64) -> f64 {
        self.rng.sample(
            NoiseChannel::Detection,
            element,
            value,
            self.config.detector_relative_sigma,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_config_reports_ideal() {
        assert!(NoiseConfig::ideal().is_ideal());
        assert!(!NoiseConfig::default().is_ideal());
    }

    #[test]
    fn scaled_config_scales_all_terms() {
        let doubled = NoiseConfig::default().scaled(2.0);
        let base = NoiseConfig::default();
        assert!((doubled.vcsel_relative_sigma - 2.0 * base.vcsel_relative_sigma).abs() < 1e-15);
        assert!(
            (doubled.detector_relative_sigma - 2.0 * base.detector_relative_sigma).abs() < 1e-15
        );
        assert!((doubled.weight_sigma - 2.0 * base.weight_sigma).abs() < 1e-15);
    }

    #[test]
    fn scaled_clamps_negative_factors_to_ideal_sigmas() {
        let flipped = NoiseConfig::default().scaled(-3.0);
        assert_eq!(flipped.vcsel_relative_sigma, 0.0);
        assert_eq!(flipped.detector_relative_sigma, 0.0);
        assert_eq!(flipped.weight_sigma, 0.0);
        // Crosstalk is not a stochastic term and is preserved.
        assert!(flipped.apply_crosstalk);
        let nan = NoiseConfig::default().scaled(f64::NAN);
        assert_eq!(nan.weight_sigma, 0.0);
    }

    #[test]
    fn counter_rng_is_a_pure_function_of_its_key() {
        let rng = CounterRng::new(42, 3);
        for element in [0u64, 1, 17, u64::MAX] {
            for channel in [
                NoiseChannel::Intensity,
                NoiseChannel::Weight,
                NoiseChannel::Detection,
            ] {
                let a = rng.standard_normal(channel, element);
                let b = rng.standard_normal(channel, element);
                assert_eq!(a.to_bits(), b.to_bits());
                assert!(a.is_finite());
            }
        }
        // Any coordinate change produces a different draw.
        let base = rng.standard_normal(NoiseChannel::Intensity, 5);
        assert_ne!(
            base.to_bits(),
            CounterRng::new(43, 3)
                .standard_normal(NoiseChannel::Intensity, 5)
                .to_bits()
        );
        assert_ne!(
            base.to_bits(),
            CounterRng::new(42, 4)
                .standard_normal(NoiseChannel::Intensity, 5)
                .to_bits()
        );
        assert_ne!(
            base.to_bits(),
            rng.standard_normal(NoiseChannel::Weight, 5).to_bits()
        );
        assert_ne!(
            base.to_bits(),
            rng.standard_normal(NoiseChannel::Intensity, 6).to_bits()
        );
    }

    #[test]
    fn counter_rng_zero_sigma_is_deterministic() {
        let rng = CounterRng::new(1, 0);
        assert_eq!(rng.sample(NoiseChannel::Weight, 9, 0.7, 0.0), 0.7);
    }

    #[test]
    fn counter_rng_statistics_are_reasonable() {
        let rng = CounterRng::new(42, 0);
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n)
            .map(|element| rng.sample(NoiseChannel::Detection, element, 1.0, 0.5))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "sample mean {mean}");
        assert!(
            (var.sqrt() - 0.5).abs() < 0.02,
            "sample sigma {}",
            var.sqrt()
        );
    }

    #[test]
    fn perturbed_values_stay_in_physical_range() {
        let mut injector = NoiseInjector::new(NoiseConfig::default().scaled(20.0));
        injector.begin_frame(3, 0);
        for element in 0..1_000u64 {
            let i = injector.perturb_intensity(element, 0.98);
            assert!((0.0..=1.0).contains(&i));
            let w = injector.perturb_weight(element, 0.02);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn ideal_injector_is_transparent() {
        let mut injector = NoiseInjector::new(NoiseConfig::ideal());
        injector.begin_frame(5, 2);
        assert_eq!(injector.perturb_intensity(0, 0.33), 0.33);
        assert_eq!(injector.perturb_weight(1, 0.66), 0.66);
        assert_eq!(injector.perturb_detection(2, -0.4), -0.4);
    }

    #[test]
    fn detection_noise_can_be_negative() {
        let mut injector = NoiseInjector::new(NoiseConfig {
            detector_relative_sigma: 0.5,
            ..NoiseConfig::default()
        });
        injector.begin_frame(11, 0);
        let saw_below = (0..200u64).any(|element| injector.perturb_detection(element, 0.0) < 0.0);
        assert!(
            saw_below,
            "detector noise must be able to push values negative"
        );
    }

    /// Regression test for the cross-channel spare-coupling bug: with the
    /// old sequential Box–Muller stream, zeroing one channel's sigma (which
    /// skipped its draws) shifted every later draw in the *other* channels.
    /// With keyed draws, ablating any one channel leaves the other two
    /// bit-identical.
    #[test]
    fn zeroing_one_channel_leaves_other_channels_bit_identical() {
        let base = NoiseConfig::default();
        let ablations = [
            NoiseConfig {
                vcsel_relative_sigma: 0.0,
                ..base
            },
            NoiseConfig {
                weight_sigma: 0.0,
                ..base
            },
            NoiseConfig {
                detector_relative_sigma: 0.0,
                ..base
            },
        ];
        for ablated_config in ablations {
            let mut full = NoiseInjector::new(base);
            let mut ablated = NoiseInjector::new(ablated_config);
            full.begin_frame(7, 13);
            ablated.begin_frame(7, 13);
            for element in 0..64u64 {
                if ablated_config.vcsel_relative_sigma != 0.0 {
                    assert_eq!(
                        full.perturb_intensity(element, 0.5).to_bits(),
                        ablated.perturb_intensity(element, 0.5).to_bits()
                    );
                }
                if ablated_config.weight_sigma != 0.0 {
                    assert_eq!(
                        full.perturb_weight(element, 0.5).to_bits(),
                        ablated.perturb_weight(element, 0.5).to_bits()
                    );
                }
                if ablated_config.detector_relative_sigma != 0.0 {
                    assert_eq!(
                        full.perturb_detection(element, 0.5).to_bits(),
                        ablated.perturb_detection(element, 0.5).to_bits()
                    );
                }
            }
        }
    }
}
