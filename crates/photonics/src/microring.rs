//! Micro-ring resonator (MR) model.
//!
//! The MR is the fundamental weighting element of the Lightator optical core:
//! an add-drop ring whose resonant wavelength is actively tuned (thermally or
//! through a PIN junction) so that its through-port transmission at the
//! wavelength of an incoming activation equals the mapped weight value
//! (paper §2, Fig. 1).
//!
//! The model follows the standard Lorentzian approximation of an add-drop
//! resonator: the through port exhibits a notch of configurable extinction at
//! the resonant wavelength and the drop port the complementary peak. Tuning
//! shifts the resonance; the heater power required is proportional to the
//! resonance shift.

use crate::error::{PhotonicsError, Result};
use crate::units::{Power, Wavelength};
use serde::{Deserialize, Serialize};

/// Static design parameters of a micro-ring resonator.
///
/// The defaults describe a representative 10 µm-radius silicon MR in the
/// C band with a loaded quality factor of 8 000 and a 20 dB through-port
/// extinction ratio, comparable to the devices used by non-coherent photonic
/// accelerators such as CrossLight and Robin.
///
/// ```
/// use lightator_photonics::microring::MicroringConfig;
/// let cfg = MicroringConfig::default();
/// assert!(cfg.fwhm().nm() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroringConfig {
    /// Effective refractive index of the ring waveguide.
    pub effective_index: f64,
    /// Ring circumference in micrometres.
    pub circumference_um: f64,
    /// Order of the resonant mode used for weighting.
    pub resonance_order: u32,
    /// Loaded quality factor (resonant wavelength / FWHM).
    pub quality_factor: f64,
    /// Through-port extinction ratio at resonance, in dB (positive).
    pub extinction_ratio_db: f64,
    /// Insertion loss of the ring far from resonance, in dB (positive).
    pub insertion_loss_db: f64,
    /// Thermal tuning efficiency in mW of heater power per nm of shift.
    pub tuning_efficiency_mw_per_nm: f64,
    /// Maximum resonance shift achievable by the tuning mechanism, in nm.
    pub tunable_range_nm: f64,
    /// Static (bias) power of the tuning circuit in mW, drawn whenever the
    /// ring is locked, even at zero detuning.
    pub static_tuning_power_mw: f64,
}

impl Default for MicroringConfig {
    fn default() -> Self {
        Self {
            effective_index: 2.36,
            circumference_um: 62.83, // 10 um radius ring
            resonance_order: 96,
            quality_factor: 8_000.0,
            extinction_ratio_db: 20.0,
            insertion_loss_db: 0.05,
            tuning_efficiency_mw_per_nm: 2.2,
            tunable_range_nm: 1.2,
            static_tuning_power_mw: 0.02,
        }
    }
}

impl MicroringConfig {
    /// Validates the configuration, returning an error naming the first
    /// parameter that is non-finite or non-positive.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] when a parameter is not a
    /// positive finite number (the static tuning power may be zero).
    pub fn validate(&self) -> Result<()> {
        let strictly_positive = [
            ("effective_index", self.effective_index),
            ("circumference_um", self.circumference_um),
            ("quality_factor", self.quality_factor),
            ("extinction_ratio_db", self.extinction_ratio_db),
            (
                "tuning_efficiency_mw_per_nm",
                self.tuning_efficiency_mw_per_nm,
            ),
            ("tunable_range_nm", self.tunable_range_nm),
        ];
        for (name, value) in strictly_positive {
            if !value.is_finite() || value <= 0.0 {
                return Err(PhotonicsError::InvalidParameter { name, value });
            }
        }
        let non_negative = [
            ("insertion_loss_db", self.insertion_loss_db),
            ("static_tuning_power_mw", self.static_tuning_power_mw),
        ];
        for (name, value) in non_negative {
            if !value.is_finite() || value < 0.0 {
                return Err(PhotonicsError::InvalidParameter { name, value });
            }
        }
        if self.resonance_order == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "resonance_order",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// Natural (untuned) resonant wavelength, `λ_res = n_eff · L / m`
    /// (paper §2).
    #[must_use]
    pub fn natural_resonance(&self) -> Wavelength {
        let circumference_nm = self.circumference_um * 1e3;
        Wavelength::from_nm(
            self.effective_index * circumference_nm / f64::from(self.resonance_order),
        )
    }

    /// Full width at half maximum of the resonance dip.
    #[must_use]
    pub fn fwhm(&self) -> Wavelength {
        Wavelength::from_nm(self.natural_resonance().nm() / self.quality_factor)
    }

    /// Free spectral range approximated as `λ² / (n_g · L)` with the group
    /// index taken equal to the effective index.
    #[must_use]
    pub fn free_spectral_range(&self) -> Wavelength {
        let lambda_m = self.natural_resonance().meters();
        let circumference_m = self.circumference_um * 1e-6;
        let fsr_m = lambda_m * lambda_m / (self.effective_index * circumference_m);
        Wavelength::from_nm(fsr_m * 1e9)
    }

    /// Minimum through-port transmission (at exact resonance), linear scale.
    #[must_use]
    pub fn minimum_transmission(&self) -> f64 {
        10f64.powf(-self.extinction_ratio_db / 10.0)
    }

    /// Off-resonance transmission including the insertion loss, linear scale.
    #[must_use]
    pub fn maximum_transmission(&self) -> f64 {
        10f64.powf(-self.insertion_loss_db / 10.0)
    }
}

/// An actively tuned micro-ring resonator holding one weight value.
///
/// The ring is created from a [`MicroringConfig`] and a *target* wavelength —
/// the WDM channel whose intensity this ring is supposed to weight. Tuning
/// the ring moves its resonance relative to that channel, which changes the
/// through-port transmission seen by the channel and thereby imprints the
/// weight (paper Fig. 1).
///
/// ```
/// use lightator_photonics::microring::{MicroringConfig, MicroringResonator};
/// use lightator_photonics::units::Wavelength;
///
/// # fn main() -> Result<(), lightator_photonics::PhotonicsError> {
/// let channel = Wavelength::from_nm(1550.0);
/// let mut mr = MicroringResonator::new(MicroringConfig::default(), channel)?;
/// mr.set_weight(0.5)?;
/// assert!((mr.weight() - 0.5).abs() < 1e-9);
/// // The transmission realised at the channel wavelength tracks the weight.
/// assert!((mr.transmission_at(channel) - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroringResonator {
    config: MicroringConfig,
    channel: Wavelength,
    /// Current resonance detuning relative to the channel wavelength, nm.
    detuning_nm: f64,
    /// The ideal weight most recently requested through [`set_weight`].
    ///
    /// [`set_weight`]: MicroringResonator::set_weight
    weight: f64,
    /// Whether the tuning circuit is powered (a parked ring consumes nothing).
    active: bool,
}

impl MicroringResonator {
    /// Creates a ring assigned to weight the given WDM channel.
    ///
    /// The ring starts parked far off resonance (weight ≈ 1, inactive tuning).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn new(config: MicroringConfig, channel: Wavelength) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            channel,
            detuning_nm: config.tunable_range_nm,
            weight: 1.0,
            active: false,
        })
    }

    /// The static configuration of this ring.
    #[must_use]
    pub fn config(&self) -> &MicroringConfig {
        &self.config
    }

    /// The WDM channel this ring weights.
    #[must_use]
    pub fn channel(&self) -> Wavelength {
        self.channel
    }

    /// The most recently programmed ideal weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Current detuning between the ring resonance and the channel, in nm.
    #[must_use]
    pub fn detuning_nm(&self) -> f64 {
        self.detuning_nm
    }

    /// Whether the tuning circuit is currently powered.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Powers down the tuning circuit, parking the ring far off resonance so
    /// the channel passes through unweighted (transmission ≈ 1).
    pub fn park(&mut self) {
        self.detuning_nm = self.config.tunable_range_nm;
        self.weight = 1.0;
        self.active = false;
    }

    /// Through-port transmission at an arbitrary probe wavelength, for the
    /// current tuning state. Lorentzian notch model.
    #[must_use]
    pub fn transmission_at(&self, probe: Wavelength) -> f64 {
        let resonance_nm = self.channel.nm() + self.detuning_nm;
        let delta = probe.nm() - resonance_nm;
        let half_width = self.config.fwhm().nm() / 2.0;
        let lorentz = 1.0 / (1.0 + (delta / half_width).powi(2));
        let t_min = self.config.minimum_transmission();
        let t_max = self.config.maximum_transmission();
        t_max * (1.0 - (1.0 - t_min) * lorentz)
    }

    /// Drop-port transmission at a probe wavelength (complementary Lorentzian
    /// peak), useful for modelling the drop-bus of compressive-acquisition
    /// banks.
    #[must_use]
    pub fn drop_transmission_at(&self, probe: Wavelength) -> f64 {
        let resonance_nm = self.channel.nm() + self.detuning_nm;
        let delta = probe.nm() - resonance_nm;
        let half_width = self.config.fwhm().nm() / 2.0;
        let lorentz = 1.0 / (1.0 + (delta / half_width).powi(2));
        let t_min = self.config.minimum_transmission();
        let t_max = self.config.maximum_transmission();
        t_max * (1.0 - t_min) * lorentz
    }

    /// Transmission realised at the assigned channel wavelength.
    #[must_use]
    pub fn channel_transmission(&self) -> f64 {
        self.transmission_at(self.channel)
    }

    /// Programs the ring so that the channel transmission equals `weight`.
    ///
    /// The required detuning is obtained by inverting the Lorentzian notch:
    /// `T(δ) = T_max·(1 − (1 − T_min)/(1 + (δ/HWHM)²))`. Weights below the
    /// extinction floor are clamped to the floor; weights above the
    /// off-resonance transmission are clamped to that ceiling (both reflect
    /// the physical limits of the device).
    ///
    /// Weights that would require detuning beyond the tunable range (values
    /// very close to 1.0) are realised at the edge of the range, i.e. with
    /// the best transmission the device can physically provide.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::WeightOutOfRange`] if `weight` is not in
    /// `[0, 1]` or is not finite.
    pub fn set_weight(&mut self, weight: f64) -> Result<()> {
        if !weight.is_finite() || !(0.0..=1.0).contains(&weight) {
            return Err(PhotonicsError::WeightOutOfRange { weight });
        }
        let t_min = self.config.minimum_transmission();
        let t_max = self.config.maximum_transmission();
        let clamped = (weight / t_max).clamp(t_min, 1.0 - 1e-12);
        // Invert the Lorentzian: clamped = 1 - (1 - t_min) * L, with
        // L = 1 / (1 + (δ/HWHM)²).
        let lorentz = (1.0 - clamped) / (1.0 - t_min);
        let half_width = self.config.fwhm().nm() / 2.0;
        let detuning = if lorentz >= 1.0 {
            0.0
        } else {
            half_width * ((1.0 - lorentz) / lorentz).sqrt()
        };
        self.detuning_nm = detuning.min(self.config.tunable_range_nm);
        self.weight = weight;
        self.active = true;
        Ok(())
    }

    /// Heater/PIN power currently consumed by the tuning circuit.
    ///
    /// The tuning shift is measured from the parked position (the edge of the
    /// tunable range), matching the convention that weighting a channel
    /// requires actively pulling the resonance towards it.
    #[must_use]
    pub fn tuning_power(&self) -> Power {
        if !self.active {
            return Power::zero();
        }
        let shift_nm = (self.config.tunable_range_nm - self.detuning_nm).abs();
        Power::from_mw(
            self.config.static_tuning_power_mw + shift_nm * self.config.tuning_efficiency_mw_per_nm,
        )
    }

    /// Applies the ring to an input optical power on its channel, returning
    /// the through-port power.
    #[must_use]
    pub fn weight_power(&self, input: Power) -> Power {
        input.attenuated_by(self.channel_transmission())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> MicroringResonator {
        MicroringResonator::new(MicroringConfig::default(), Wavelength::from_nm(1550.0))
            .expect("default config is valid")
    }

    #[test]
    fn natural_resonance_matches_formula() {
        let cfg = MicroringConfig::default();
        let expected =
            cfg.effective_index * cfg.circumference_um * 1e3 / f64::from(cfg.resonance_order);
        assert!((cfg.natural_resonance().nm() - expected).abs() < 1e-9);
        // Should land in the vicinity of the C band for the default geometry.
        assert!(cfg.natural_resonance().nm() > 1400.0 && cfg.natural_resonance().nm() < 1700.0);
    }

    #[test]
    fn fwhm_is_resonance_over_q() {
        let cfg = MicroringConfig::default();
        assert!(
            (cfg.fwhm().nm() - cfg.natural_resonance().nm() / cfg.quality_factor).abs() < 1e-12
        );
    }

    #[test]
    fn fsr_positive_and_larger_than_fwhm() {
        let cfg = MicroringConfig::default();
        assert!(cfg.free_spectral_range().nm() > cfg.fwhm().nm());
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = MicroringConfig {
            quality_factor: -5.0,
            ..MicroringConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(PhotonicsError::InvalidParameter {
                name: "quality_factor",
                ..
            })
        ));
        let cfg = MicroringConfig {
            resonance_order: 0,
            ..MicroringConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn parked_ring_transmits_nearly_everything() {
        let mr = ring();
        assert!(!mr.is_active());
        assert!(mr.channel_transmission() > 0.9);
        assert_eq!(mr.tuning_power(), Power::zero());
    }

    #[test]
    fn weight_programming_round_trips_through_transmission() {
        let mut mr = ring();
        for w in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9] {
            mr.set_weight(w).expect("weight is representable");
            let realised = mr.channel_transmission();
            assert!(
                (realised - w).abs() < 0.02,
                "weight {w} realised as {realised}"
            );
        }
    }

    #[test]
    fn extreme_weights_clamp_to_device_limits() {
        let mut mr = ring();
        mr.set_weight(0.0)
            .expect("zero weight clamps to extinction floor");
        assert!(mr.channel_transmission() <= mr.config().minimum_transmission() * 1.5);
        // A weight of exactly 1.0 requires infinite detuning in the ideal
        // model, so the device realises it at the edge of its tunable range.
        mr.set_weight(1.0)
            .expect("clamps to the tunable-range edge");
        assert!(mr.channel_transmission() > 0.9);
        assert!(mr.detuning_nm() <= mr.config().tunable_range_nm);
    }

    #[test]
    fn rejects_out_of_range_weights() {
        let mut mr = ring();
        assert!(matches!(
            mr.set_weight(-0.1),
            Err(PhotonicsError::WeightOutOfRange { .. })
        ));
        assert!(matches!(
            mr.set_weight(1.5),
            Err(PhotonicsError::WeightOutOfRange { .. })
        ));
        assert!(mr.set_weight(f64::NAN).is_err());
    }

    #[test]
    fn stronger_attenuation_costs_more_tuning_power() {
        let mut mr = ring();
        mr.set_weight(0.9).expect("ok");
        let p_light = mr.tuning_power();
        mr.set_weight(0.1).expect("ok");
        let p_heavy = mr.tuning_power();
        assert!(
            p_heavy.mw() > p_light.mw(),
            "pulling the resonance closer to the channel must cost more power"
        );
    }

    #[test]
    fn park_resets_power_and_weight() {
        let mut mr = ring();
        mr.set_weight(0.3).expect("ok");
        assert!(mr.tuning_power().mw() > 0.0);
        mr.park();
        assert_eq!(mr.tuning_power(), Power::zero());
        assert!((mr.weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn off_channel_wavelengths_are_barely_affected() {
        let mut mr = ring();
        mr.set_weight(0.1).expect("ok");
        // A probe 10 FWHM away should pass nearly untouched.
        let far = Wavelength::from_nm(1550.0 + 10.0 * mr.config().fwhm().nm());
        assert!(mr.transmission_at(far) > 0.9);
    }

    #[test]
    fn through_and_drop_ports_are_complementary_at_resonance() {
        let mut mr = ring();
        mr.set_weight(0.5).expect("ok");
        let probe = Wavelength::from_nm(mr.channel().nm() + mr.detuning_nm());
        let thru = mr.transmission_at(probe);
        let drop = mr.drop_transmission_at(probe);
        let loss = mr.config().maximum_transmission();
        assert!((thru + drop - loss).abs() < 1e-9);
    }

    #[test]
    fn weight_power_scales_input() {
        let mut mr = ring();
        mr.set_weight(0.5).expect("ok");
        let out = mr.weight_power(Power::from_mw(2.0));
        assert!((out.mw() - 1.0).abs() < 0.1);
    }
}
