//! Shared helpers for the experiment harness, built on the
//! [`Platform`] facade.

use lightator_baselines::registry::photonic_variants;
use lightator_core::backend::Backend;
use lightator_core::platform::Platform;
use lightator_core::sim::ArchitectureSimulator;
use lightator_core::CoreError;
use lightator_nn::quant::{Precision, PrecisionSchedule};

/// The three uniform precisions evaluated throughout the paper.
pub const PRECISIONS: [Precision; 3] = [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()];

/// The five Lightator variants of Table 1 (three uniform, two mixed),
/// resolved from the backend registry so the accuracy pass and the
/// performance rows always agree on names and schedules.
#[must_use]
pub fn lightator_variants() -> Vec<(String, PrecisionSchedule)> {
    photonic_variants()
        .into_iter()
        .map(|variant| {
            let schedule = variant
                .schedule()
                // Every photonic variant is constructed with_schedule(), so
                // the label always parses. lightator: allow(no-unwrap)
                .expect("registry variants pin a schedule");
            (variant.name(), schedule)
        })
        .collect()
}

/// Builds the paper-default platform — the harness's single front door.
///
/// # Errors
///
/// Propagates configuration errors (cannot occur for the paper defaults).
pub fn platform() -> Result<Platform, CoreError> {
    Platform::paper()
}

/// The paper-default architecture simulator, resolved through the platform.
///
/// # Errors
///
/// Propagates configuration errors (cannot occur for the paper defaults).
pub fn simulator() -> Result<ArchitectureSimulator, CoreError> {
    Ok(platform()?.simulator().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_lightator_variants_match_table_one() {
        let variants = lightator_variants();
        assert_eq!(variants.len(), 5);
        assert_eq!(variants[0].0, "Lightator [4:4]");
        assert_eq!(variants[3].0, "Lightator-MX [4:4][3:4]");
    }

    #[test]
    fn platform_and_simulator_build() {
        assert!(platform().is_ok());
        assert!(simulator().is_ok());
    }

    #[test]
    fn precisions_use_the_canonical_constructors() {
        assert_eq!(
            PRECISIONS,
            [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()]
        );
    }
}
