//! Optical multiply-and-accumulate arm.
//!
//! An arm is the fundamental compute primitive of the Lightator optical core
//! (paper Fig. 5): a bus waveguide carrying one WDM channel per activation,
//! a micro-ring per channel holding a weight, and a balanced photodetector
//! that sums the weighted channels. One arm therefore evaluates one dot
//! product of up to `channels` elements per optical cycle.
//!
//! Signed weights are realised the standard way for incoherent photonics: the
//! magnitude is programmed into the MR and the drop port of negatively
//! weighted channels is routed to the negative diode of the balanced
//! detector, so the electrical output is `Σ aᵢ·wᵢ` with `wᵢ ∈ [−1, 1]`.

use crate::error::{PhotonicsError, Result};
use crate::microring::{MicroringConfig, MicroringResonator};
use crate::noise::{NoiseConfig, NoiseInjector};
use crate::units::Power;
use crate::wdm::{CrosstalkModel, WdmGrid};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of an optical MAC arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmConfig {
    /// Number of MRs (and hence WDM channels / MAC elements) in the arm.
    /// Lightator uses 9 to natively fit a 3×3 kernel stride.
    pub channels: usize,
    /// Ring design shared by all MRs of the arm.
    pub ring: MicroringConfig,
    /// Noise / non-ideality configuration.
    pub noise: NoiseConfig,
}

impl Default for ArmConfig {
    fn default() -> Self {
        Self {
            channels: 9,
            ring: MicroringConfig::default(),
            noise: NoiseConfig::default(),
        }
    }
}

/// The result of evaluating one dot product on an arm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmOutput {
    /// The analog MAC value, `Σ aᵢ·wᵢ`, after non-idealities.
    pub value: f64,
    /// The ideal (noise-free, crosstalk-free) MAC value for the same inputs.
    pub ideal: f64,
}

impl ArmOutput {
    /// Absolute analog error introduced by the photonic datapath.
    #[must_use]
    pub fn error(&self) -> f64 {
        (self.value - self.ideal).abs()
    }
}

/// An optical MAC arm: per-channel MRs plus a balanced photodetector.
///
/// ```
/// use lightator_photonics::arm::{ArmConfig, OpticalArm};
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// # fn main() -> Result<(), lightator_photonics::PhotonicsError> {
/// let mut arm = OpticalArm::new(ArmConfig::default())?;
/// arm.load_weights(&[0.5, -0.25, 0.0, 1.0, -1.0, 0.125, 0.75, -0.5, 0.25])?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// let out = arm.mac(&[1.0, 0.5, 0.25, 0.0, 1.0, 0.5, 0.25, 0.0, 1.0], &mut rng)?;
/// assert!(out.error() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OpticalArm {
    config: ArmConfig,
    grid: WdmGrid,
    rings: Vec<MicroringResonator>,
    weights: Vec<f64>,
    crosstalk: CrosstalkModel,
    injector: NoiseInjector,
}

impl OpticalArm {
    /// Creates an arm with all weights initialised to zero.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration is
    /// invalid (zero channels or a bad ring design).
    pub fn new(config: ArmConfig) -> Result<Self> {
        if config.channels == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "channels",
                value: 0.0,
            });
        }
        config.ring.validate()?;
        let grid = WdmGrid::lightator_arm(config.channels)?;
        let mut rings = Vec::with_capacity(config.channels);
        for i in 0..config.channels {
            rings.push(MicroringResonator::new(config.ring, grid.wavelength(i)?)?);
        }
        let crosstalk = if config.noise.apply_crosstalk {
            CrosstalkModel::new(grid.clone(), config.ring)
        } else {
            CrosstalkModel::ideal(grid.clone(), config.ring)
        };
        let injector = NoiseInjector::new(config.noise);
        let channels = config.channels;
        Ok(Self {
            config,
            grid,
            rings,
            weights: vec![0.0; channels],
            crosstalk,
            injector,
        })
    }

    /// The arm configuration.
    #[must_use]
    pub fn config(&self) -> &ArmConfig {
        &self.config
    }

    /// Re-aligns the arm's noise injector with a freshly (re)seeded RNG
    /// stream (see [`NoiseInjector::reset`]). MR weights stay loaded.
    pub fn reset_noise(&mut self) {
        self.injector.reset();
    }

    /// Number of MAC elements the arm evaluates per cycle.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.config.channels
    }

    /// The WDM grid assigned to this arm.
    #[must_use]
    pub fn grid(&self) -> &WdmGrid {
        &self.grid
    }

    /// The currently loaded signed weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Loads a vector of signed weights in `[-1, 1]` onto the arm's MRs.
    ///
    /// Shorter vectors leave the remaining rings parked (weight 0, no tuning
    /// power), matching how partially filled arms behave for 5×5 / 7×7
    /// kernels (paper Fig. 6).
    ///
    /// # Errors
    ///
    /// * [`PhotonicsError::LengthMismatch`] if more weights than channels are
    ///   supplied.
    /// * [`PhotonicsError::WeightOutOfRange`] if a weight is outside
    ///   `[-1, 1]` or not finite.
    pub fn load_weights(&mut self, weights: &[f64]) -> Result<()> {
        if weights.len() > self.config.channels {
            return Err(PhotonicsError::LengthMismatch {
                expected: self.config.channels,
                actual: weights.len(),
            });
        }
        for &w in weights {
            if !w.is_finite() || !(-1.0..=1.0).contains(&w) {
                return Err(PhotonicsError::WeightOutOfRange { weight: w });
            }
        }
        for (i, ring) in self.rings.iter_mut().enumerate() {
            let w = weights.get(i).copied().unwrap_or(0.0);
            self.weights[i] = w;
            if w == 0.0 {
                ring.park();
            } else {
                // The MR holds the magnitude; the sign selects the BPD rail.
                // Weight 1.0 maps to the maximum representable transmission.
                let magnitude = w.abs().min(ring.config().maximum_transmission());
                ring.set_weight(magnitude)?;
            }
        }
        for w in self.weights.iter_mut().skip(weights.len()) {
            *w = 0.0;
        }
        Ok(())
    }

    /// Evaluates one MAC: `Σ aᵢ·wᵢ` for activations `a ∈ [0, 1]`.
    ///
    /// The activation vector may be shorter than the arm; missing channels
    /// contribute nothing. Non-idealities (VCSEL noise, crosstalk, weight
    /// error, detection noise) are applied according to the arm's
    /// [`NoiseConfig`].
    ///
    /// # Errors
    ///
    /// * [`PhotonicsError::LengthMismatch`] if more activations than channels
    ///   are supplied.
    /// * [`PhotonicsError::WeightOutOfRange`] if an activation is outside
    ///   `[0, 1]` or not finite (activations are unsigned light intensities).
    pub fn mac<R: Rng + ?Sized>(&mut self, activations: &[f64], rng: &mut R) -> Result<ArmOutput> {
        if activations.len() > self.config.channels {
            return Err(PhotonicsError::LengthMismatch {
                expected: self.config.channels,
                actual: activations.len(),
            });
        }
        for &a in activations {
            if !a.is_finite() || !(0.0..=1.0).contains(&a) {
                return Err(PhotonicsError::WeightOutOfRange { weight: a });
            }
        }

        let mut intensities: Vec<f64> = (0..self.config.channels)
            .map(|i| activations.get(i).copied().unwrap_or(0.0))
            .collect();
        let ideal: f64 = intensities
            .iter()
            .zip(&self.weights)
            .map(|(a, w)| a * w)
            .sum();

        // 1. VCSEL amplitude noise.
        for value in &mut intensities {
            *value = self.injector.perturb_intensity(rng, *value);
        }
        // 2. Inter-channel crosstalk along the shared bus.
        self.crosstalk.apply(&mut intensities)?;
        // 3. Weighting by the realised (noisy) MR transmissions, routed to the
        //    positive or negative BPD rail according to the weight sign.
        let mut positive = 0.0;
        let mut negative = 0.0;
        for (i, &a) in intensities.iter().enumerate() {
            let w = self.weights[i];
            if w == 0.0 {
                continue;
            }
            let realised = self.rings[i].channel_transmission();
            let realised = self.injector.perturb_weight(rng, realised);
            let product = a * realised;
            if w >= 0.0 {
                positive += product;
            } else {
                negative += product;
            }
        }
        // 4. Balanced detection plus detector-referred noise.
        let detected = self.injector.perturb_detection(rng, positive - negative);
        Ok(ArmOutput {
            value: detected,
            ideal,
        })
    }

    /// Total MR tuning power currently drawn by the arm.
    #[must_use]
    pub fn tuning_power(&self) -> Power {
        self.rings
            .iter()
            .map(MicroringResonator::tuning_power)
            .sum()
    }

    /// Number of rings currently holding a non-zero weight.
    #[must_use]
    pub fn active_rings(&self) -> usize {
        self.weights.iter().filter(|w| **w != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ideal_arm() -> OpticalArm {
        OpticalArm::new(ArmConfig {
            noise: NoiseConfig::ideal(),
            ..ArmConfig::default()
        })
        .expect("valid")
    }

    #[test]
    fn rejects_zero_channels() {
        let cfg = ArmConfig {
            channels: 0,
            ..ArmConfig::default()
        };
        assert!(OpticalArm::new(cfg).is_err());
    }

    #[test]
    fn ideal_mac_matches_dot_product() {
        let mut arm = ideal_arm();
        let weights = [0.5, -0.25, 0.0, 0.9, -0.9, 0.125, 0.75, -0.5, 0.25];
        let activations = [1.0, 0.5, 0.25, 0.0, 1.0, 0.5, 0.25, 0.0, 1.0];
        arm.load_weights(&weights).expect("ok");
        let mut rng = SmallRng::seed_from_u64(0);
        let out = arm.mac(&activations, &mut rng).expect("ok");
        let exact: f64 = weights.iter().zip(activations).map(|(w, a)| w * a).sum();
        assert!((out.ideal - exact).abs() < 1e-12);
        // The only residual error in the ideal configuration comes from the
        // finite MR extinction ratio (weights cannot be realised exactly).
        assert!(
            (out.value - exact).abs() < 0.05,
            "value {} vs exact {exact}",
            out.value
        );
    }

    #[test]
    fn noisy_mac_stays_close_to_ideal() {
        let mut arm = OpticalArm::new(ArmConfig::default()).expect("valid");
        let weights = [0.3, -0.7, 0.2, 0.0, 0.5, -0.1, 0.9, -0.4, 0.6];
        arm.load_weights(&weights).expect("ok");
        let mut rng = SmallRng::seed_from_u64(9);
        let activations = [0.2, 0.4, 0.6, 0.8, 1.0, 0.1, 0.3, 0.5, 0.7];
        let out = arm.mac(&activations, &mut rng).expect("ok");
        assert!(out.error() < 0.15, "error {}", out.error());
    }

    #[test]
    fn short_vectors_pad_with_zero() {
        let mut arm = ideal_arm();
        arm.load_weights(&[1.0, 1.0]).expect("ok");
        let mut rng = SmallRng::seed_from_u64(2);
        let out = arm.mac(&[0.5], &mut rng).expect("ok");
        assert!((out.ideal - 0.5).abs() < 1e-12);
        assert_eq!(arm.active_rings(), 2);
    }

    #[test]
    fn rejects_oversized_inputs() {
        let mut arm = ideal_arm();
        assert!(arm.load_weights(&[0.0; 10]).is_err());
        let mut rng = SmallRng::seed_from_u64(3);
        let too_many = [0.1; 10];
        assert!(arm.mac(&too_many, &mut rng).is_err());
    }

    #[test]
    fn rejects_out_of_range_values() {
        let mut arm = ideal_arm();
        assert!(arm.load_weights(&[1.5]).is_err());
        assert!(arm.load_weights(&[f64::NAN]).is_err());
        arm.load_weights(&[0.5]).expect("ok");
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(arm.mac(&[-0.1], &mut rng).is_err());
        assert!(arm.mac(&[1.1], &mut rng).is_err());
    }

    #[test]
    fn zero_weights_draw_no_tuning_power() {
        let mut arm = ideal_arm();
        arm.load_weights(&[0.0; 9]).expect("ok");
        assert_eq!(arm.tuning_power(), Power::zero());
        assert_eq!(arm.active_rings(), 0);
    }

    #[test]
    fn tuning_power_increases_with_active_rings() {
        let mut arm = ideal_arm();
        arm.load_weights(&[0.5, 0.5]).expect("ok");
        let two = arm.tuning_power();
        arm.load_weights(&[0.5; 9]).expect("ok");
        let nine = arm.tuning_power();
        assert!(nine.mw() > two.mw());
    }

    #[test]
    fn negative_weights_produce_negative_outputs() {
        let mut arm = ideal_arm();
        arm.load_weights(&[-0.8]).expect("ok");
        let mut rng = SmallRng::seed_from_u64(5);
        let out = arm.mac(&[1.0], &mut rng).expect("ok");
        assert!(out.value < -0.6);
    }

    #[test]
    fn reloading_weights_overwrites_previous_state() {
        let mut arm = ideal_arm();
        arm.load_weights(&[0.5; 9]).expect("ok");
        arm.load_weights(&[0.25]).expect("ok");
        assert_eq!(arm.active_rings(), 1);
        assert_eq!(arm.weights()[1], 0.0);
    }
}
