//! Unified results: what a workload produced ([`Outcome`]) and the
//! [`Report`] pairing it with the platform's performance numbers.
//!
//! Every execution entry point of a [`Session`](crate::platform::Session)
//! returns the same [`Report`] shape, so callers read the functional
//! result (class/logits, acquired frame, filtered frame) and the
//! architecture figures of merit (latency, power, energy, FPS, KFPS/W)
//! from one place.

use crate::error::{CoreError, Result};
use crate::sim::SimulationReport;
use lightator_nn::model::Sequential;
use lightator_nn::tensor::Tensor;
use lightator_photonics::units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// What a workload produced for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// A classification result.
    Classification {
        /// Predicted class (argmax of the logits).
        class: usize,
        /// Logit vector produced by the final layer.
        logits: Vec<f32>,
        /// Shape of the tensor fed to the first DNN layer.
        dnn_input_shape: Vec<usize>,
    },
    /// An acquired (optionally CA-compressed) frame.
    Acquisition {
        /// Shape of the acquired tensor (`[1, h, w]`).
        shape: Vec<usize>,
        /// Acquired values, row-major.
        data: Vec<f32>,
    },
    /// A filtered frame from an image kernel.
    Filtered {
        /// Name of the applied kernel.
        kernel: String,
        /// Shape of the filtered tensor (`[1, h, w]`).
        shape: Vec<usize>,
        /// Filtered values, row-major.
        data: Vec<f32>,
    },
}

/// Unified result of one [`Session::run`](crate::platform::Session::run):
/// the functional outcome plus the architecture-level performance numbers
/// for the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Workload label (`classify`, `acquire`, `kernel:sobel-x`, ...).
    pub workload: String,
    /// What the workload produced.
    pub outcome: Outcome,
    /// Latency / power / energy of the workload on this platform.
    pub perf: SimulationReport,
}

impl Report {
    /// Predicted class, for classification outcomes.
    #[must_use]
    pub fn class(&self) -> Option<usize> {
        match &self.outcome {
            Outcome::Classification { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// Logits, for classification outcomes.
    #[must_use]
    pub fn logits(&self) -> Option<&[f32]> {
        match &self.outcome {
            Outcome::Classification { logits, .. } => Some(logits),
            _ => None,
        }
    }

    /// Frame data, for acquisition and filtered outcomes.
    #[must_use]
    pub fn frame(&self) -> Option<(&[usize], &[f32])> {
        match &self.outcome {
            Outcome::Acquisition { shape, data } | Outcome::Filtered { shape, data, .. } => {
                Some((shape, data))
            }
            Outcome::Classification { .. } => None,
        }
    }

    /// End-to-end latency of the workload for one frame.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.perf.frame_latency
    }

    /// Peak platform power while serving the workload.
    #[must_use]
    pub fn max_power(&self) -> Power {
        self.perf.max_power
    }

    /// Energy consumed per frame.
    #[must_use]
    pub fn energy(&self) -> Energy {
        self.perf.frame_energy
    }

    /// Frames per second.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.perf.fps()
    }

    /// Kilo-frames per second per watt — the paper's figure of merit.
    #[must_use]
    pub fn kfps_per_watt(&self) -> f64 {
        self.perf.kfps_per_watt()
    }

    /// The frame decomposed into attributed stages (acquire/CA,
    /// weight-encode, MAC rows, readout); stage latencies and energies sum
    /// exactly to [`latency`](Report::latency) and [`energy`](Report::energy).
    #[must_use]
    pub fn stage_spans(&self) -> Vec<crate::trace::StageSpan> {
        crate::trace::frame_stages(&self.perf)
    }

    /// The frame's stage rollup on track `session:<workload>`, ready to
    /// merge into a wider [`StageBreakdown`](lightator_telemetry::StageBreakdown).
    #[must_use]
    pub fn stage_breakdown(&self) -> lightator_telemetry::StageBreakdown {
        crate::trace::stage_breakdown(&format!("session:{}", self.workload), &self.perf)
    }
}

/// Validates a classify model against the acquired inputs once per batch.
pub(crate) fn check_model_input(model: &Sequential, inputs: &[Tensor]) -> Result<()> {
    for input in inputs {
        if input.shape() != model.input_shape() {
            return Err(model_mismatch(input.shape(), model.input_shape()));
        }
    }
    Ok(())
}

pub(crate) fn model_mismatch(acquired: &[usize], expected: &[usize]) -> CoreError {
    CoreError::ModelMismatch {
        reason: format!(
            "acquired tensor {acquired:?} does not match the model input {expected:?}; \
             choose a sensor resolution and CA window that produce the model's input"
        ),
    }
}

pub(crate) fn classification_from_logits(
    logits: &Tensor,
    input_shape: &[usize],
) -> Result<Outcome> {
    let class = logits.argmax().ok_or(CoreError::ModelMismatch {
        reason: "model produced an empty logit vector".to_string(),
    })?;
    Ok(Outcome::Classification {
        class,
        logits: logits.data().to_vec(),
        dnn_input_shape: input_shape.to_vec(),
    })
}

pub(crate) fn acquisition_outcome(input: &Tensor) -> Outcome {
    Outcome::Acquisition {
        shape: input.shape().to_vec(),
        data: input.data().to_vec(),
    }
}

/// Builds a filtered outcome from an already-computed frame tensor (the
/// single definition shared by the planned and per-call-encode paths).
pub(crate) fn filtered_from(filtered: &Tensor, kernel: &str) -> Outcome {
    Outcome::Filtered {
        kernel: kernel.to_string(),
        shape: filtered.shape().to_vec(),
        data: filtered.data().to_vec(),
    }
}
