//! Analytical models of the electronic edge accelerators of Fig. 10 and the
//! GPU baseline of Table 1.
//!
//! Each design is reduced to the parameters that determine its end-to-end
//! execution time on a CNN: sustained MAC throughput (peak × utilisation) and
//! a fixed per-layer scheduling overhead. The constants are representative of
//! the published designs (Eyeriss JSSC'17, YodaNN TCAD'18, AppCiP JETCAS'23,
//! ENVISION ISSCC'17, NVIDIA RTX 3060 Ti) and are documented per constructor.

use lightator_nn::spec::NetworkSpec;
use lightator_photonics::units::{Power, Time};
use serde::{Deserialize, Serialize};

/// An analytical model of a digital electronic accelerator (or GPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElectronicBaseline {
    name: String,
    /// Peak MAC throughput in giga-MACs per second.
    peak_gmacs: f64,
    /// Average fraction of the peak sustained across CNN layers.
    utilization: f64,
    /// Fixed scheduling / reconfiguration overhead per layer, in µs.
    per_layer_overhead_us: f64,
    /// Board / chip power in watts.
    power_w: f64,
}

impl ElectronicBaseline {
    /// Creates a baseline from its parameters.
    #[must_use]
    pub fn new(
        name: &str,
        peak_gmacs: f64,
        utilization: f64,
        per_layer_overhead_us: f64,
        power_w: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            peak_gmacs,
            utilization,
            per_layer_overhead_us,
            power_w,
        }
    }

    /// Eyeriss: 168-PE row-stationary spatial array at 200 MHz (~34 GMAC/s
    /// peak) with high utilisation on convolutional layers.
    #[must_use]
    pub fn eyeriss() -> Self {
        Self::new("Eyeriss", 67.2, 0.78, 25.0, 0.278)
    }

    /// YodaNN: binary-weight ASIC; high nominal throughput but its
    /// binary-weight dataflow sustains a lower fraction on large kernels (the
    /// paper substitutes VGG13 results for VGG16).
    #[must_use]
    pub fn yodann() -> Self {
        Self::new("YodaNN", 55.0, 0.52, 18.0, 0.153)
    }

    /// AppCiP: analog convolution-in-pixel with quinary weights; fast on the
    /// first layers but limited by its in-sensor array for deeper stacks.
    #[must_use]
    pub fn appcip() -> Self {
        Self::new("AppCiP", 58.0, 0.58, 22.0, 0.406)
    }

    /// ENVISION: subword-parallel DVAFS processor (0.26–10 TOPS/W range);
    /// the fastest of the four electronic designs.
    #[must_use]
    pub fn envision() -> Self {
        Self::new("ENVISION", 102.0, 0.74, 15.0, 0.30)
    }

    /// NVIDIA GeForce RTX 3060 Ti, the paper's GPU baseline: ~16.2 TFLOPS
    /// FP32 (8.1 TMAC/s) at a 200 W board power.
    #[must_use]
    pub fn gpu_rtx3060ti() -> Self {
        Self::new("RTX 3060 Ti", 8_100.0, 0.45, 60.0, 200.0)
    }

    /// The four electronic accelerators of Fig. 10, in the figure's order.
    #[must_use]
    pub fn fig10_designs() -> Vec<Self> {
        vec![
            Self::eyeriss(),
            Self::envision(),
            Self::appcip(),
            Self::yodann(),
        ]
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Board / chip power.
    #[must_use]
    pub fn power(&self) -> Power {
        Power::from_watts(self.power_w)
    }

    /// Sustained MAC throughput in giga-MACs per second.
    #[must_use]
    pub fn sustained_gmacs(&self) -> f64 {
        self.peak_gmacs * self.utilization
    }

    /// End-to-end execution time of one inference of `network`.
    #[must_use]
    pub fn execution_time(&self, network: &NetworkSpec) -> Time {
        let macs = network.total_macs() as f64;
        let compute_s = macs / (self.sustained_gmacs() * 1e9);
        let overhead_s = network.layer_count() as f64 * self.per_layer_overhead_us * 1e-6;
        Time::from_seconds(compute_s + overhead_s)
    }

    /// Frames per second on `network`.
    #[must_use]
    pub fn fps(&self, network: &NetworkSpec) -> f64 {
        1.0 / self.execution_time(network).seconds()
    }

    /// Kilo-FPS per watt on `network`.
    #[must_use]
    pub fn kfps_per_watt(&self, network: &NetworkSpec) -> f64 {
        self.fps(network) / 1e3 / self.power().watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_designs_are_four_and_ordered() {
        let designs = ElectronicBaseline::fig10_designs();
        assert_eq!(designs.len(), 4);
        assert_eq!(designs[0].name(), "Eyeriss");
        assert_eq!(designs[3].name(), "YodaNN");
    }

    #[test]
    fn execution_times_are_milliseconds_on_imagenet_scale_models() {
        // Fig. 10 plots execution times between roughly 1 ms and 1 s.
        for design in ElectronicBaseline::fig10_designs() {
            for net in [NetworkSpec::alexnet(), NetworkSpec::vgg16()] {
                let t = design.execution_time(&net);
                assert!(
                    t.ms() > 1.0 && t.ms() < 2_000.0,
                    "{} on {}: {} ms",
                    design.name(),
                    net.name(),
                    t.ms()
                );
            }
        }
    }

    #[test]
    fn envision_is_the_fastest_electronic_design() {
        let alexnet = NetworkSpec::alexnet();
        let envision = ElectronicBaseline::envision().execution_time(&alexnet).ms();
        for other in [
            ElectronicBaseline::eyeriss(),
            ElectronicBaseline::yodann(),
            ElectronicBaseline::appcip(),
        ] {
            assert!(
                other.execution_time(&alexnet).ms() > envision,
                "{} should be slower than ENVISION",
                other.name()
            );
        }
    }

    #[test]
    fn yodann_is_the_slowest_electronic_design() {
        // Fig. 10: Lightator's speed-up is largest over YodaNN (20.4x on
        // AlexNet), i.e. YodaNN has the longest execution time.
        let alexnet = NetworkSpec::alexnet();
        let yodann = ElectronicBaseline::yodann().execution_time(&alexnet).ms();
        for other in [
            ElectronicBaseline::eyeriss(),
            ElectronicBaseline::envision(),
            ElectronicBaseline::appcip(),
        ] {
            assert!(other.execution_time(&alexnet).ms() < yodann);
        }
    }

    #[test]
    fn vgg16_takes_longer_than_alexnet_everywhere() {
        for design in ElectronicBaseline::fig10_designs() {
            assert!(
                design.execution_time(&NetworkSpec::vgg16()).ms()
                    > design.execution_time(&NetworkSpec::alexnet()).ms()
            );
        }
    }

    #[test]
    fn gpu_is_fast_but_power_hungry() {
        let gpu = ElectronicBaseline::gpu_rtx3060ti();
        assert_eq!(gpu.power().watts(), 200.0);
        let t = gpu.execution_time(&NetworkSpec::vgg16());
        assert!(t.ms() < 20.0, "GPU VGG16 time {} ms", t.ms());
        // Its efficiency (KFPS/W) on LeNet is far below what Lightator
        // reports, which is the basis of the ~73x claim.
        assert!(gpu.kfps_per_watt(&NetworkSpec::lenet()) < 10.0);
    }
}
