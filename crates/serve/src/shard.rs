//! The shard worker: one thread, one virtual Lightator chip.
//!
//! Each shard owns its own session (opened through
//! `Platform::session_seeded`) and loops on its group's queue:
//! drain a contiguous-ticket micro-batch, seek the session to the batch's
//! first ticket, execute it with `run_batch` (weights programmed once per
//! batch), fulfil the response slots and account the batch on the shard's
//! simulated timeline. The loop exits once the queue shut down and ran dry,
//! which is what makes server shutdown graceful.

use crate::error::ServeError;
use crate::metrics::{MetricsInner, VirtualClock};
use crate::queue::SharedQueue;
use crate::request::ResponseSlot;
use lightator_core::platform::Session;
use lightator_sensor::frame::RgbFrame;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Client-side bookkeeping of one batched request: its ticket, its
/// simulated arrival time, and the slot awaiting the report.
type RequestHandle = (u64, u64, Arc<ResponseSlot>);

/// Fulfils a batch's slots strictly in ticket order, and — if the worker
/// unwinds mid-batch — fails whatever is left with
/// [`ServeError::WorkerPanicked`] on drop, so a panic in core code can
/// never strand a client in `Pending::wait`.
struct SlotGuard {
    handles: Vec<RequestHandle>,
    next: usize,
}

impl SlotGuard {
    fn new(handles: Vec<RequestHandle>) -> Self {
        Self { handles, next: 0 }
    }

    fn handles(&self) -> &[RequestHandle] {
        &self.handles
    }

    /// Publishes the outcome of the next unfulfilled request.
    fn fulfil(&mut self, outcome: crate::error::Result<lightator_core::platform::Report>) {
        let (_, _, slot) = &self.handles[self.next];
        slot.fulfil(outcome);
        self.next += 1;
    }

    /// Requests not yet fulfilled.
    fn remaining(&self) -> usize {
        self.handles.len() - self.next
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        while self.next < self.handles.len() {
            self.fulfil(Err(ServeError::WorkerPanicked));
        }
    }
}

/// Everything one worker thread needs, moved into it at spawn.
pub(crate) struct ShardContext {
    pub(crate) session: Session,
    pub(crate) queue: Arc<SharedQueue>,
    pub(crate) clock: Arc<VirtualClock>,
    pub(crate) metrics: Arc<MetricsInner>,
    /// Index into `metrics.shards` (global across groups).
    pub(crate) shard_index: usize,
    pub(crate) max_batch: usize,
    pub(crate) flush_deadline_ns: u64,
}

/// The worker loop. Returns when the group's queue shut down and drained.
pub(crate) fn run(mut ctx: ShardContext) {
    // One frame of this workload occupies the virtual chip for its
    // simulated frame latency; a batch occupies it back to back.
    let frame_latency_ns = ctx.session.perf().frame_latency.ns().ceil().max(1.0) as u64;
    let mut busy_until_ns = 0u64;
    while let Some(batch) = ctx
        .queue
        .wait_batch(ctx.max_batch, ctx.flush_deadline_ns, &ctx.clock)
    {
        if batch.is_empty() {
            continue;
        }
        let first_ticket = batch[0].ticket;
        let newest_arrival_ns = batch.iter().map(|r| r.arrival_ns).max().unwrap_or(0);
        // The virtual chip starts the batch as soon as it is free and the
        // whole batch has arrived (its own timeline, not the global clock:
        // shards process in parallel in simulated time).
        let start_ns = busy_until_ns.max(newest_arrival_ns);
        let completion_ns = start_ns + frame_latency_ns * batch.len() as u64;

        let (frames, handles): (Vec<RgbFrame>, Vec<RequestHandle>) = batch
            .into_iter()
            .map(|r| (r.frame, (r.ticket, r.arrival_ns, r.slot)))
            .unzip();
        let mut guard = SlotGuard::new(handles);

        // Publish the batch on the timelines *before* fulfilling any slot:
        // a closed-loop client wakes inside `fulfil` and stamps its next
        // arrival immediately, so the clock must already reflect this
        // batch's completion for arrivals to stay causal.
        let shard = &ctx.metrics.shards[ctx.shard_index];
        shard.batches.fetch_add(1, Ordering::Relaxed);
        shard
            .frames
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        shard.batch_sizes[frames.len() - 1].fetch_add(1, Ordering::Relaxed);
        for (_, arrival_ns, _) in guard.handles() {
            ctx.metrics
                .queue_wait
                .record(start_ns.saturating_sub(*arrival_ns));
        }
        ctx.metrics
            .first_start_ns
            .fetch_min(start_ns, Ordering::Relaxed);
        ctx.metrics
            .last_completion_ns
            .fetch_max(completion_ns, Ordering::Relaxed);
        busy_until_ns = completion_ns;
        ctx.clock.advance_to(completion_ns);

        // Execute at the tickets' frame indices: bit-identical to a single
        // sequential session running these frames at the same positions.
        // `catch_unwind` keeps the worker alive across a panic in core
        // code, and the guard fails the batch's unfulfilled slots so no
        // client hangs.
        let session = &mut ctx.session;
        let metrics = &ctx.metrics;
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_batch(session, metrics, first_ticket, &frames, &mut guard)
        }));
        if executed.is_err() {
            metrics
                .errored
                .fetch_add(guard.remaining() as u64, Ordering::Relaxed);
        }
        drop(guard);

        // Fair handoff: on few host CPUs, the worker that just finished
        // tends to win the queue lock again before its siblings wake,
        // concentrating frames on one virtual timeline. Yielding here lets
        // the other shards drain their share, which is what keeps the
        // simulated timelines (and the measured throughput scaling) close
        // to the hardware they model.
        std::thread::yield_now();
    }
}

/// Runs one drained batch and fulfils its slots in ticket order.
fn execute_batch(
    session: &mut Session,
    metrics: &MetricsInner,
    first_ticket: u64,
    frames: &[RgbFrame],
    guard: &mut SlotGuard,
) {
    session.seek_frame(first_ticket);
    match session.run_batch(frames) {
        Ok(reports) => {
            metrics
                .completed
                .fetch_add(reports.len() as u64, Ordering::Relaxed);
            for report in reports {
                guard.fulfil(Ok(report));
            }
        }
        Err(_) => {
            // One bad frame fails the whole `run_batch` call; isolate it by
            // re-running each frame at its own ticket so only the offending
            // request sees the error.
            for (offset, frame) in frames.iter().enumerate() {
                session.seek_frame(first_ticket + offset as u64);
                match session.run(frame) {
                    Ok(report) => {
                        metrics.completed.fetch_add(1, Ordering::Relaxed);
                        guard.fulfil(Ok(report));
                    }
                    Err(err) => {
                        metrics.errored.fetch_add(1, Ordering::Relaxed);
                        guard.fulfil(Err(ServeError::Core(err)));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropping_the_guard_fails_unfulfilled_slots_instead_of_stranding_them() {
        let slots: Vec<Arc<ResponseSlot>> = (0..3).map(|_| Arc::new(ResponseSlot::new())).collect();
        let handles: Vec<RequestHandle> = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| (i as u64, 0u64, Arc::clone(slot)))
            .collect();
        let mut guard = SlotGuard::new(handles);
        guard.fulfil(Err(ServeError::ShuttingDown));
        assert_eq!(guard.remaining(), 2);
        drop(guard); // simulates a worker unwinding mid-batch
        assert_eq!(slots[0].take(), Err(ServeError::ShuttingDown));
        assert_eq!(slots[1].take(), Err(ServeError::WorkerPanicked));
        assert_eq!(slots[2].take(), Err(ServeError::WorkerPanicked));
    }
}
