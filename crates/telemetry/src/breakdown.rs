//! Per-stage sim-time and energy attribution rolled up from span events.
//!
//! A [`StageBreakdown`] aggregates every recorded span into
//! (track, category, stage) rows — the same decomposition the paper argues
//! its wins with (acquisition vs. conversion vs. compute vs. readout) —
//! and renders them as a table or as flat metrics for `bench::emit`.

use crate::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Aggregated totals for one (track, category, stage) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTotals {
    /// Track the spans were recorded on, e.g. `session:kernel:sobel-x`.
    pub track: String,
    /// Span category, e.g. `"stage"` or `"request"`.
    pub category: String,
    /// Stage name, e.g. `"mac_rows"` or `"readout"`.
    pub stage: String,
    /// Number of spans aggregated.
    pub count: u64,
    /// Total simulated time in nanoseconds.
    pub sim_ns: f64,
    /// Total attributed energy in picojoules.
    pub energy_pj: f64,
}

/// A rollup of span events into per-stage totals.
///
/// Only [`EventKind::Span`] events contribute; instants and counters carry
/// no duration or energy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageBreakdown {
    rows: Vec<StageTotals>,
}

impl StageBreakdown {
    /// Creates an empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event into the rollup (spans only).
    pub fn record(&mut self, event: &TraceEvent) {
        if let EventKind::Span { dur_ns, energy_pj } = event.kind {
            self.add(
                &event.track,
                &event.category,
                &event.name,
                dur_ns,
                energy_pj,
            );
        }
    }

    /// Adds one span's worth of totals directly.
    pub fn add(&mut self, track: &str, category: &str, stage: &str, sim_ns: f64, energy_pj: f64) {
        // Linear scan: the row set is small (stages × tracks), and the
        // determinism contract bans hash containers in first-party crates.
        if let Some(row) = self
            .rows
            .iter_mut()
            .find(|r| r.track == track && r.category == category && r.stage == stage)
        {
            row.count += 1;
            row.sim_ns += sim_ns;
            row.energy_pj += energy_pj;
        } else {
            self.rows.push(StageTotals {
                track: track.to_string(),
                category: category.to_string(),
                stage: stage.to_string(),
                count: 1,
                sim_ns,
                energy_pj,
            });
        }
    }

    /// The aggregated rows, in insertion (or, after [`sort`](Self::sort),
    /// lexicographic) order.
    #[must_use]
    pub fn rows(&self) -> &[StageTotals] {
        &self.rows
    }

    /// Returns `true` if no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows restricted to one track.
    #[must_use]
    pub fn for_track(&self, track: &str) -> Vec<&StageTotals> {
        self.rows.iter().filter(|r| r.track == track).collect()
    }

    /// A breakdown containing only rows of the given category.
    #[must_use]
    pub fn only_category(&self, category: &str) -> Self {
        Self {
            rows: self
                .rows
                .iter()
                .filter(|r| r.category == category)
                .cloned()
                .collect(),
        }
    }

    /// Total simulated time across all rows, in nanoseconds.
    #[must_use]
    pub fn total_sim_ns(&self) -> f64 {
        self.rows.iter().map(|r| r.sim_ns).sum()
    }

    /// Total attributed energy across all rows, in picojoules.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.rows.iter().map(|r| r.energy_pj).sum()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Self) {
        for row in &other.rows {
            if let Some(mine) = self.rows.iter_mut().find(|r| {
                r.track == row.track && r.category == row.category && r.stage == row.stage
            }) {
                mine.count += row.count;
                mine.sim_ns += row.sim_ns;
                mine.energy_pj += row.energy_pj;
            } else {
                self.rows.push(row.clone());
            }
        }
    }

    /// Sorts rows by (track, category, stage) for order-independent output.
    pub fn sort(&mut self) {
        self.rows.sort_by(|a, b| {
            (&a.track, &a.category, &a.stage).cmp(&(&b.track, &b.category, &b.stage))
        });
    }

    /// Renders the rollup as an aligned text table with sim-time and energy
    /// percentages (shares of the whole breakdown).
    #[must_use]
    pub fn table(&self) -> String {
        let total_ns = self.total_sim_ns();
        let total_pj = self.total_energy_pj();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:<12} {:>8} {:>12} {:>7} {:>12} {:>7}",
            "track", "stage", "count", "sim us", "time%", "energy nJ", "enrgy%"
        );
        for row in &self.rows {
            let time_pct = if total_ns > 0.0 {
                100.0 * row.sim_ns / total_ns
            } else {
                0.0
            };
            let energy_pct = if total_pj > 0.0 {
                100.0 * row.energy_pj / total_pj
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<28} {:<12} {:>8} {:>12.3} {:>6.1}% {:>12.3} {:>6.1}%",
                row.track,
                row.stage,
                row.count,
                row.sim_ns / 1e3,
                time_pct,
                row.energy_pj / 1e3,
                energy_pct
            );
        }
        out
    }

    /// Flattens the rollup into `(name, value, units)` metrics suitable for
    /// `bench::emit`: per row, sim-time in ns and energy in pJ.
    #[must_use]
    pub fn to_metrics(&self) -> Vec<(String, f64, String)> {
        let mut metrics = Vec::with_capacity(self.rows.len() * 2);
        for row in &self.rows {
            let base = format!("{}/{}", row.track, row.stage);
            metrics.push((format!("{base}/sim_ns"), row.sim_ns, "ns".to_string()));
            metrics.push((format!("{base}/energy_pj"), row.energy_pj, "pJ".to_string()));
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_aggregates_by_track_category_and_stage() {
        let mut b = StageBreakdown::new();
        b.record(&TraceEvent::span("stage", "mac_rows", "s", 0.0, 10.0, 4.0));
        b.record(&TraceEvent::span("stage", "mac_rows", "s", 10.0, 10.0, 4.0));
        b.record(&TraceEvent::span("stage", "readout", "s", 20.0, 5.0, 1.0));
        b.record(&TraceEvent::instant("plan", "plan-hit", "s", 25.0));
        assert_eq!(b.rows().len(), 2);
        assert_eq!(b.rows()[0].count, 2);
        assert!((b.total_sim_ns() - 25.0).abs() < 1e-12);
        assert!((b.total_energy_pj() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_sort_are_consistent() {
        let mut a = StageBreakdown::new();
        a.add("t", "stage", "readout", 5.0, 1.0);
        let mut b = StageBreakdown::new();
        b.add("t", "stage", "acquire", 3.0, 2.0);
        b.add("t", "stage", "readout", 5.0, 1.0);
        a.merge(&b);
        a.sort();
        let stages: Vec<&str> = a.rows().iter().map(|r| r.stage.as_str()).collect();
        assert_eq!(stages, vec!["acquire", "readout"]);
        assert_eq!(a.rows()[1].count, 2);
    }

    #[test]
    fn table_and_metrics_render_every_row() {
        let mut b = StageBreakdown::new();
        b.add("session:acquire", "stage", "ca", 100.0, 50.0);
        b.add("session:acquire", "stage", "readout", 300.0, 150.0);
        let table = b.table();
        assert!(table.contains("ca"));
        assert!(table.contains("readout"));
        assert!(table.contains("25.0%"), "ca is 25% of sim time:\n{table}");
        let metrics = b.to_metrics();
        assert_eq!(metrics.len(), 4);
        assert_eq!(metrics[0].0, "session:acquire/ca/sim_ns");
    }

    #[test]
    fn filters_select_rows() {
        let mut b = StageBreakdown::new();
        b.add("a", "stage", "x", 1.0, 1.0);
        b.add("b", "request", "y", 2.0, 2.0);
        assert_eq!(b.for_track("a").len(), 1);
        assert_eq!(b.only_category("request").rows().len(), 1);
        assert!(!b.is_empty());
    }
}
