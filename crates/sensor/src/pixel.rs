//! Photodiode pixel model.
//!
//! Each pixel of the Lightator imager integrates photo-current during the
//! global-shutter exposure; the accumulated charge discharges the pixel node
//! from its reset voltage, so brighter light produces a larger voltage drop
//! `V_PD` (paper §3, "ADC-Less Imager"). The comparator read circuit then
//! digitises that drop with 15 reference levels.

use crate::error::{Result, SensorError};
use lightator_photonics::units::{Time, Voltage};
use serde::{Deserialize, Serialize};

/// Static parameters of a pixel's photodiode and source follower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelConfig {
    /// Reset (dark) output voltage of the pixel.
    pub reset_voltage_v: f64,
    /// Minimum output voltage reached at full-well illumination.
    pub saturation_voltage_v: f64,
    /// Photocurrent at unit (full-scale) illumination, in nA.
    pub full_scale_photocurrent_na: f64,
    /// Integration capacitance of the sense node, in fF.
    pub node_capacitance_ff: f64,
    /// Exposure (integration) time.
    pub exposure: Time,
    /// Dark current in pA (adds a small offset even with no light).
    pub dark_current_pa: f64,
}

impl Default for PixelConfig {
    fn default() -> Self {
        Self {
            reset_voltage_v: 1.0,
            saturation_voltage_v: 0.2,
            full_scale_photocurrent_na: 2.88,
            node_capacitance_ff: 4.0,
            exposure: Time::from_us(1.0),
            dark_current_pa: 2.0,
        }
    }
}

impl PixelConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] naming the first invalid
    /// field (non-finite, non-positive, or an inverted voltage range).
    pub fn validate(&self) -> Result<()> {
        let strictly_positive = [
            ("reset_voltage_v", self.reset_voltage_v),
            (
                "full_scale_photocurrent_na",
                self.full_scale_photocurrent_na,
            ),
            ("node_capacitance_ff", self.node_capacitance_ff),
            ("exposure_ns", self.exposure.ns()),
        ];
        for (name, value) in strictly_positive {
            if !value.is_finite() || value <= 0.0 {
                return Err(SensorError::InvalidParameter { name, value });
            }
        }
        if !self.saturation_voltage_v.is_finite()
            || self.saturation_voltage_v < 0.0
            || self.saturation_voltage_v >= self.reset_voltage_v
        {
            return Err(SensorError::InvalidParameter {
                name: "saturation_voltage_v",
                value: self.saturation_voltage_v,
            });
        }
        if !self.dark_current_pa.is_finite() || self.dark_current_pa < 0.0 {
            return Err(SensorError::InvalidParameter {
                name: "dark_current_pa",
                value: self.dark_current_pa,
            });
        }
        Ok(())
    }

    /// The full output swing available between reset and saturation.
    #[must_use]
    pub fn voltage_swing(&self) -> Voltage {
        Voltage::from_volts(self.reset_voltage_v - self.saturation_voltage_v)
    }
}

/// A single photodiode pixel.
///
/// ```
/// use lightator_sensor::pixel::{Pixel, PixelConfig};
///
/// # fn main() -> Result<(), lightator_sensor::SensorError> {
/// let pixel = Pixel::new(PixelConfig::default())?;
/// let dark = pixel.output_voltage(0.0)?;
/// let bright = pixel.output_voltage(1.0)?;
/// assert!(dark.volts() > bright.volts());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pixel {
    config: PixelConfig,
}

impl Pixel {
    /// Creates a pixel.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn new(config: PixelConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The pixel configuration.
    #[must_use]
    pub fn config(&self) -> &PixelConfig {
        &self.config
    }

    /// Charge-domain voltage drop produced by a normalised illumination in
    /// `[0, 1]` over the configured exposure, before clamping to the
    /// saturation voltage.
    fn ideal_drop_volts(&self, illumination: f64) -> f64 {
        let photo_a = illumination * self.config.full_scale_photocurrent_na * 1e-9
            + self.config.dark_current_pa * 1e-12;
        let charge_c = photo_a * self.config.exposure.seconds();
        charge_c / (self.config.node_capacitance_ff * 1e-15)
    }

    /// Output voltage of the pixel after exposure to a normalised
    /// illumination in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::IntensityOutOfRange`] if `illumination` is not
    /// inside `[0, 1]`.
    pub fn output_voltage(&self, illumination: f64) -> Result<Voltage> {
        if !illumination.is_finite() || !(0.0..=1.0).contains(&illumination) {
            return Err(SensorError::IntensityOutOfRange {
                value: illumination,
            });
        }
        let drop = self.ideal_drop_volts(illumination);
        let v = (self.config.reset_voltage_v - drop).max(self.config.saturation_voltage_v);
        Ok(Voltage::from_volts(v))
    }

    /// Voltage *drop* relative to reset, normalised to the full swing — the
    /// quantity the comparator ladder digitises. Returns a value in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::IntensityOutOfRange`] if `illumination` is not
    /// inside `[0, 1]`.
    pub fn normalized_drop(&self, illumination: f64) -> Result<f64> {
        let v = self.output_voltage(illumination)?;
        let swing = self.config.voltage_swing().volts();
        Ok(((self.config.reset_voltage_v - v.volts()) / swing).clamp(0.0, 1.0))
    }

    /// Illumination at which the pixel saturates (reaches its minimum output
    /// voltage). Values above this are clipped by the sensor.
    #[must_use]
    pub fn saturation_illumination(&self) -> f64 {
        // Solve ideal_drop(illum) == swing for illum, ignoring dark current.
        let swing = self.config.voltage_swing().volts();
        let full_drop = self.ideal_drop_volts(1.0);
        if full_drop <= 0.0 {
            return f64::INFINITY;
        }
        swing / full_drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pixel() -> Pixel {
        Pixel::new(PixelConfig::default()).expect("valid")
    }

    #[test]
    fn dark_pixel_stays_near_reset() {
        let p = pixel();
        let v = p.output_voltage(0.0).expect("ok");
        assert!((v.volts() - p.config().reset_voltage_v).abs() < 0.05);
    }

    #[test]
    fn brighter_light_drops_more_voltage() {
        let p = pixel();
        let v_dim = p.output_voltage(0.2).expect("ok");
        let v_bright = p.output_voltage(0.8).expect("ok");
        assert!(v_bright.volts() < v_dim.volts());
    }

    #[test]
    fn output_never_falls_below_saturation() {
        let p = pixel();
        let v = p.output_voltage(1.0).expect("ok");
        assert!(v.volts() >= p.config().saturation_voltage_v - 1e-12);
    }

    #[test]
    fn normalized_drop_is_monotone_and_bounded() {
        let p = pixel();
        let mut last = -1.0;
        for i in 0..=10 {
            let illum = f64::from(i) / 10.0;
            let d = p.normalized_drop(illum).expect("ok");
            assert!((0.0..=1.0).contains(&d));
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn rejects_out_of_range_illumination() {
        let p = pixel();
        assert!(p.output_voltage(-0.1).is_err());
        assert!(p.output_voltage(1.1).is_err());
        assert!(p.output_voltage(f64::NAN).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = PixelConfig {
            saturation_voltage_v: 2.0, // above reset voltage
            ..PixelConfig::default()
        };
        assert!(Pixel::new(cfg).is_err());
        let cfg = PixelConfig {
            node_capacitance_ff: 0.0,
            ..PixelConfig::default()
        };
        assert!(Pixel::new(cfg).is_err());
    }

    #[test]
    fn saturation_illumination_is_positive() {
        let p = pixel();
        assert!(p.saturation_illumination() > 0.0);
    }

    #[test]
    fn default_exposure_uses_most_of_the_swing() {
        // The default configuration should be able to reach a large portion
        // of the available swing at full illumination so the CRC has dynamic
        // range to digitise.
        let p = pixel();
        let d = p.normalized_drop(1.0).expect("ok");
        assert!(d > 0.8, "full-scale drop {d} uses too little of the swing");
    }
}
