//! Edge inference demo: train a small classifier on the synthetic dataset,
//! quantize it the way Lightator maps weights onto MRs, and compare digital
//! inference against the photonic datapath (with analog noise) end to end —
//! all through the `Platform`/`Session` facade.
//!
//! ```text
//! cargo run --release --example edge_inference
//! ```

use lightator_suite::core::platform::{Platform, Workload};
use lightator_suite::core::CoreError;
use lightator_suite::nn::datasets::{generate, SyntheticConfig};
use lightator_suite::nn::models::build_mlp;
use lightator_suite::nn::quant::{quantize_model_weights, Precision, PrecisionSchedule};
use lightator_suite::nn::train::{evaluate, train, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), CoreError> {
    let mut rng = SmallRng::seed_from_u64(2024);

    // A small class-structured dataset standing in for MNIST (see DESIGN.md).
    let dataset = generate(
        "edge-demo",
        SyntheticConfig {
            classes: 4,
            channels: 1,
            height: 16,
            width: 16,
            train_per_class: 30,
            test_per_class: 10,
            noise: 0.06,
            max_shift: 1,
        },
        &mut rng,
    )?;

    let mut model = build_mlp(&dataset.input_shape(), dataset.classes(), 32, &mut rng)?;
    println!(
        "training a {}-parameter classifier on {} samples ...",
        model.parameter_count(),
        dataset.train().len()
    );
    train(
        &mut model,
        &dataset,
        TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
    )?;
    let float_accuracy = evaluate(&mut model, &dataset)?;
    println!("float32 accuracy: {:.1}%", float_accuracy * 100.0);

    println!(
        "\n{:<12} {:>16} {:>18} {:>12}",
        "config", "digital acc (%)", "photonic acc (%)", "KFPS/W"
    );
    for precision in [Precision::w4a4(), Precision::w3a4(), Precision::w2a4()] {
        let schedule = PrecisionSchedule::Uniform(precision);
        let mut quantized = model.clone();
        quantize_model_weights(&mut quantized, schedule);
        let digital = evaluate(&mut quantized, &dataset)?;
        // One session serves both the accuracy measurement and the
        // platform-level performance numbers.
        let platform = Platform::builder()
            .sensor_resolution(16, 16)
            .precision(schedule)
            .seed(7)
            .build()?;
        let mut session = platform.session(Workload::Classify { model: quantized })?;
        let result = session.evaluate(&dataset, 20)?;
        println!(
            "{:<12} {:>16.1} {:>18.1} {:>12.1}",
            precision.to_string(),
            digital * 100.0,
            result.photonic * 100.0,
            session.perf().kfps_per_watt()
        );
    }

    println!("\nAccuracy degrades gracefully as the weight bit-width shrinks, and the analog");
    println!("photonic datapath tracks the digital quantized model closely — the trade-off");
    println!("Table 1 of the paper explores across [4:4], [3:4] and [2:4].");
    Ok(())
}
