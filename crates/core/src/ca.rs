//! Compressive Acquisitor (CA).
//!
//! The CA banks fuse RGB-to-grayscale conversion and configurable average
//! pooling into a single optical weighted sum (paper §3.2, Eq. 1): the fused
//! weight of pixel *i*, channel *j* is `(1/window²) · w_j` where `w_j` is the
//! BT.601 luma coefficient. The CA is optional — it can be bypassed when the
//! workload needs the full-resolution frame.

use crate::error::{CoreError, Result};
use lightator_sensor::frame::{Channel, GrayFrame, RgbFrame};
use serde::{Deserialize, Serialize};

/// Configuration of the compressive acquisitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaConfig {
    /// Square pooling window applied during acquisition (1 disables pooling).
    pub pooling_window: usize,
    /// Whether RGB frames are collapsed to grayscale during acquisition.
    pub rgb_to_grayscale: bool,
}

impl Default for CaConfig {
    fn default() -> Self {
        Self {
            pooling_window: 2,
            rgb_to_grayscale: true,
        }
    }
}

impl CaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero pooling window.
    pub fn validate(&self) -> Result<()> {
        if self.pooling_window == 0 {
            return Err(CoreError::invalid_config(
                "pooling_window",
                0.0,
                "the CA pooling window must be at least 1 (1 disables pooling)",
            ));
        }
        Ok(())
    }

    /// Compression ratio in number of values: input values per output value.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let spatial = (self.pooling_window * self.pooling_window) as f64;
        let chroma = if self.rgb_to_grayscale { 3.0 } else { 1.0 };
        spatial * chroma
    }
}

/// One output coefficient of the fused CA weighted sum (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaWeight {
    /// Pixel row offset inside the pooling window.
    pub row_offset: usize,
    /// Pixel column offset inside the pooling window.
    pub col_offset: usize,
    /// Colour channel the coefficient applies to.
    pub channel: Channel,
    /// The fused coefficient value.
    pub value: f64,
}

/// The compressive acquisitor.
///
/// ```
/// use lightator_core::ca::{CaConfig, CompressiveAcquisitor};
/// use lightator_sensor::frame::RgbFrame;
///
/// # fn main() -> Result<(), lightator_core::CoreError> {
/// let ca = CompressiveAcquisitor::new(CaConfig::default())?;
/// let frame = RgbFrame::filled(8, 8, [0.5, 0.5, 0.5])?;
/// let compressed = ca.acquire(&frame)?;
/// assert_eq!(compressed.height(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressiveAcquisitor {
    config: CaConfig,
}

impl CompressiveAcquisitor {
    /// Creates a compressive acquisitor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: CaConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CaConfig {
        &self.config
    }

    /// The fused weight coefficients mapped onto the CA bank's MRs for one
    /// output value (paper Eq. 1). Their sum is exactly 1 when grayscale
    /// conversion is enabled, and 1 per channel otherwise.
    #[must_use]
    pub fn weights(&self) -> Vec<CaWeight> {
        let window = self.config.pooling_window;
        let pool_coeff = 1.0 / (window * window) as f64;
        let mut weights = Vec::new();
        for row_offset in 0..window {
            for col_offset in 0..window {
                if self.config.rgb_to_grayscale {
                    for channel in Channel::ALL {
                        weights.push(CaWeight {
                            row_offset,
                            col_offset,
                            channel,
                            value: pool_coeff * channel.grayscale_weight(),
                        });
                    }
                } else {
                    // Pooling-only mode: one MR per pixel, tuned to the
                    // green (luma-dominant) wavelength.
                    weights.push(CaWeight {
                        row_offset,
                        col_offset,
                        channel: Channel::Green,
                        value: pool_coeff,
                    });
                }
            }
        }
        weights
    }

    /// Number of MRs one output value occupies in a CA bank.
    #[must_use]
    pub fn mrs_per_output(&self) -> usize {
        self.weights().len()
    }

    /// Acquires (compresses) an RGB frame into the reduced grayscale frame in
    /// a single weighted-sum pass, exactly as the CA banks would.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the frame is not divisible by
    /// the pooling window.
    pub fn acquire(&self, frame: &RgbFrame) -> Result<GrayFrame> {
        let window = self.config.pooling_window;
        if !frame.height().is_multiple_of(window) || !frame.width().is_multiple_of(window) {
            return Err(CoreError::invalid_config(
                "pooling_window",
                window as f64,
                format!(
                    "the pooling window must divide the frame dimensions \
                     ({}x{} is not divisible by {window})",
                    frame.height(),
                    frame.width()
                ),
            ));
        }
        let oh = frame.height() / window;
        let ow = frame.width() / window;
        let weights = self.weights();
        let mut data = vec![0.0f64; oh * ow];
        for orow in 0..oh {
            for ocol in 0..ow {
                let mut acc = 0.0;
                for w in &weights {
                    let row = orow * window + w.row_offset;
                    let col = ocol * window + w.col_offset;
                    let rgb = frame.pixel(row, col)?;
                    // Each MR reads exactly the channel its fused weight
                    // declares; without grayscale conversion `weights()`
                    // taps the single (green, luma-dominant) wavelength, so
                    // a 1x1 window without conversion is a bit-exact
                    // identity of that plane.
                    acc += rgb[w.channel.index()] * w.value;
                }
                data[orow * ow + ocol] = acc.clamp(0.0, 1.0);
            }
        }
        Ok(GrayFrame::new(oh, ow, data)?)
    }

    /// Reference (non-fused) result: grayscale conversion followed by average
    /// pooling. Used to verify that the single-pass fused weights of Eq. 1
    /// are exactly equivalent.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`CompressiveAcquisitor::acquire`].
    pub fn reference(&self, frame: &RgbFrame) -> Result<GrayFrame> {
        let gray = if self.config.rgb_to_grayscale {
            frame.to_grayscale()
        } else {
            // Pooling-only mode reads the green plane, matching the single
            // wavelength the CA bank's MRs are tuned to in `weights()`.
            let data = frame
                .data()
                .chunks_exact(3)
                .map(|px| px[Channel::Green.index()])
                .collect();
            GrayFrame::new(frame.height(), frame.width(), data)?
        };
        Ok(gray.average_pool(self.config.pooling_window)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_frame(height: usize, width: usize, seed: u64) -> RgbFrame {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..height * width * 3).map(|_| rng.gen::<f64>()).collect();
        RgbFrame::new(height, width, data).expect("valid")
    }

    #[test]
    fn config_validation() {
        assert!(CaConfig {
            pooling_window: 0,
            rgb_to_grayscale: true
        }
        .validate()
        .is_err());
        assert!(CaConfig::default().validate().is_ok());
    }

    #[test]
    fn fused_weights_sum_to_one_with_grayscale() {
        let ca = CompressiveAcquisitor::new(CaConfig::default()).expect("ok");
        let total: f64 = ca.weights().iter().map(|w| w.value).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // 2x2 pooling over 3 channels -> 12 MRs per output (Eq. 1 has 12 terms).
        assert_eq!(ca.mrs_per_output(), 12);
    }

    #[test]
    fn fused_pass_matches_reference_pipeline() {
        for window in [1, 2, 4] {
            let ca = CompressiveAcquisitor::new(CaConfig {
                pooling_window: window,
                rgb_to_grayscale: true,
            })
            .expect("ok");
            let frame = random_frame(8, 8, 42 + window as u64);
            let fused = ca.acquire(&frame).expect("ok");
            let reference = ca.reference(&frame).expect("ok");
            assert_eq!(fused.height(), reference.height());
            for (a, b) in fused.data().iter().zip(reference.data()) {
                assert!((a - b).abs() < 1e-9, "fused {a} vs reference {b}");
            }
        }
    }

    #[test]
    fn pooling_only_mode_matches_reference() {
        let ca = CompressiveAcquisitor::new(CaConfig {
            pooling_window: 2,
            rgb_to_grayscale: false,
        })
        .expect("ok");
        let frame = random_frame(6, 6, 7);
        let fused = ca.acquire(&frame).expect("ok");
        let reference = ca.reference(&frame).expect("ok");
        for (a, b) in fused.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn compression_ratio_counts_space_and_chroma() {
        let ca = CaConfig::default();
        assert!((ca.compression_ratio() - 12.0).abs() < 1e-12);
        let no_gray = CaConfig {
            rgb_to_grayscale: false,
            ..ca
        };
        assert!((no_gray.compression_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn acquire_rejects_non_divisible_frames() {
        let ca = CompressiveAcquisitor::new(CaConfig::default()).expect("ok");
        let frame = random_frame(7, 8, 3);
        assert!(ca.acquire(&frame).is_err());
    }

    #[test]
    fn output_dimensions_shrink_by_the_window() {
        let ca = CompressiveAcquisitor::new(CaConfig {
            pooling_window: 4,
            rgb_to_grayscale: true,
        })
        .expect("ok");
        let frame = random_frame(16, 8, 5);
        let out = ca.acquire(&frame).expect("ok");
        assert_eq!(out.height(), 4);
        assert_eq!(out.width(), 2);
    }

    #[test]
    fn uniform_gray_frame_is_preserved() {
        let ca = CompressiveAcquisitor::new(CaConfig::default()).expect("ok");
        let frame = RgbFrame::filled(4, 4, [0.6, 0.6, 0.6]).expect("valid");
        let out = ca.acquire(&frame).expect("ok");
        for &v in out.data() {
            assert!((v - 0.6).abs() < 1e-9);
        }
    }
}
