//! Criterion bench regenerating Table 1 (performance columns plus a reduced
//! accuracy pass).

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, Criterion};
use lightator_bench::table1::{self, AccuracyConfig};

fn bench_table1(c: &mut Criterion) {
    let rows = table1::performance_rows().expect("table1 harness must succeed");
    println!("{}", table1::render_performance(&rows));
    let workloads =
        table1::accuracy_rows(&AccuracyConfig::fast()).expect("accuracy pass must succeed");
    println!("{}", table1::render_accuracy(&workloads));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("performance_rows", |b| {
        b.iter(|| table1::performance_rows().expect("table1 harness must succeed"));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
