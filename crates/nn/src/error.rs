//! Error type for the quantized DNN stack.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by tensors, layers, models and training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor was constructed with inconsistent shape and data.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements provided.
        actual: usize,
    },
    /// Two tensors (or a tensor and a layer) have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// The offending shape.
        actual: Vec<usize>,
    },
    /// An index outside the tensor was accessed.
    IndexOutOfBounds {
        /// The offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A dataset request could not be satisfied (e.g. zero classes).
    InvalidDataset {
        /// Description of the problem.
        reason: String,
    },
    /// A textual label (precision or schedule notation) could not be parsed.
    InvalidLabel {
        /// What was being parsed (`precision`, `schedule`).
        what: &'static str,
        /// The rejected input text.
        input: String,
    },
    /// `backward` was called before `forward` on a layer that caches its
    /// input.
    BackwardBeforeForward,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape/data mismatch: shape implies {expected} elements but {actual} were provided"
            ),
            Self::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual:?}")
            }
            Self::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} is out of bounds for a tensor of {len} elements"
                )
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            Self::InvalidDataset { reason } => write!(f, "invalid dataset: {reason}"),
            Self::InvalidLabel { what, input } => {
                write!(
                    f,
                    "cannot parse `{input}` as a {what} label (expected the paper's `[W:A]` notation)"
                )
            }
            Self::BackwardBeforeForward => {
                write!(f, "backward called before forward on a caching layer")
            }
        }
    }
}

impl StdError for NnError {}

/// Convenience result alias for the DNN stack.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let errs = vec![
            NnError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            NnError::ShapeMismatch {
                expected: "[3, 32, 32]".into(),
                actual: vec![1, 28, 28],
            },
            NnError::IndexOutOfBounds { index: 10, len: 4 },
            NnError::InvalidParameter {
                name: "stride",
                value: 0.0,
            },
            NnError::InvalidDataset {
                reason: "zero classes".into(),
            },
            NnError::BackwardBeforeForward,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
