//! Worker tiling: one session, the MAC loops tiled across threads.
//!
//! The counter-based noise generator keys every Gaussian draw by
//! `(seed, frame, channel, element)`, so the conv/linear inner loops can
//! be tiled across `Session::set_workers(n)` worker threads without
//! moving a single draw — the parallel output is bit-identical to the
//! sequential one (asserted here before timing anything). This bench
//! measures the throughput side of that contract on the image-kernel
//! workload (the widest per-frame MAC loop), sweeping worker counts
//! {1, 2, 4, 8}, and emits the curve as `BENCH_parallel_scaling.json`
//! with a headline **≥ 3×** assertion at 8 workers.
//!
//! Smoke mode (`LIGHTATOR_BENCH_SMOKE=1`, used by the CI bench-smoke
//! step) runs one short round — enough to exercise the harness and
//! validate the emitted JSON without asserting the scaling ratio on
//! single-core or noisy shared runners.

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lightator_bench::emit::{self, BenchMetric};
use lightator_core::platform::{ImageKernel, Platform, Session, Workload};
use lightator_sensor::frame::RgbFrame;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SENSOR: usize = 64;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The paper's default platform — analog noise **on**, so the timed loop
/// includes the per-draw generator work — with a sensor wide enough that
/// one frame carries thousands of MAC segments to tile.
fn session(workers: usize) -> Session {
    let mut session = Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .build()
        .expect("platform")
        .session(Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        })
        .expect("session");
    session.set_workers(workers);
    session
}

fn scene() -> RgbFrame {
    let mut rng = SmallRng::seed_from_u64(41);
    let data: Vec<f64> = (0..SENSOR * SENSOR * 3).map(|_| rng.gen::<f64>()).collect();
    RgbFrame::new(SENSOR, SENSOR, data).expect("frame")
}

/// Frames simulated per wall-clock second over `rounds` single-frame runs.
fn throughput(rounds: usize, mut run: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        run();
    }
    rounds as f64 / start.elapsed().as_secs_f64()
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let smoke = std::env::var("LIGHTATOR_BENCH_SMOKE").is_ok();
    let frame = scene();

    // The contract the speedup rides on: tiling must be bit-exact. Guard
    // it here so the bench can never publish a speedup for wrong answers.
    let mut sequential = session(1);
    let reference = sequential.run(&frame).expect("sequential run");
    for workers in WORKER_COUNTS {
        let mut tiled = session(workers);
        assert_eq!(
            reference,
            tiled.run(&frame).expect("tiled run"),
            "tiled output diverged from sequential at {workers} workers"
        );
    }

    // Criterion-visible timings at the sweep's endpoints.
    let mut one = session(1);
    c.bench_function("parallel_scaling/kernel_1_worker", |b| {
        b.iter(|| black_box(one.run(&frame).expect("run")));
    });
    let mut eight = session(8);
    c.bench_function("parallel_scaling/kernel_8_workers", |b| {
        b.iter(|| black_box(eight.run(&frame).expect("run")));
    });

    // Headline measurement: sustained single-session simulation throughput
    // per worker count, medianed over interleaved rounds so every count
    // sees the same machine state.
    let rounds = if smoke { 1 } else { 5 };
    let reps = if smoke { 1 } else { 8 };
    let mut sessions: Vec<Session> = WORKER_COUNTS.iter().map(|&w| session(w)).collect();
    for s in &mut sessions {
        black_box(s.run(&frame).expect("warm-up"));
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); WORKER_COUNTS.len()];
    for _ in 0..rounds {
        for (slot, s) in samples.iter_mut().zip(&mut sessions) {
            slot.push(throughput(reps, || {
                black_box(s.run(&frame).expect("run"));
            }));
        }
    }
    let median = |slot: &mut Vec<f64>| -> f64 {
        slot.sort_by(|x, y| x.partial_cmp(y).expect("finite throughput"));
        slot[slot.len() / 2]
    };
    let curve: Vec<f64> = samples.iter_mut().map(median).collect();
    let speedup_8 = curve[WORKER_COUNTS.len() - 1] / curve[0];

    let mut metrics = Vec::new();
    for (&workers, &fps) in WORKER_COUNTS.iter().zip(&curve) {
        println!(
            "image-kernel simulation throughput at {workers} worker(s): {fps:.1} frames/s \
             ({:.2}x vs sequential)",
            fps / curve[0]
        );
        metrics.push(BenchMetric::new(
            &format!("kernel_sim_throughput_{workers}_workers"),
            fps,
            "frames simulated per wall-clock second",
        ));
    }
    println!("parallel speedup at 8 workers: {speedup_8:.2}x (target >= 3x on >= 8 cores)");
    metrics.push(BenchMetric::new(
        "parallel_speedup_8_workers",
        speedup_8,
        "x",
    ));

    let path = emit::emit("parallel_scaling", &metrics)
        .expect("BENCH_parallel_scaling.json written and validated");
    println!("wrote {}", path.display());

    assert!(
        smoke || speedup_8 >= 3.0,
        "worker tiling must sustain >= 3x single-session simulation throughput at 8 workers, \
         measured {speedup_8:.2}x"
    );
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
