//! Scenario tests: optical link budgets and detector SNR for a realistic
//! Lightator arm, exercising the photonic substrate the way the core uses it.

use lightator_photonics::arm::{ArmConfig, OpticalArm};
use lightator_photonics::microring::{MicroringConfig, MicroringResonator};
use lightator_photonics::noise::NoiseConfig;
use lightator_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use lightator_photonics::units::{Power, Wavelength};
use lightator_photonics::vcsel::{ModulatedVcsel, VcselConfig};
use lightator_photonics::waveguide::{LinkBudget, WaveguideConfig};
use lightator_photonics::wdm::WdmGrid;

/// A full arm link: VCSEL → splitter tree → 9 rings → balanced detector.
/// The delivered power at mid-scale drive must keep the detector SNR above
/// the level needed to resolve 4-bit activations (SNR > 2^4).
#[test]
fn arm_link_budget_supports_four_bit_resolution() {
    let vcsel = ModulatedVcsel::new(VcselConfig::default(), Wavelength::from_nm(1550.0), 16)
        .expect("vcsel");
    let launch = vcsel.output_power(12).expect("mid-high code");
    assert!(launch.mw() > 0.0);

    let link = LinkBudget::new(WaveguideConfig::default())
        .with_length_mm(8.0)
        .with_couplers(1)
        .with_splitter_stages(2)
        .with_rings_passed(9);
    let delivered = link.delivered_power(launch).expect("delivered");
    assert!(delivered.mw() < launch.mw());

    let detector = Photodetector::new(PhotodetectorConfig::default()).expect("detector");
    let snr = detector.snr(delivered);
    assert!(
        snr > 16.0,
        "delivered power {delivered} gives SNR {snr}, below the 4-bit requirement"
    );
}

/// The WDM grid keeps adjacent channels separated by several ring linewidths,
/// so per-channel weighting does not destroy its neighbours.
#[test]
fn wdm_spacing_exceeds_ring_linewidth() {
    let grid = WdmGrid::lightator_arm(9).expect("grid");
    let ring = MicroringConfig::default();
    let spacing_nm = grid.spacing().nm();
    let fwhm_nm = ring.fwhm().nm();
    assert!(
        spacing_nm > 3.0 * fwhm_nm,
        "channel spacing {spacing_nm} nm must be several times the ring FWHM {fwhm_nm} nm"
    );

    // Weighting channel 4 to the darkest value barely disturbs channel 5.
    let mut mr = MicroringResonator::new(ring, grid.wavelength(4).expect("channel")).expect("ring");
    mr.set_weight(0.05).expect("weight");
    let neighbour = grid.wavelength(5).expect("channel");
    assert!(mr.transmission_at(neighbour) > 0.9);
}

/// Running the same dot product on two arms with different noise seeds gives
/// answers that differ by no more than the expected analog spread, and both
/// remain close to the ideal value.
#[test]
fn analog_spread_is_bounded_across_seeds() {
    let weights = [0.6, -0.4, 0.2, 0.8, -0.7, 0.1, -0.2, 0.5, 0.3];
    let activations = [0.9, 0.3, 0.7, 0.2, 0.8, 0.5, 0.4, 0.6, 0.1];
    let exact: f64 = weights.iter().zip(activations).map(|(w, a)| w * a).sum();

    let mut results = Vec::new();
    for seed in 0..8u64 {
        let mut arm = OpticalArm::new(ArmConfig {
            noise: NoiseConfig::default(),
            ..ArmConfig::default()
        })
        .expect("arm");
        arm.load_weights(&weights).expect("weights");
        arm.begin_frame(seed, 0);
        results.push(arm.mac(&activations).expect("mac").value);
    }
    for value in &results {
        assert!(
            (value - exact).abs() < 0.2,
            "value {value} vs exact {exact}"
        );
    }
    let spread = results.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
        - results.iter().fold(f64::INFINITY, |m, &v| m.min(v));
    assert!(spread < 0.2, "seed-to-seed spread {spread} too large");
}

/// Laser power saturates: driving the VCSEL harder than the saturation
/// current cannot create more optical signal, so activation codes clip
/// gracefully instead of overflowing.
#[test]
fn vcsel_saturation_clips_gracefully() {
    let config = VcselConfig::default();
    let vcsel = ModulatedVcsel::new(config, Wavelength::from_nm(1550.0), 16).expect("vcsel");
    let top = vcsel.output_power(15).expect("top code");
    assert!(top.mw() <= config.max_output_mw + 1e-12);
    // Electrical power, on the other hand, keeps growing with the code.
    let e_low = vcsel.electrical_power(3).expect("low");
    let e_high = vcsel.electrical_power(15).expect("high");
    assert!(e_high.mw() > e_low.mw());
}

/// A dark arm (all activations zero) detects essentially nothing, regardless
/// of the loaded weights — the optical core has no "leakage MACs".
#[test]
fn dark_inputs_produce_no_output() {
    let mut arm = OpticalArm::new(ArmConfig {
        noise: NoiseConfig::ideal(),
        ..ArmConfig::default()
    })
    .expect("arm");
    arm.load_weights(&[1.0, -1.0, 0.5, -0.5, 0.25, -0.25, 0.75, -0.75, 0.9])
        .expect("weights");
    arm.begin_frame(3, 0);
    let out = arm.mac(&[0.0; 9]).expect("mac");
    assert!(out.value.abs() < 1e-9);
    assert_eq!(out.ideal, 0.0);
    let _ = Power::zero();
}
