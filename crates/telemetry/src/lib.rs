//! Deterministic simulated-time tracing for the Lightator reproduction.
//!
//! The simulator's determinism contract — same seed, same frames, same
//! output bits — extends to its observability: every event recorded here is
//! timestamped in **simulated time** (nanoseconds of modelled hardware
//! latency), never wall-clock time, so a trace is a replayable artifact
//! rather than a measurement of the host machine. Recording a trace must
//! change no output bit of any run (observational purity); the instrumented
//! crates only read already-computed performance models when they emit.
//!
//! * [`TraceEvent`] / [`EventKind`] — the event vocabulary: spans with
//!   simulated duration and attributed energy, instants, and counters;
//! * [`TraceSink`] — the trait instrumentation points write into;
//! * [`TraceRecorder`] — a bounded ring-buffer sink with a cumulative
//!   [`StageBreakdown`] that never loses attribution to eviction;
//! * [`breakdown`] — per-stage sim-time/energy rollups ([`StageBreakdown`],
//!   [`StageTotals`]);
//! * [`export`] — the Chrome trace-event JSON writer (`trace.json`,
//!   loadable in [Perfetto](https://ui.perfetto.dev)). Wall-clock reads are
//!   confined to this module, as the `telemetry` crate class in
//!   `analysis.cfg` enforces.
//!
//! # Example
//!
//! ```
//! use lightator_telemetry::{TraceEvent, TraceRecorder, TraceSink};
//!
//! let recorder = TraceRecorder::new();
//! recorder.record(TraceEvent::span("stage", "mac_rows", "session:demo", 0.0, 120.0, 4.5));
//! recorder.record(TraceEvent::span("stage", "readout", "session:demo", 120.0, 30.0, 0.5));
//! let breakdown = recorder.breakdown();
//! assert_eq!(breakdown.rows().len(), 2);
//! assert!((breakdown.total_energy_pj() - 5.0).abs() < 1e-12);
//! let json = lightator_telemetry::export::chrome_trace(&recorder.events());
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod breakdown;
pub mod export;

pub use breakdown::{StageBreakdown, StageTotals};

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity of a [`TraceRecorder`]: enough for every event of
/// the bundled examples while bounding memory to a few megabytes.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// The payload of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed slice of simulated time with attributed energy.
    Span {
        /// Simulated duration in nanoseconds.
        dur_ns: f64,
        /// Energy attributed to the span in picojoules.
        energy_pj: f64,
    },
    /// A point-in-time marker (a Chrome trace "instant" event, e.g. a
    /// plan-cache hit or an admission).
    Marker,
    /// A sampled counter value (e.g. cumulative plan-cache hits).
    Counter {
        /// The counter value at the event timestamp.
        value: f64,
    },
}

/// One trace event, timestamped in simulated nanoseconds.
///
/// Events are grouped by `track` (one Perfetto thread lane per track, e.g.
/// `session:kernel:sobel-x` or `shard:classify#0`) and classified by
/// `category` (`"frame"`, `"stage"`, `"request"`, `"plan"`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event category (Perfetto `cat`), e.g. `"stage"` or `"request"`.
    pub category: String,
    /// Event name, e.g. `"mac_rows"` or `"execute"`.
    pub name: String,
    /// Track (Perfetto thread lane) the event belongs to.
    pub track: String,
    /// Start timestamp in simulated nanoseconds.
    pub ts_ns: f64,
    /// Event payload.
    pub kind: EventKind,
    /// Free-form key/value annotations exported as Perfetto args.
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// Creates a completed span of `dur_ns` simulated nanoseconds carrying
    /// `energy_pj` picojoules.
    #[must_use]
    pub fn span(
        category: &str,
        name: &str,
        track: &str,
        ts_ns: f64,
        dur_ns: f64,
        energy_pj: f64,
    ) -> Self {
        Self {
            category: category.to_string(),
            name: name.to_string(),
            track: track.to_string(),
            ts_ns,
            kind: EventKind::Span { dur_ns, energy_pj },
            args: Vec::new(),
        }
    }

    /// Creates an instant marker at `ts_ns`.
    #[must_use]
    pub fn instant(category: &str, name: &str, track: &str, ts_ns: f64) -> Self {
        Self {
            category: category.to_string(),
            name: name.to_string(),
            track: track.to_string(),
            ts_ns,
            kind: EventKind::Marker,
            args: Vec::new(),
        }
    }

    /// Creates a counter sample at `ts_ns`.
    #[must_use]
    pub fn counter(category: &str, name: &str, track: &str, ts_ns: f64, value: f64) -> Self {
        Self {
            category: category.to_string(),
            name: name.to_string(),
            track: track.to_string(),
            ts_ns,
            kind: EventKind::Counter { value },
            args: Vec::new(),
        }
    }

    /// Attaches a key/value annotation (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.args.push((key.to_string(), value.to_string()));
        self
    }

    /// Simulated duration of the event: the span length, or zero for
    /// instants and counters.
    #[must_use]
    pub fn dur_ns(&self) -> f64 {
        match self.kind {
            EventKind::Span { dur_ns, .. } => dur_ns,
            _ => 0.0,
        }
    }

    /// Energy attributed to the event in picojoules (zero unless a span).
    #[must_use]
    pub fn energy_pj(&self) -> f64 {
        match self.kind {
            EventKind::Span { energy_pj, .. } => energy_pj,
            _ => 0.0,
        }
    }
}

/// A sink for trace events.
///
/// Instrumentation points hold an `Arc<dyn TraceSink>` and call
/// [`record`](TraceSink::record) with already-computed model quantities;
/// implementations must not feed anything back into the simulation.
pub trait TraceSink: fmt::Debug + Send + Sync {
    /// Records one event. Must be cheap and must never panic.
    fn record(&self, event: TraceEvent);
}

#[derive(Debug)]
struct RecorderInner {
    ring: VecDeque<TraceEvent>,
    breakdown: StageBreakdown,
}

/// A bounded ring-buffer [`TraceSink`].
///
/// The newest `capacity` events are kept for export; older events are
/// evicted (counted by [`dropped`](TraceRecorder::dropped)). The per-stage
/// rollup is accumulated on the way in, so [`breakdown`](TraceRecorder::breakdown)
/// stays exact no matter how small the ring is. A single short-lived mutex
/// guards the ring; the recorder is safe to share across shard threads.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    inner: Mutex<RecorderInner>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Creates a recorder with the [`DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a recorder keeping at most `capacity` events (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(RecorderInner {
                ring: VecDeque::new(),
                breakdown: StageBreakdown::new(),
            }),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        // A poisoned lock only means another thread panicked mid-record;
        // the ring remains structurally valid, so keep serving.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Maximum number of events retained in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// Returns `true` if no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (monotone; unaffected by eviction).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring to stay within capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().ring.iter().cloned().collect()
    }

    /// The cumulative per-stage rollup over **all** recorded events,
    /// including any that were evicted from the ring. Rows are sorted by
    /// (track, category, stage) so the result is independent of thread
    /// interleaving.
    #[must_use]
    pub fn breakdown(&self) -> StageBreakdown {
        let mut breakdown = self.lock().breakdown.clone();
        breakdown.sort();
        breakdown
    }

    /// Clears the ring, the rollup and both counters.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.ring.clear();
        inner.breakdown = StageBreakdown::new();
        self.recorded.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl TraceSink for TraceRecorder {
    fn record(&self, event: TraceEvent) {
        let mut inner = self.lock();
        inner.breakdown.record(&event);
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.ring.push_back(event);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, ts: f64) -> TraceEvent {
        TraceEvent::span("stage", name, "t", ts, 10.0, 2.0)
    }

    #[test]
    fn ring_evicts_oldest_and_counts_stay_monotone() {
        let recorder = TraceRecorder::with_capacity(4);
        let mut last_recorded = 0;
        for i in 0..10 {
            recorder.record(span(&format!("e{i}"), i as f64));
            let recorded = recorder.recorded();
            assert!(recorded > last_recorded, "recorded() must be monotone");
            last_recorded = recorded;
            assert!(recorder.len() <= 4, "ring must stay within capacity");
        }
        assert_eq!(recorder.recorded(), 10);
        assert_eq!(recorder.dropped(), 6);
        assert_eq!(recorder.len(), 4);
        let names: Vec<String> = recorder.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["e6", "e7", "e8", "e9"], "oldest events evicted");
    }

    #[test]
    fn breakdown_survives_eviction() {
        let recorder = TraceRecorder::with_capacity(2);
        for i in 0..8 {
            recorder.record(span("mac_rows", i as f64 * 10.0));
        }
        let breakdown = recorder.breakdown();
        assert_eq!(breakdown.rows().len(), 1);
        assert_eq!(breakdown.rows()[0].count, 8);
        assert!((breakdown.rows()[0].sim_ns - 80.0).abs() < 1e-12);
        assert!((breakdown.rows()[0].energy_pj - 16.0).abs() < 1e-12);
    }

    #[test]
    fn instants_and_counters_do_not_enter_the_breakdown() {
        let recorder = TraceRecorder::new();
        recorder.record(TraceEvent::instant("plan", "plan-hit", "t", 1.0));
        recorder.record(TraceEvent::counter(
            "plan",
            "plan_cache_hits",
            "t",
            1.0,
            3.0,
        ));
        assert_eq!(recorder.recorded(), 2);
        assert!(recorder.breakdown().rows().is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let recorder = TraceRecorder::with_capacity(2);
        for i in 0..5 {
            recorder.record(span("s", i as f64));
        }
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.recorded(), 0);
        assert_eq!(recorder.dropped(), 0);
        assert!(recorder.breakdown().rows().is_empty());
    }

    #[test]
    fn event_accessors_cover_all_kinds() {
        let s = span("s", 0.0);
        assert!((s.dur_ns() - 10.0).abs() < 1e-12);
        assert!((s.energy_pj() - 2.0).abs() < 1e-12);
        let i = TraceEvent::instant("c", "i", "t", 5.0).with_arg("frame", 3);
        assert_eq!(i.dur_ns(), 0.0);
        assert_eq!(i.energy_pj(), 0.0);
        assert_eq!(i.args, vec![("frame".to_string(), "3".to_string())]);
    }
}
