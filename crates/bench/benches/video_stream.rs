//! Streaming video through the frame-delta compressive path: the delta
//! gate skips the optical work of temporally static blocks, so a
//! low-motion stream must run ≥ 1.5× faster in simulated time than dense
//! per-frame execution of the same frames — and measurably faster in wall
//! clock too, because skipped blocks evaluate no photonic MACs.

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lightator_core::platform::{ImageKernel, Platform, Workload};
use lightator_core::stream::StreamConfig;
use lightator_photonics::noise::NoiseConfig;
use lightator_sensor::frame::RgbFrame;
use lightator_sensor::video::{SyntheticVideo, SyntheticVideoConfig};

const SENSOR: usize = 32;
const FRAMES: usize = 16;
/// The acceptance bar: gated sim-time must beat dense sim-time by this.
const TARGET_SPEEDUP: f64 = 1.5;

fn workload(delta_threshold: f64) -> Workload {
    Workload::VideoStream {
        kernel: ImageKernel::SobelX,
        stream: StreamConfig {
            block_size: 4,
            delta_threshold,
        },
    }
}

fn session(delta_threshold: f64) -> lightator_core::platform::Session {
    Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .noise(NoiseConfig::ideal())
        .build()
        .expect("platform")
        .session(workload(delta_threshold))
        .expect("session")
}

fn low_motion_frames() -> Vec<RgbFrame> {
    SyntheticVideo::new(SyntheticVideoConfig::low_motion(SENSOR, SENSOR, FRAMES))
        .expect("video")
        .collect()
}

fn bench_delta_skip_vs_dense(c: &mut Criterion) {
    let frames = low_motion_frames();

    let mut dense = session(0.0);
    c.bench_function("video_stream/dense_x16", |b| {
        b.iter(|| black_box(dense.run_stream(&frames).expect("dense stream")));
    });

    let mut gated = session(0.05);
    c.bench_function("video_stream/delta_skip_x16", |b| {
        b.iter(|| black_box(gated.run_stream(&frames).expect("gated stream")));
    });

    // The headline claim, asserted on the deterministic simulated
    // timeline: the gated stream beats dense per-frame execution.
    let dense_report = dense.run_stream(&frames).expect("dense stream");
    let gated_report = gated.run_stream(&frames).expect("gated stream");
    assert_eq!(
        dense_report.blocks_skipped(),
        0,
        "a zero threshold must execute densely"
    );
    let speedup = dense_report.sim_time.ns() / gated_report.sim_time.ns();
    println!(
        "delta-skip sim-time speedup over dense on a low-motion stream: \
         {speedup:.2}x ({:.0}% blocks skipped, target >= {TARGET_SPEEDUP}x)",
        gated_report.skip_ratio() * 100.0
    );
    assert!(
        speedup >= TARGET_SPEEDUP,
        "delta-skip speedup {speedup:.2}x fell below the {TARGET_SPEEDUP}x bar"
    );
    // The report's own dense baseline agrees with the measured dense run.
    assert!((gated_report.dense_sim_time.ns() - dense_report.sim_time.ns()).abs() < 1.0);
}

criterion_group!(benches, bench_delta_skip_vs_dense);
criterion_main!(benches);
