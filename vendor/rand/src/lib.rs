//! Offline stub of the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so this crate re-implements
//! exactly the surface the Lightator workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`] — a real xoshiro256++ generator (the same algorithm
//!   family rand 0.8 uses for `SmallRng` on 64-bit targets), seeded through
//!   SplitMix64 like rand's `seed_from_u64`;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic per seed but are not bit-identical to upstream
//! `rand`; all workspace tests assert statistical properties, not exact
//! sequences.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the subset of rand's `Standard` distribution this workspace uses).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Scalar types that support uniform sampling over a half-open or inclusive
/// range (rand's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` (`inclusive == false`) or
    /// `[low, high]` (`inclusive == true`). Panics if the range is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                assert!(if inclusive { low <= high } else { low < high }, "empty range in gen_range");
                let span = if inclusive {
                    (high as i128 - low as i128 + 1) as u128
                } else {
                    (high as i128 - low as i128) as u128
                };
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
                assert!(low < high || (_inclusive && low <= high), "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                if v as $t >= high && !_inclusive { low } else { v as $t }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for core::ops::Range<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange for core::ops::RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_uniform(rng, low, high, true)
    }
}

/// User-facing random-value methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro forbids the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait for random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(0usize..10);
            assert!(z < 10);
        }
    }

    #[test]
    fn gen_range_mean_is_central() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
