//! Offline stub of `serde` for the Lightator workspace.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — nothing in the tree actually serializes a
//! value (there is no `serde_json`/`bincode` consumer). The build environment
//! has no access to crates.io, so this proc-macro crate satisfies the derives
//! with empty expansions. Swapping the `[workspace.dependencies]` entry back
//! to the registry `serde` is the only change needed once the network is
//! available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
