//! The analytical roofline backend: [`OpticalBaseline`] performance
//! models behind the [`Backend`] interface.
//!
//! The Table-1 photonic baselines (LightBulb, HolyLight, HQNNA, Robin,
//! CrossLight) are modelled analytically — component counts × per-device
//! costs for power, an effective MAC rate for throughput. They cannot run
//! a workload, so [`RooflineBackend`] answers [`Backend::performance`]
//! while [`Backend::executes`] is `false` and [`Backend::lower`] rejects
//! lowering. Putting them behind the same trait as the executable
//! backends lets the Table-1 harness iterate one registry for every row.

use lightator_core::backend::{Backend, BackendId, LoweredPlan};
use lightator_core::platform::{PlatformConfig, Workload};
use lightator_core::sim::SimulationReport;
use lightator_core::{CoreError, Result};
use lightator_nn::spec::NetworkSpec;
use lightator_photonics::units::Energy;

use crate::optical::OpticalBaseline;
use crate::reference::slug;

/// An [`OpticalBaseline`] as an analytical (non-executing) [`Backend`].
///
/// Its [`BackendId`] is `roofline:<design>` (`roofline:lightbulb`, ...).
#[derive(Debug, Clone)]
pub struct RooflineBackend {
    baseline: OpticalBaseline,
    id: BackendId,
}

impl RooflineBackend {
    /// Wraps an optical baseline as an analytical backend.
    #[must_use]
    pub fn new(baseline: OpticalBaseline) -> Self {
        let id = BackendId::new(format!("roofline:{}", slug(baseline.name())));
        Self { baseline, id }
    }

    /// The underlying analytical model.
    #[must_use]
    pub fn baseline(&self) -> &OpticalBaseline {
        &self.baseline
    }
}

impl Backend for RooflineBackend {
    fn id(&self) -> BackendId {
        self.id.clone()
    }

    fn name(&self) -> String {
        format!("{} (analytical roofline)", self.baseline.name())
    }

    fn precision(&self, _config: &PlatformConfig) -> String {
        let p = self.baseline.precision();
        format!("[{}:{}]", p.weight_bits, p.activation_bits)
    }

    fn executes(&self) -> bool {
        false
    }

    fn supports(&self, _workload: &Workload) -> bool {
        false
    }

    fn lower(
        &self,
        _workload: &Workload,
        _config: &PlatformConfig,
        _seed: u64,
    ) -> Result<Box<dyn LoweredPlan>> {
        Err(CoreError::ModelMismatch {
            reason: format!(
                "backend '{}' is an analytical roofline model and cannot execute workloads",
                self.id
            ),
        })
    }

    fn performance(
        &self,
        network: &NetworkSpec,
        _config: &PlatformConfig,
    ) -> Result<SimulationReport> {
        let frame_latency = self.baseline.execution_time(network);
        let max_power = self.baseline.max_power();
        let frame_energy = Energy::from_pj(max_power.watts() * frame_latency.seconds() * 1e12);
        Ok(SimulationReport {
            network: network.name().to_string(),
            precision: self.precision_label(),
            layers: Vec::new(),
            frame_latency,
            max_power,
            average_power: max_power,
            frame_energy,
        })
    }
}

impl RooflineBackend {
    fn precision_label(&self) -> String {
        let p = self.baseline.precision();
        format!("[{}:{}]", p.weight_bits, p.activation_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_core::platform::{ImageKernel, Platform};

    #[test]
    fn roofline_backends_do_not_execute() {
        let backend = RooflineBackend::new(OpticalBaseline::lightbulb());
        assert_eq!(backend.id().as_str(), "roofline:lightbulb");
        assert!(!backend.executes());
        let workload = Workload::ImageKernel {
            kernel: ImageKernel::Identity,
        };
        assert!(!backend.supports(&workload));
        let platform = Platform::paper().expect("platform");
        assert!(backend.lower(&workload, platform.config(), 1).is_err());
    }

    #[test]
    fn performance_matches_the_analytical_model() {
        let platform = Platform::paper().expect("platform");
        let net = NetworkSpec::lenet();
        for design in OpticalBaseline::table1_designs() {
            let expected_t = design.execution_time(&net);
            let expected_p = design.max_power();
            let report = RooflineBackend::new(design)
                .performance(&net, platform.config())
                .expect("report");
            assert_eq!(report.frame_latency.seconds(), expected_t.seconds());
            assert_eq!(report.max_power.watts(), expected_p.watts());
            // The registry derives Table 1's KFPS/W directly from the
            // report, so it must match the model's own figure of merit.
            assert!(
                (report.kfps_per_watt() - report.fps() / 1e3 / expected_p.watts()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn precision_labels_follow_the_designs() {
        let platform = Platform::paper().expect("platform");
        let robin = RooflineBackend::new(OpticalBaseline::robin());
        assert_eq!(robin.precision(platform.config()), "[1:4]");
    }
}
