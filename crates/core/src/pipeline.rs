//! End-to-end near-sensor pipeline: scene → sensor → CA → photonic inference.
//!
//! Ties the whole Lightator node together (paper Fig. 2): a scene is captured
//! by the ADC-less sensor, optionally compressed by the CA banks, and the
//! resulting activations are pushed through the optical core layer by layer,
//! with the DMVA feeding each layer's output back as the next layer's input.

use crate::ca::{CaConfig, CompressiveAcquisitor};
use crate::error::{CoreError, Result};
use crate::exec::PhotonicExecutor;
use lightator_nn::model::Sequential;
use lightator_nn::quant::PrecisionSchedule;
use lightator_nn::tensor::Tensor;
use lightator_photonics::noise::NoiseConfig;
use lightator_sensor::array::{SensorArray, SensorArrayConfig};
use lightator_sensor::frame::RgbFrame;
use serde::{Deserialize, Serialize};

/// Result of processing one frame end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameResult {
    /// Predicted class.
    pub class: usize,
    /// Logit vector produced by the final layer.
    pub logits: Vec<f32>,
    /// Spatial dimensions of the tensor actually fed to the first DNN layer
    /// (after optional compressive acquisition).
    pub dnn_input_shape: Vec<usize>,
}

/// The complete Lightator node.
#[derive(Debug, Clone)]
pub struct LightatorNode {
    sensor: SensorArray,
    acquisitor: Option<CompressiveAcquisitor>,
    executor: PhotonicExecutor,
}

impl LightatorNode {
    /// Builds a node from a sensor configuration, an optional CA
    /// configuration and the photonic execution parameters.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the sensor, CA or executor.
    pub fn new(
        sensor: SensorArrayConfig,
        ca: Option<CaConfig>,
        schedule: PrecisionSchedule,
        noise: NoiseConfig,
        seed: u64,
    ) -> Result<Self> {
        Ok(Self {
            sensor: SensorArray::new(sensor)?,
            acquisitor: ca.map(CompressiveAcquisitor::new).transpose()?,
            executor: PhotonicExecutor::new(schedule, noise, seed)?,
        })
    }

    /// The sensor array.
    #[must_use]
    pub fn sensor(&self) -> &SensorArray {
        &self.sensor
    }

    /// Whether compressive acquisition is enabled.
    #[must_use]
    pub fn uses_compressive_acquisition(&self) -> bool {
        self.acquisitor.is_some()
    }

    /// Acquires a scene into the tensor fed to the first DNN layer.
    ///
    /// With CA enabled the result is a single-channel compressed map; without
    /// it the raw 4-bit codes are normalised per photosite (one channel,
    /// Bayer-patterned), matching the ADC-less acquisition path.
    ///
    /// # Errors
    ///
    /// Propagates sensor and CA errors.
    pub fn acquire(&self, scene: &RgbFrame) -> Result<Tensor> {
        match &self.acquisitor {
            Some(ca) => {
                let compressed = ca.acquire(scene)?;
                let data: Vec<f32> = compressed.data().iter().map(|&v| v as f32).collect();
                Ok(Tensor::from_vec(
                    data,
                    &[1, compressed.height(), compressed.width()],
                )?)
            }
            None => {
                let digital = self.sensor.capture(scene)?;
                let data: Vec<f32> = digital.normalized().iter().map(|&v| v as f32).collect();
                Ok(Tensor::from_vec(
                    data,
                    &[1, digital.height(), digital.width()],
                )?)
            }
        }
    }

    /// Processes one frame end to end through a trained model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ModelMismatch`] if the acquired tensor does not
    /// match the model's input shape, and propagates sensor/photonic errors.
    pub fn process_frame(
        &mut self,
        scene: &RgbFrame,
        model: &mut Sequential,
    ) -> Result<FrameResult> {
        let input = self.acquire(scene)?;
        if input.shape() != model.input_shape() {
            return Err(CoreError::ModelMismatch {
                reason: format!(
                    "acquired tensor {:?} does not match the model input {:?}; \
                     choose a sensor resolution and CA window that produce the model's input",
                    input.shape(),
                    model.input_shape()
                ),
            });
        }
        let logits = self.executor.forward(model, &input)?;
        let class = logits.argmax().ok_or(CoreError::ModelMismatch {
            reason: "model produced an empty logit vector".to_string(),
        })?;
        Ok(FrameResult {
            class,
            logits: logits.data().to_vec(),
            dnn_input_shape: input.shape().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_nn::layers::{Activation, Flatten, Linear};
    use lightator_nn::quant::Precision;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_model(input: [usize; 3], classes: usize) -> Sequential {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model = Sequential::new(&input);
        model.push(Flatten::new());
        model.push(Linear::new(input.iter().product(), 12, &mut rng).expect("ok"));
        model.push(Activation::relu());
        model.push(Linear::new(12, classes, &mut rng).expect("ok"));
        model
    }

    fn node(with_ca: bool, resolution: usize) -> LightatorNode {
        LightatorNode::new(
            SensorArrayConfig::with_resolution(resolution, resolution).expect("ok"),
            with_ca.then(CaConfig::default),
            PrecisionSchedule::Uniform(Precision::w4a4()),
            NoiseConfig::ideal(),
            7,
        )
        .expect("ok")
    }

    #[test]
    fn acquisition_with_ca_halves_each_dimension() {
        let node = node(true, 8);
        let scene = RgbFrame::filled(8, 8, [0.4, 0.6, 0.2]).expect("ok");
        let tensor = node.acquire(&scene).expect("ok");
        assert_eq!(tensor.shape(), &[1, 4, 4]);
        assert!(node.uses_compressive_acquisition());
    }

    #[test]
    fn acquisition_without_ca_keeps_resolution() {
        let node = node(false, 8);
        let scene = RgbFrame::filled(8, 8, [0.4, 0.6, 0.2]).expect("ok");
        let tensor = node.acquire(&scene).expect("ok");
        assert_eq!(tensor.shape(), &[1, 8, 8]);
    }

    #[test]
    fn end_to_end_frame_processing_classifies() {
        let mut node = node(true, 8);
        let mut model = tiny_model([1, 4, 4], 3);
        let scene = RgbFrame::filled(8, 8, [0.9, 0.2, 0.1]).expect("ok");
        let result = node.process_frame(&scene, &mut model).expect("ok");
        assert!(result.class < 3);
        assert_eq!(result.logits.len(), 3);
        assert_eq!(result.dnn_input_shape, vec![1, 4, 4]);
    }

    #[test]
    fn mismatched_model_is_reported() {
        let mut node = node(true, 8);
        let mut model = tiny_model([1, 8, 8], 3);
        let scene = RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("ok");
        assert!(matches!(
            node.process_frame(&scene, &mut model),
            Err(CoreError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn brighter_scenes_change_the_acquired_tensor() {
        let node = node(true, 8);
        let dark = node
            .acquire(&RgbFrame::filled(8, 8, [0.1, 0.1, 0.1]).expect("ok"))
            .expect("ok");
        let bright = node
            .acquire(&RgbFrame::filled(8, 8, [0.9, 0.9, 0.9]).expect("ok"))
            .expect("ok");
        assert!(bright.sum() > dark.sum());
    }
}
