//! Frame-sequence sources for streaming video workloads.
//!
//! The streaming pipeline consumes any iterator of [`RgbFrame`]s; this
//! module provides the two sources the repro ships with:
//!
//! * [`SyntheticVideo`] — a deterministic moving-pattern generator
//!   (every frame is a pure function of the configuration and the frame
//!   index, so replays and sharded serving see identical pixels);
//! * [`FrameSequence`] — a validated raw-frame iterator over frames
//!   captured elsewhere (all frames must share one resolution).

use crate::error::{Result, SensorError};
use crate::frame::RgbFrame;
use serde::{Deserialize, Serialize};

/// The motion law of a [`SyntheticVideo`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MotionPattern {
    /// A `size`×`size` square of the foreground colour gliding diagonally
    /// across the background, advancing `step` pixels every `hold` frames.
    /// Small `step` / large `hold` values make a *low-motion* stream where
    /// most blocks are temporally static — the regime in which the
    /// frame-delta compressive path shines.
    MovingSquare {
        /// Square edge in pixels.
        size: usize,
        /// Pixels the square advances per motion tick.
        step: usize,
        /// Frames between motion ticks (1 moves every frame).
        hold: usize,
    },
    /// A horizontally scrolling linear gradient: every pixel changes every
    /// frame — the worst case for temporal delta skipping.
    ScrollingGradient {
        /// Pixels the gradient scrolls per frame.
        step: usize,
    },
    /// No motion at all: every frame equals frame 0.
    Static,
}

/// Configuration of a [`SyntheticVideo`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticVideoConfig {
    /// Frame height in pixels.
    pub height: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Number of frames the iterator yields.
    pub frames: usize,
    /// RGB background colour (each component in `[0, 1]`).
    pub background: [f64; 3],
    /// RGB foreground colour (each component in `[0, 1]`).
    pub foreground: [f64; 3],
    /// The motion law.
    pub pattern: MotionPattern,
}

impl SyntheticVideoConfig {
    /// A low-motion surveillance-style scene: a small bright square drifting
    /// one pixel every other frame across a dark background.
    #[must_use]
    pub fn low_motion(height: usize, width: usize, frames: usize) -> Self {
        Self {
            height,
            width,
            frames,
            background: [0.1, 0.12, 0.1],
            foreground: [0.9, 0.8, 0.2],
            pattern: MotionPattern::MovingSquare {
                size: (height.min(width) / 4).max(1),
                step: 1,
                hold: 2,
            },
        }
    }

    /// A high-motion scene: a gradient scrolling across the whole frame, so
    /// every pixel changes every frame.
    #[must_use]
    pub fn high_motion(height: usize, width: usize, frames: usize) -> Self {
        Self {
            height,
            width,
            frames,
            background: [0.2, 0.2, 0.2],
            foreground: [0.8, 0.8, 0.8],
            pattern: MotionPattern::ScrollingGradient { step: 3 },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidDimensions`] for a zero-sized frame and
    /// [`SensorError::InvalidParameter`] for an oversized square, a zero
    /// square, a zero `hold`, or colour components outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.height == 0 || self.width == 0 {
            return Err(SensorError::InvalidDimensions {
                height: self.height,
                width: self.width,
            });
        }
        for &component in self.background.iter().chain(self.foreground.iter()) {
            if !component.is_finite() || !(0.0..=1.0).contains(&component) {
                return Err(SensorError::IntensityOutOfRange { value: component });
            }
        }
        if let MotionPattern::MovingSquare { size, hold, .. } = self.pattern {
            if size == 0 || size > self.height.min(self.width) {
                return Err(SensorError::InvalidParameter {
                    name: "size",
                    value: size as f64,
                });
            }
            if hold == 0 {
                return Err(SensorError::InvalidParameter {
                    name: "hold",
                    value: 0.0,
                });
            }
        }
        Ok(())
    }
}

/// A deterministic synthetic video: frame `i` is a pure function of the
/// configuration and `i`, so any consumer (a replayed session, a serving
/// shard) regenerating the stream sees bit-identical pixels.
///
/// ```
/// use lightator_sensor::video::{SyntheticVideo, SyntheticVideoConfig};
///
/// # fn main() -> Result<(), lightator_sensor::SensorError> {
/// let video = SyntheticVideo::new(SyntheticVideoConfig::low_motion(16, 16, 8))?;
/// let frames: Vec<_> = video.clone().collect();
/// assert_eq!(frames.len(), 8);
/// assert_eq!(frames[3], video.frame_at(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    config: SyntheticVideoConfig,
    next: usize,
}

impl SyntheticVideo {
    /// Creates a generator from a validated configuration.
    ///
    /// # Errors
    ///
    /// Same as [`SyntheticVideoConfig::validate`].
    pub fn new(config: SyntheticVideoConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config, next: 0 })
    }

    /// The generator's configuration.
    #[must_use]
    pub fn config(&self) -> &SyntheticVideoConfig {
        &self.config
    }

    /// Renders frame `index` (independent of the iterator position).
    #[must_use]
    pub fn frame_at(&self, index: usize) -> RgbFrame {
        let c = &self.config;
        let mut frame = RgbFrame::filled(c.height, c.width, c.background)
            // The constructor validated dimensions and colour range.
            // lightator: allow(no-unwrap)
            .expect("validated configuration renders valid frames");
        match c.pattern {
            MotionPattern::Static => {}
            MotionPattern::MovingSquare { size, step, hold } => {
                let ticks = index / hold.max(1);
                let offset = ticks * step;
                let row0 = offset % (c.height - size + 1);
                let col0 = offset % (c.width - size + 1);
                for row in row0..row0 + size {
                    for col in col0..col0 + size {
                        frame
                            .set_pixel(row, col, c.foreground)
                            // row/col are reduced modulo the frame extent.
                            // lightator: allow(no-unwrap)
                            .expect("square fits the frame");
                    }
                }
            }
            MotionPattern::ScrollingGradient { step } => {
                for row in 0..c.height {
                    for col in 0..c.width {
                        let phase = (col + index * step) % c.width;
                        let t = phase as f64 / c.width as f64;
                        let mix = |a: f64, b: f64| a + (b - a) * t;
                        frame
                            .set_pixel(
                                row,
                                col,
                                [
                                    mix(c.background[0], c.foreground[0]),
                                    mix(c.background[1], c.foreground[1]),
                                    mix(c.background[2], c.foreground[2]),
                                ],
                            )
                            // A convex mix of validated colours is in range.
                            // lightator: allow(no-unwrap)
                            .expect("mixed colours stay in range");
                    }
                }
            }
        }
        frame
    }
}

impl Iterator for SyntheticVideo {
    type Item = RgbFrame;

    fn next(&mut self) -> Option<RgbFrame> {
        if self.next >= self.config.frames {
            return None;
        }
        let frame = self.frame_at(self.next);
        self.next += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.frames - self.next;
        (left, Some(left))
    }
}

/// A validated raw-frame sequence: frames captured elsewhere, checked once
/// for a uniform resolution so downstream consumers can rely on it.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSequence {
    frames: Vec<RgbFrame>,
    next: usize,
}

impl FrameSequence {
    /// Wraps a non-empty list of equally-sized frames.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidDimensions`] for an empty sequence and
    /// [`SensorError::DataLengthMismatch`] when a frame's resolution differs
    /// from the first frame's.
    pub fn new(frames: Vec<RgbFrame>) -> Result<Self> {
        let Some(first) = frames.first() else {
            return Err(SensorError::InvalidDimensions {
                height: 0,
                width: 0,
            });
        };
        let expected = first.height() * first.width() * 3;
        for frame in &frames {
            if frame.height() != first.height() || frame.width() != first.width() {
                return Err(SensorError::DataLengthMismatch {
                    expected,
                    actual: frame.height() * frame.width() * 3,
                });
            }
        }
        Ok(Self { frames, next: 0 })
    }

    /// Number of frames in the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence is empty (never true for validated sequences).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Resolution shared by every frame, as `(height, width)`.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.frames[0].height(), self.frames[0].width())
    }

    /// The validated frames, by reference.
    #[must_use]
    pub fn frames(&self) -> &[RgbFrame] {
        &self.frames
    }

    /// Surrenders the validated frames.
    #[must_use]
    pub fn into_frames(self) -> Vec<RgbFrame> {
        self.frames
    }
}

impl Iterator for FrameSequence {
    type Item = RgbFrame;

    fn next(&mut self) -> Option<RgbFrame> {
        let frame = self.frames.get(self.next)?.clone();
        self.next += 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_motion_square_moves_slowly() {
        let video = SyntheticVideo::new(SyntheticVideoConfig::low_motion(16, 16, 6)).expect("ok");
        let f0 = video.frame_at(0);
        let f1 = video.frame_at(1);
        // hold = 2: frame 1 equals frame 0, frame 2 differs.
        assert_eq!(f0, f1);
        assert_ne!(f0, video.frame_at(2));
        // The changed pixels are confined to the square's neighbourhood.
        let changed = f0
            .data()
            .iter()
            .zip(video.frame_at(2).data())
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 0 && changed < f0.data().len() / 4);
    }

    #[test]
    fn high_motion_gradient_changes_every_pixel() {
        let video = SyntheticVideo::new(SyntheticVideoConfig::high_motion(8, 8, 4)).expect("ok");
        let f0 = video.frame_at(0);
        let f1 = video.frame_at(1);
        let changed = f0
            .data()
            .iter()
            .zip(f1.data())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, f0.data().len(), "gradient must move everywhere");
    }

    #[test]
    fn iterator_matches_frame_at_and_respects_length() {
        let video = SyntheticVideo::new(SyntheticVideoConfig::low_motion(8, 8, 5)).expect("ok");
        let frames: Vec<_> = video.clone().collect();
        assert_eq!(frames.len(), 5);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame, &video.frame_at(i));
        }
    }

    #[test]
    fn static_pattern_repeats_frame_zero() {
        let config = SyntheticVideoConfig {
            pattern: MotionPattern::Static,
            ..SyntheticVideoConfig::low_motion(8, 8, 3)
        };
        let video = SyntheticVideo::new(config).expect("ok");
        assert_eq!(video.frame_at(0), video.frame_at(2));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SyntheticVideo::new(SyntheticVideoConfig::low_motion(0, 8, 3)).is_err());
        let oversized = SyntheticVideoConfig {
            pattern: MotionPattern::MovingSquare {
                size: 9,
                step: 1,
                hold: 1,
            },
            ..SyntheticVideoConfig::low_motion(8, 8, 3)
        };
        assert!(SyntheticVideo::new(oversized).is_err());
        let bad_colour = SyntheticVideoConfig {
            foreground: [1.5, 0.0, 0.0],
            ..SyntheticVideoConfig::low_motion(8, 8, 3)
        };
        assert!(SyntheticVideo::new(bad_colour).is_err());
    }

    #[test]
    fn frame_sequences_validate_uniform_resolution() {
        let frames = vec![
            RgbFrame::filled(4, 4, [0.1, 0.2, 0.3]).expect("ok"),
            RgbFrame::filled(4, 4, [0.4, 0.5, 0.6]).expect("ok"),
        ];
        let sequence = FrameSequence::new(frames.clone()).expect("uniform");
        assert_eq!(sequence.len(), 2);
        assert_eq!(sequence.resolution(), (4, 4));
        assert_eq!(sequence.clone().collect::<Vec<_>>(), frames);

        assert!(FrameSequence::new(vec![]).is_err());
        let mixed = vec![
            RgbFrame::filled(4, 4, [0.1, 0.2, 0.3]).expect("ok"),
            RgbFrame::filled(2, 2, [0.1, 0.2, 0.3]).expect("ok"),
        ];
        assert!(FrameSequence::new(mixed).is_err());
    }
}
