//! Umbrella crate for the Lightator reproduction.
//!
//! Re-exports every crate of the workspace so examples, integration tests and
//! downstream users can depend on a single entry point:
//!
//! * [`photonics`] — micro-rings, VCSELs, detectors, WDM, noise;
//! * [`sensor`] — the ADC-less imager and the DMVA;
//! * [`nn`] — tensors, layers, quantization, training, topologies, datasets;
//! * [`core`] — the Lightator optical core, mapper, energy model, simulator
//!   and end-to-end pipeline;
//! * [`baselines`] — photonic and electronic baseline accelerator models;
//! * [`bench`](mod@bench) — the experiment harness regenerating Table 1 and Figs. 8–10;
//! * [`serve`] — the sharded, micro-batching inference server turning
//!   per-batch wins into system-level throughput;
//! * [`telemetry`] — deterministic simulated-time tracing: ring-buffer
//!   recorder, per-stage energy/latency attribution and Perfetto export;
//! * [`analysis`] — the determinism lint and static plan verifier backing
//!   the `lint_workspace` CI gate.
//!
//! # Quickstart
//!
//! The [`Platform`]/[`Session`]/[`Workload`] facade is the front door: build
//! a validated platform once, open a session per workload, and read both the
//! functional result and the performance figures from one [`Report`]:
//!
//! ```
//! use lightator_suite::{Platform, Workload};
//! use lightator_suite::sensor::frame::RgbFrame;
//!
//! # fn main() -> Result<(), lightator_suite::core::CoreError> {
//! let platform = Platform::builder().sensor_resolution(16, 16).build()?;
//! let mut session = platform.session(Workload::Acquire)?;
//! let report = session.run(&RgbFrame::filled(16, 16, [0.7, 0.4, 0.2])?)?;
//! assert!(report.kfps_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use lightator_analysis as analysis;
pub use lightator_baselines as baselines;
pub use lightator_bench as bench;
pub use lightator_core as core;
pub use lightator_nn as nn;
pub use lightator_photonics as photonics;
pub use lightator_sensor as sensor;
pub use lightator_serve as serve;
pub use lightator_telemetry as telemetry;

pub use lightator_core::backend::{Backend, BackendId};
pub use lightator_core::plan::{CompiledPlan, PlanStats};
pub use lightator_core::platform::{
    ImageKernel, Outcome, Platform, PlatformBuilder, PlatformConfig, Report, Session, Workload,
};
pub use lightator_core::stream::{StreamConfig, StreamFrame, StreamReport, StreamState};
pub use lightator_sensor::video::{
    FrameSequence, MotionPattern, SyntheticVideo, SyntheticVideoConfig,
};
pub use lightator_serve::{
    run_soak, ArrivalProcess, BackendSnapshot, MetricsSnapshot, Pending, Priority, Request,
    Response, ServeConfig, ServeError, Server, ServerBuilder, ShardSnapshot, SloConfig, SoakConfig,
    SoakOutcome, TrafficMix,
};
