//! Physical unit newtypes used throughout the photonic device models.
//!
//! The simulator mixes optical, electrical and thermal quantities; wrapping
//! them in dedicated newtypes keeps call sites self-documenting and prevents
//! a wavelength from being accidentally passed where a power is expected
//! (C-NEWTYPE).
//!
//! All newtypes are thin wrappers over `f64`, are `Copy`, and expose their
//! canonical unit through an accessor named after the unit (`nm()`, `mw()`,
//! `ma()`, ...). Conversions to secondary units (`dbm()`, `um()`, ...) are
//! provided where they are commonly needed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $accessor:ident, $ctor:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            #[doc = concat!("Creates a value expressed in ", $unit, ".")]
            #[must_use]
            pub const fn $ctor(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the value in ", $unit, ".")]
            #[must_use]
            pub const fn $accessor(&self) -> f64 {
                self.0
            }

            /// Returns the zero value.
            #[must_use]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns `true` if the value is exactly zero.
            #[must_use]
            pub fn is_zero(&self) -> bool {
                self.0 == 0.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(&self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

unit_newtype!(
    /// Optical wavelength, canonically expressed in nanometres.
    ///
    /// ```
    /// use lightator_photonics::units::Wavelength;
    /// let c_band = Wavelength::from_nm(1550.0);
    /// assert!((c_band.um() - 1.55).abs() < 1e-12);
    /// ```
    Wavelength, "nm", nm, from_nm
);

impl Wavelength {
    /// Returns the wavelength in micrometres.
    #[must_use]
    pub fn um(&self) -> f64 {
        self.nm() / 1e3
    }

    /// Returns the wavelength in metres.
    #[must_use]
    pub fn meters(&self) -> f64 {
        self.nm() * 1e-9
    }

    /// Creates a wavelength from micrometres.
    #[must_use]
    pub fn from_um(um: f64) -> Self {
        Self::from_nm(um * 1e3)
    }
}

unit_newtype!(
    /// Optical or electrical power, canonically expressed in milliwatts.
    ///
    /// ```
    /// use lightator_photonics::units::Power;
    /// let p = Power::from_mw(1.0);
    /// assert!((p.dbm() - 0.0).abs() < 1e-12);
    /// ```
    Power, "mW", mw, from_mw
);

impl Power {
    /// Creates a power value from watts.
    #[must_use]
    pub fn from_watts(watts: f64) -> Self {
        Self::from_mw(watts * 1e3)
    }

    /// Returns the power in watts.
    #[must_use]
    pub fn watts(&self) -> f64 {
        self.mw() / 1e3
    }

    /// Returns the power in microwatts.
    #[must_use]
    pub fn uw(&self) -> f64 {
        self.mw() * 1e3
    }

    /// Creates a power value from microwatts.
    #[must_use]
    pub fn from_uw(uw: f64) -> Self {
        Self::from_mw(uw / 1e3)
    }

    /// Returns the power in dBm.
    ///
    /// # Panics
    ///
    /// Does not panic; non-positive powers map to negative infinity, matching
    /// the convention that 0 mW has no finite dBm representation.
    #[must_use]
    pub fn dbm(&self) -> f64 {
        10.0 * (self.mw()).log10()
    }

    /// Creates a power value from dBm.
    #[must_use]
    pub fn from_dbm(dbm: f64) -> Self {
        Self::from_mw(10f64.powf(dbm / 10.0))
    }

    /// Multiplies this power by a linear (not dB) transmission factor.
    #[must_use]
    pub fn attenuated_by(self, linear_factor: f64) -> Self {
        Self::from_mw(self.mw() * linear_factor)
    }

    /// Multiplies this power by a loss expressed in dB (positive = loss).
    #[must_use]
    pub fn after_loss_db(self, loss_db: f64) -> Self {
        self.attenuated_by(db_to_linear(-loss_db))
    }
}

unit_newtype!(
    /// Electrical current, canonically expressed in milliamps.
    Current, "mA", ma, from_ma
);

impl Current {
    /// Creates a current from microamps.
    #[must_use]
    pub fn from_ua(ua: f64) -> Self {
        Self::from_ma(ua / 1e3)
    }

    /// Returns the current in microamps.
    #[must_use]
    pub fn ua(&self) -> f64 {
        self.ma() * 1e3
    }

    /// Returns the current in amps.
    #[must_use]
    pub fn amps(&self) -> f64 {
        self.ma() / 1e3
    }
}

unit_newtype!(
    /// Electrical voltage, canonically expressed in volts.
    Voltage, "V", volts, from_volts
);

impl Voltage {
    /// Returns the voltage in millivolts.
    #[must_use]
    pub fn mv(&self) -> f64 {
        self.volts() * 1e3
    }

    /// Creates a voltage from millivolts.
    #[must_use]
    pub fn from_mv(mv: f64) -> Self {
        Self::from_volts(mv / 1e3)
    }
}

unit_newtype!(
    /// Energy, canonically expressed in picojoules.
    Energy, "pJ", pj, from_pj
);

impl Energy {
    /// Creates an energy from femtojoules.
    #[must_use]
    pub fn from_fj(fj: f64) -> Self {
        Self::from_pj(fj / 1e3)
    }

    /// Returns the energy in femtojoules.
    #[must_use]
    pub fn fj(&self) -> f64 {
        self.pj() * 1e3
    }

    /// Returns the energy in nanojoules.
    #[must_use]
    pub fn nj(&self) -> f64 {
        self.pj() / 1e3
    }

    /// Returns the energy in joules.
    #[must_use]
    pub fn joules(&self) -> f64 {
        self.pj() * 1e-12
    }

    /// Average power dissipated when this energy is spent over `duration`.
    #[must_use]
    pub fn over(&self, duration: Time) -> Power {
        if duration.is_zero() {
            return Power::zero();
        }
        Power::from_watts(self.joules() / duration.seconds())
    }
}

unit_newtype!(
    /// Time duration, canonically expressed in nanoseconds.
    Time, "ns", ns, from_ns
);

impl Time {
    /// Creates a time from picoseconds.
    #[must_use]
    pub fn from_ps(ps: f64) -> Self {
        Self::from_ns(ps / 1e3)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1e3)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1e6)
    }

    /// Creates a time from seconds.
    #[must_use]
    pub fn from_seconds(s: f64) -> Self {
        Self::from_ns(s * 1e9)
    }

    /// Returns the time in picoseconds.
    #[must_use]
    pub fn ps(&self) -> f64 {
        self.ns() * 1e3
    }

    /// Returns the time in microseconds.
    #[must_use]
    pub fn us(&self) -> f64 {
        self.ns() / 1e3
    }

    /// Returns the time in milliseconds.
    #[must_use]
    pub fn ms(&self) -> f64 {
        self.ns() / 1e6
    }

    /// Returns the time in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.ns() * 1e-9
    }
}

unit_newtype!(
    /// Silicon area, canonically expressed in square millimetres.
    Area, "mm^2", mm2, from_mm2
);

impl Area {
    /// Creates an area from square micrometres.
    #[must_use]
    pub fn from_um2(um2: f64) -> Self {
        Self::from_mm2(um2 / 1e6)
    }

    /// Returns the area in square micrometres.
    #[must_use]
    pub fn um2(&self) -> f64 {
        self.mm2() * 1e6
    }
}

unit_newtype!(
    /// Temperature difference, canonically expressed in kelvin.
    TemperatureDelta, "K", kelvin, from_kelvin
);

/// Converts a ratio expressed in decibels to a linear factor.
///
/// ```
/// use lightator_photonics::units::db_to_linear;
/// assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-3);
/// ```
#[must_use]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear factor to decibels.
///
/// ```
/// use lightator_photonics::units::linear_to_db;
/// assert!((linear_to_db(2.0) - 3.0103).abs() < 1e-3);
/// ```
#[must_use]
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Multiplies `power` by `energy-per-op × ops/s` style products; convenience
/// for converting a per-operation energy plus an operating rate to power.
#[must_use]
pub fn energy_rate_to_power(energy_per_op: Energy, ops_per_second: f64) -> Power {
    Power::from_watts(energy_per_op.joules() * ops_per_second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_unit_conversions() {
        let w = Wavelength::from_nm(1550.0);
        assert!((w.um() - 1.55).abs() < 1e-12);
        assert!((w.meters() - 1.55e-6).abs() < 1e-18);
        assert_eq!(Wavelength::from_um(1.55), w);
    }

    #[test]
    fn power_dbm_round_trip() {
        for dbm in [-30.0, -10.0, 0.0, 3.0, 10.0] {
            let p = Power::from_dbm(dbm);
            assert!((p.dbm() - dbm).abs() < 1e-9, "round trip failed at {dbm}");
        }
    }

    #[test]
    fn power_loss_application() {
        let p = Power::from_mw(2.0);
        let after = p.after_loss_db(3.0103);
        assert!((after.mw() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn zero_power_dbm_is_negative_infinity() {
        assert!(Power::zero().dbm().is_infinite());
        assert!(Power::zero().dbm() < 0.0);
    }

    #[test]
    fn energy_over_time_gives_power() {
        let e = Energy::from_pj(1000.0); // 1 nJ
        let t = Time::from_ns(1.0);
        // 1 nJ over 1 ns = 1 W
        assert!((e.over(t).watts() - 1.0).abs() < 1e-12);
        assert_eq!(e.over(Time::zero()), Power::zero());
    }

    #[test]
    fn time_conversions_consistent() {
        let t = Time::from_ms(2.0);
        assert!((t.us() - 2000.0).abs() < 1e-9);
        assert!((t.seconds() - 0.002).abs() < 1e-15);
        assert!((Time::from_seconds(0.002).ns() - t.ns()).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_operators_behave() {
        let a = Power::from_mw(1.5);
        let b = Power::from_mw(0.5);
        assert_eq!((a + b).mw(), 2.0);
        assert_eq!((a - b).mw(), 1.0);
        assert_eq!((a * 2.0).mw(), 3.0);
        assert_eq!((a / 3.0).mw(), 0.5);
        assert_eq!(a / b, 3.0);
        let total: Power = [a, b, b].into_iter().sum();
        assert_eq!(total.mw(), 2.5);
    }

    #[test]
    fn db_linear_round_trip() {
        for db in [-20.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            let lin = db_to_linear(db);
            assert!((linear_to_db(lin) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Wavelength::from_nm(1550.0)), "1550 nm");
        assert_eq!(format!("{}", Power::from_mw(2.0)), "2 mW");
    }

    #[test]
    fn energy_rate_to_power_matches_manual() {
        // 1 pJ per op at 1 GHz = 1 mW
        let p = energy_rate_to_power(Energy::from_pj(1.0), 1e9);
        assert!((p.mw() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_conversions() {
        let a = Area::from_um2(1e6);
        assert!((a.mm2() - 1.0).abs() < 1e-12);
        assert!((a.um2() - 1e6).abs() < 1e-3);
    }
}
