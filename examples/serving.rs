//! Serving at scale: a closed-loop load generator hammering a sharded,
//! micro-batching `lightator-serve` server with mixed workloads.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! Six client threads submit classify / acquire / Sobel-kernel requests in
//! a closed loop against a 2-shard-per-workload pool, then the example
//! prints the server's metrics table and the shard-scaling headline.

use lightator_suite::bench::emit::{self, BenchMetric};
use lightator_suite::core::ca::CaConfig;
use lightator_suite::nn::layers::{Activation, Flatten, Linear};
use lightator_suite::nn::model::Sequential;
use lightator_suite::sensor::frame::RgbFrame;
use lightator_suite::serve::{Request, ServeError, Server};
use lightator_suite::{ImageKernel, Platform, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SENSOR: usize = 8;
const CLIENTS: usize = 6;
const FRAMES_PER_CLIENT: usize = 12;
const SHARDS: usize = 2;

fn classifier() -> Sequential {
    let mut rng = SmallRng::seed_from_u64(5);
    // 2x2 compressive acquisition halves the 8x8 sensor to [1, 4, 4].
    let mut model = Sequential::new(&[1, 4, 4]);
    model.push(Flatten::new());
    model.push(Linear::new(16, 24, &mut rng).expect("linear"));
    model.push(Activation::relu());
    model.push(Linear::new(24, 4, &mut rng).expect("linear"));
    model
}

fn request_for(client: usize, index: usize, frame: RgbFrame) -> Request {
    match (client + index) % 3 {
        0 => Request::Classify { frame },
        1 => Request::Acquire { frame },
        _ => Request::ImageKernel {
            kernel: ImageKernel::SobelX,
            frame,
        },
    }
}

fn main() -> Result<(), ServeError> {
    let platform = Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .compressive_acquisition(CaConfig::default())
        .build()?;
    let server = Server::builder(platform)
        .shards(SHARDS)
        .max_batch(4)
        .queue_depth(4 * CLIENTS)
        .workload(Workload::Classify {
            model: classifier(),
        })
        .workload(Workload::Acquire)
        .workload(Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        })
        .build()?;
    println!(
        "serving {:?} with {SHARDS} shards per workload group\n",
        server.workloads()
    );

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(client as u64);
                for index in 0..FRAMES_PER_CLIENT {
                    let data: Vec<f64> =
                        (0..SENSOR * SENSOR * 3).map(|_| rng.gen::<f64>()).collect();
                    let frame = RgbFrame::new(SENSOR, SENSOR, data).expect("frame");
                    loop {
                        match server.run(request_for(client, index, frame.clone())) {
                            Ok(report) => {
                                if index == 0 {
                                    println!(
                                        "client {client}: first `{}` report in {:.3} us \
                                         ({:.1} KFPS/W)",
                                        report.workload,
                                        report.latency().us(),
                                        report.kfps_per_watt()
                                    );
                                }
                                break;
                            }
                            // Admission control pushed back: retry later.
                            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                            Err(err) => panic!("serving failed: {err}"),
                        }
                    }
                }
            });
        }
    });

    let metrics = server.shutdown();
    println!("\n== server metrics ==\n{}", metrics.table());
    println!(
        "sustained pooled throughput: {:.0} frames per simulated second",
        metrics.throughput_fps()
    );
    assert_eq!(
        metrics.completed as usize,
        CLIENTS * FRAMES_PER_CLIENT,
        "every submitted frame is served before shutdown returns"
    );

    // Machine-readable artifact for the perf trajectory, next to the other
    // BENCH_*.json documents.
    let path = emit::emit(
        "serve_metrics",
        &[
            BenchMetric::new("completed_requests", metrics.completed as f64, "requests"),
            BenchMetric::new("rejected_requests", metrics.rejected as f64, "requests"),
            BenchMetric::new("errored_requests", metrics.errored as f64, "requests"),
            BenchMetric::new("served_frames", metrics.served_frames as f64, "frames"),
            BenchMetric::new("throughput_fps", metrics.throughput_fps(), "frames/s"),
            BenchMetric::new("p50_queue_wait_us", metrics.p50_queue_wait.us(), "us"),
            BenchMetric::new("p99_queue_wait_us", metrics.p99_queue_wait.us(), "us"),
            BenchMetric::new("plan_encodes", metrics.plan_encodes as f64, "encodes"),
            BenchMetric::new("plan_cache_hits", metrics.plan_hits as f64, "hits"),
        ],
    )
    .expect("emit BENCH_serve_metrics.json");
    println!("wrote {}", path.display());
    Ok(())
}
