//! Wavelength-division-multiplexing (WDM) channel grid and crosstalk model.
//!
//! Every arm of a Lightator MVM bank carries up to nine activations, each on
//! its own wavelength. The grid defines those wavelengths and the crosstalk
//! model captures how a ring tuned to one channel partially (and undesirably)
//! attenuates its spectral neighbours — the dominant analog error source of
//! non-coherent photonic accelerators.

use crate::error::{PhotonicsError, Result};
use crate::microring::MicroringConfig;
use crate::units::Wavelength;
use serde::{Deserialize, Serialize};

/// A uniformly spaced WDM channel grid.
///
/// ```
/// use lightator_photonics::wdm::WdmGrid;
/// use lightator_photonics::units::Wavelength;
///
/// # fn main() -> Result<(), lightator_photonics::PhotonicsError> {
/// let grid = WdmGrid::new(Wavelength::from_nm(1550.0), Wavelength::from_nm(0.8), 9)?;
/// assert_eq!(grid.channels(), 9);
/// assert!((grid.wavelength(1)?.nm() - 1550.8).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WdmGrid {
    start: Wavelength,
    spacing: Wavelength,
    channels: usize,
}

impl WdmGrid {
    /// Creates a grid of `channels` wavelengths starting at `start` with
    /// uniform `spacing`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the spacing is not
    /// positive or `channels` is zero.
    pub fn new(start: Wavelength, spacing: Wavelength, channels: usize) -> Result<Self> {
        if spacing.nm() <= 0.0 || !spacing.nm().is_finite() {
            return Err(PhotonicsError::InvalidParameter {
                name: "spacing",
                value: spacing.nm(),
            });
        }
        if channels == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "channels",
                value: 0.0,
            });
        }
        Ok(Self {
            start,
            spacing,
            channels,
        })
    }

    /// A convenient default grid for a 9-MR Lightator arm: 0.8 nm spacing
    /// around 1550 nm.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in parameters; the `Result` mirrors
    /// [`WdmGrid::new`] so callers can use `?` uniformly.
    pub fn lightator_arm(channels: usize) -> Result<Self> {
        Self::new(
            Wavelength::from_nm(1546.0),
            Wavelength::from_nm(0.8),
            channels,
        )
    }

    /// Number of channels in the grid.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Channel spacing.
    #[must_use]
    pub fn spacing(&self) -> Wavelength {
        self.spacing
    }

    /// Wavelength of channel `index`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::ChannelOutOfRange`] when `index` is outside
    /// the grid.
    pub fn wavelength(&self, index: usize) -> Result<Wavelength> {
        if index >= self.channels {
            return Err(PhotonicsError::ChannelOutOfRange {
                channel: index,
                channels: self.channels,
            });
        }
        Ok(Wavelength::from_nm(
            self.start.nm() + self.spacing.nm() * index as f64,
        ))
    }

    /// Iterator over all channel wavelengths in index order.
    pub fn iter(&self) -> impl Iterator<Item = Wavelength> + '_ {
        (0..self.channels)
            .map(move |i| Wavelength::from_nm(self.start.nm() + self.spacing.nm() * i as f64))
    }
}

/// Inter-channel crosstalk model for an arm of rings on a shared bus.
///
/// When the ring assigned to channel *j* is tuned, its Lorentzian tail also
/// attenuates channel *i ≠ j* by a factor that depends on the spectral
/// distance `|i − j| · spacing` and the ring linewidth. The model exposes the
/// full crosstalk matrix so the arm simulation can apply it to the activation
/// vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkModel {
    grid: WdmGrid,
    ring: MicroringConfig,
    enabled: bool,
}

impl CrosstalkModel {
    /// Creates a crosstalk model for the given grid and ring design.
    #[must_use]
    pub fn new(grid: WdmGrid, ring: MicroringConfig) -> Self {
        Self {
            grid,
            ring,
            enabled: true,
        }
    }

    /// Creates a disabled (ideal, crosstalk-free) model for the same grid.
    #[must_use]
    pub fn ideal(grid: WdmGrid, ring: MicroringConfig) -> Self {
        Self {
            grid,
            ring,
            enabled: false,
        }
    }

    /// Whether crosstalk is applied.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The channel grid.
    #[must_use]
    pub fn grid(&self) -> &WdmGrid {
        &self.grid
    }

    /// Parasitic transmission factor that the ring parked on channel
    /// `ring_channel` imposes on a signal at channel `signal_channel`, when
    /// the ring is tuned close to its own channel (worst case).
    ///
    /// Returns 1.0 for the ring's own channel (the intended weighting is
    /// handled by the MR model itself) and when the model is disabled.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::ChannelOutOfRange`] if either index is
    /// outside the grid.
    pub fn parasitic_transmission(
        &self,
        ring_channel: usize,
        signal_channel: usize,
    ) -> Result<f64> {
        let ring_lambda = self.grid.wavelength(ring_channel)?;
        let signal_lambda = self.grid.wavelength(signal_channel)?;
        if !self.enabled || ring_channel == signal_channel {
            return Ok(1.0);
        }
        let delta = signal_lambda.nm() - ring_lambda.nm();
        let half_width = self.ring.fwhm().nm() / 2.0;
        let lorentz = 1.0 / (1.0 + (delta / half_width).powi(2));
        let t_min = self.ring.minimum_transmission();
        Ok(1.0 - (1.0 - t_min) * lorentz)
    }

    /// Full crosstalk matrix `M` where `M[i][j]` is the parasitic
    /// transmission applied to channel `i` by the ring assigned to channel
    /// `j`. The diagonal is 1.0.
    ///
    /// # Errors
    ///
    /// Propagates [`PhotonicsError::ChannelOutOfRange`] (cannot occur for a
    /// well-formed grid).
    pub fn matrix(&self) -> Result<Vec<Vec<f64>>> {
        let n = self.grid.channels();
        let mut m = vec![vec![1.0; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.parasitic_transmission(j, i)?;
            }
        }
        Ok(m)
    }

    /// Applies the aggregate crosstalk of all rings in an arm to a vector of
    /// per-channel optical intensities, in place.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::LengthMismatch`] if the vector length does
    /// not match the grid.
    pub fn apply(&self, intensities: &mut [f64]) -> Result<()> {
        if intensities.len() != self.grid.channels() {
            return Err(PhotonicsError::LengthMismatch {
                expected: self.grid.channels(),
                actual: intensities.len(),
            });
        }
        if !self.enabled {
            return Ok(());
        }
        let n = intensities.len();
        let mut factors = vec![1.0; n];
        for (i, factor) in factors.iter_mut().enumerate() {
            for j in 0..n {
                if i != j {
                    *factor *= self.parasitic_transmission(j, i)?;
                }
            }
        }
        for (value, factor) in intensities.iter_mut().zip(factors) {
            *value *= factor;
        }
        Ok(())
    }

    /// Worst-case aggregate crosstalk penalty in dB experienced by any
    /// channel of the grid (useful for reporting / design-space sweeps).
    ///
    /// # Errors
    ///
    /// Propagates grid errors (cannot occur for a well-formed grid).
    pub fn worst_case_penalty_db(&self) -> Result<f64> {
        let n = self.grid.channels();
        let mut worst: f64 = 1.0;
        for i in 0..n {
            let mut factor = 1.0;
            for j in 0..n {
                if i != j {
                    factor *= self.parasitic_transmission(j, i)?;
                }
            }
            worst = worst.min(factor);
        }
        Ok(-10.0 * worst.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> WdmGrid {
        WdmGrid::lightator_arm(9).expect("valid")
    }

    #[test]
    fn grid_wavelengths_are_uniformly_spaced() {
        let g = grid();
        let lambdas: Vec<f64> = g.iter().map(|w| w.nm()).collect();
        assert_eq!(lambdas.len(), 9);
        for pair in lambdas.windows(2) {
            assert!((pair[1] - pair[0] - 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_rejects_bad_parameters() {
        assert!(WdmGrid::new(Wavelength::from_nm(1550.0), Wavelength::from_nm(0.0), 4).is_err());
        assert!(WdmGrid::new(Wavelength::from_nm(1550.0), Wavelength::from_nm(0.8), 0).is_err());
    }

    #[test]
    fn grid_rejects_out_of_range_channel() {
        let g = grid();
        assert!(matches!(
            g.wavelength(9),
            Err(PhotonicsError::ChannelOutOfRange {
                channel: 9,
                channels: 9
            })
        ));
    }

    #[test]
    fn crosstalk_diagonal_is_unity() {
        let model = CrosstalkModel::new(grid(), MicroringConfig::default());
        for i in 0..9 {
            assert!((model.parasitic_transmission(i, i).expect("ok") - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn crosstalk_decays_with_channel_distance() {
        let model = CrosstalkModel::new(grid(), MicroringConfig::default());
        let near = model.parasitic_transmission(0, 1).expect("ok");
        let far = model.parasitic_transmission(0, 8).expect("ok");
        assert!(near < far, "adjacent channels must suffer more crosstalk");
        assert!(far > 0.999, "distant channels are essentially untouched");
    }

    #[test]
    fn ideal_model_is_transparent() {
        let model = CrosstalkModel::ideal(grid(), MicroringConfig::default());
        let mut v = vec![0.5; 9];
        model.apply(&mut v).expect("ok");
        assert!(v.iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }

    #[test]
    fn apply_reduces_intensities_when_enabled() {
        let model = CrosstalkModel::new(grid(), MicroringConfig::default());
        let mut v = vec![1.0; 9];
        model.apply(&mut v).expect("ok");
        assert!(v.iter().all(|&x| x <= 1.0));
        assert!(
            v.iter().any(|&x| x < 1.0),
            "some channel must see crosstalk"
        );
    }

    #[test]
    fn apply_rejects_wrong_length() {
        let model = CrosstalkModel::new(grid(), MicroringConfig::default());
        let mut v = vec![1.0; 4];
        assert!(matches!(
            model.apply(&mut v),
            Err(PhotonicsError::LengthMismatch {
                expected: 9,
                actual: 4
            })
        ));
    }

    #[test]
    fn matrix_is_square_and_bounded() {
        let model = CrosstalkModel::new(grid(), MicroringConfig::default());
        let m = model.matrix().expect("ok");
        assert_eq!(m.len(), 9);
        for row in &m {
            assert_eq!(row.len(), 9);
            for &x in row {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn worst_case_penalty_is_positive_but_small() {
        let model = CrosstalkModel::new(grid(), MicroringConfig::default());
        let penalty = model.worst_case_penalty_db().expect("ok");
        assert!(penalty > 0.0);
        assert!(
            penalty < 3.0,
            "a sane grid keeps aggregate crosstalk below 3 dB"
        );
    }
}
