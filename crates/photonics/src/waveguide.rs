//! Waveguide, coupler and splitter loss models.
//!
//! These passive elements determine the optical link budget between the
//! DMVA's VCSELs and the balanced photodetectors at the end of every MVM-bank
//! arm. The losses do not change the *value* computed by a photonic MAC (it
//! is a common factor across wavelengths) but they determine how much laser
//! power must be injected to keep the detector SNR acceptable, which is where
//! optical accelerators pay their power bill.

use crate::error::{PhotonicsError, Result};
use crate::units::{db_to_linear, Power};
use serde::{Deserialize, Serialize};

/// Loss parameters of the passive optical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveguideConfig {
    /// Propagation loss in dB/cm.
    pub propagation_loss_db_per_cm: f64,
    /// Loss of each fibre/chip or laser/chip coupler in dB.
    pub coupler_loss_db: f64,
    /// Excess loss of each Y-branch / MMI splitter stage in dB.
    pub splitter_loss_db: f64,
    /// Per-MR through-port insertion loss already accounted in the MR model;
    /// kept here for link budgets that bypass the MR objects, in dB.
    pub per_ring_through_loss_db: f64,
}

impl Default for WaveguideConfig {
    fn default() -> Self {
        Self {
            propagation_loss_db_per_cm: 1.5,
            coupler_loss_db: 1.0,
            splitter_loss_db: 0.2,
            per_ring_through_loss_db: 0.05,
        }
    }
}

impl WaveguideConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] naming the first negative
    /// or non-finite loss.
    pub fn validate(&self) -> Result<()> {
        let params = [
            (
                "propagation_loss_db_per_cm",
                self.propagation_loss_db_per_cm,
            ),
            ("coupler_loss_db", self.coupler_loss_db),
            ("splitter_loss_db", self.splitter_loss_db),
            ("per_ring_through_loss_db", self.per_ring_through_loss_db),
        ];
        for (name, value) in params {
            if !value.is_finite() || value < 0.0 {
                return Err(PhotonicsError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// A point-to-point optical link budget.
///
/// ```
/// use lightator_photonics::waveguide::{LinkBudget, WaveguideConfig};
///
/// # fn main() -> Result<(), lightator_photonics::PhotonicsError> {
/// let link = LinkBudget::new(WaveguideConfig::default())
///     .with_length_mm(5.0)
///     .with_couplers(2)
///     .with_splitter_stages(3)
///     .with_rings_passed(9);
/// let loss = link.total_loss_db()?;
/// assert!(loss > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    config: WaveguideConfig,
    length_mm: f64,
    couplers: u32,
    splitter_stages: u32,
    rings_passed: u32,
}

impl LinkBudget {
    /// Creates an empty link budget (zero length, no discrete elements).
    #[must_use]
    pub fn new(config: WaveguideConfig) -> Self {
        Self {
            config,
            length_mm: 0.0,
            couplers: 0,
            splitter_stages: 0,
            rings_passed: 0,
        }
    }

    /// Sets the propagation length in millimetres.
    #[must_use]
    pub fn with_length_mm(mut self, length_mm: f64) -> Self {
        self.length_mm = length_mm;
        self
    }

    /// Sets the number of chip couplers traversed.
    #[must_use]
    pub fn with_couplers(mut self, couplers: u32) -> Self {
        self.couplers = couplers;
        self
    }

    /// Sets the number of 1×2 splitter stages traversed.
    #[must_use]
    pub fn with_splitter_stages(mut self, stages: u32) -> Self {
        self.splitter_stages = stages;
        self
    }

    /// Sets the number of (off-resonance) rings the signal passes.
    #[must_use]
    pub fn with_rings_passed(mut self, rings: u32) -> Self {
        self.rings_passed = rings;
        self
    }

    /// The waveguide configuration used by this budget.
    #[must_use]
    pub fn config(&self) -> &WaveguideConfig {
        &self.config
    }

    /// Total excess loss in dB (not counting the intentional 1/2^stages
    /// splitting ratio, which is reported separately by
    /// [`splitting_ratio_linear`]).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration or
    /// the length is invalid.
    ///
    /// [`splitting_ratio_linear`]: LinkBudget::splitting_ratio_linear
    pub fn total_loss_db(&self) -> Result<f64> {
        self.config.validate()?;
        if !self.length_mm.is_finite() || self.length_mm < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "length_mm",
                value: self.length_mm,
            });
        }
        let propagation = self.config.propagation_loss_db_per_cm * self.length_mm / 10.0;
        let couplers = self.config.coupler_loss_db * f64::from(self.couplers);
        let splitters = self.config.splitter_loss_db * f64::from(self.splitter_stages);
        let rings = self.config.per_ring_through_loss_db * f64::from(self.rings_passed);
        Ok(propagation + couplers + splitters + rings)
    }

    /// Intentional power-splitting ratio, `1 / 2^stages`.
    #[must_use]
    pub fn splitting_ratio_linear(&self) -> f64 {
        0.5f64.powi(self.splitter_stages as i32)
    }

    /// Optical power arriving at the end of the link for a given launch
    /// power, including both excess loss and the splitting ratio.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration or
    /// the length is invalid.
    pub fn delivered_power(&self, launch: Power) -> Result<Power> {
        let loss_db = self.total_loss_db()?;
        Ok(launch
            .attenuated_by(db_to_linear(-loss_db))
            .attenuated_by(self.splitting_ratio_linear()))
    }

    /// Required launch power to deliver `target` at the end of the link.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration or
    /// the length is invalid.
    pub fn required_launch_power(&self, target: Power) -> Result<Power> {
        let loss_db = self.total_loss_db()?;
        Ok(target
            .attenuated_by(db_to_linear(loss_db))
            .attenuated_by(1.0 / self.splitting_ratio_linear()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_link_is_lossless() {
        let link = LinkBudget::new(WaveguideConfig::default());
        assert_eq!(link.total_loss_db().expect("valid"), 0.0);
        let delivered = link.delivered_power(Power::from_mw(1.0)).expect("valid");
        assert!((delivered.mw() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_components_add_up() {
        let cfg = WaveguideConfig::default();
        let link = LinkBudget::new(cfg)
            .with_length_mm(10.0)
            .with_couplers(2)
            .with_splitter_stages(1)
            .with_rings_passed(9);
        let expected = cfg.propagation_loss_db_per_cm * 1.0
            + 2.0 * cfg.coupler_loss_db
            + cfg.splitter_loss_db
            + 9.0 * cfg.per_ring_through_loss_db;
        assert!((link.total_loss_db().expect("valid") - expected).abs() < 1e-12);
    }

    #[test]
    fn splitting_ratio_halves_per_stage() {
        let link = LinkBudget::new(WaveguideConfig::default()).with_splitter_stages(3);
        assert!((link.splitting_ratio_linear() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn launch_and_delivered_power_are_inverses() {
        let link = LinkBudget::new(WaveguideConfig::default())
            .with_length_mm(7.0)
            .with_couplers(1)
            .with_splitter_stages(2)
            .with_rings_passed(5);
        let target = Power::from_mw(0.3);
        let launch = link.required_launch_power(target).expect("valid");
        let delivered = link.delivered_power(launch).expect("valid");
        assert!((delivered.mw() - target.mw()).abs() < 1e-9);
    }

    #[test]
    fn negative_losses_are_rejected() {
        let cfg = WaveguideConfig {
            coupler_loss_db: -1.0,
            ..WaveguideConfig::default()
        };
        assert!(cfg.validate().is_err());
        let link = LinkBudget::new(WaveguideConfig::default()).with_length_mm(-5.0);
        assert!(link.total_loss_db().is_err());
    }
}
