//! Pooling layers.
//!
//! Average pooling is first-class in Lightator: the compressive acquisitor
//! realises it optically as a weighted sum (paper Eq. 1), and the simulator's
//! CA banks take over pooling layers wholesale. Max pooling is provided for
//! the LeNet/VGG baselines trained in the electronic domain.

use crate::error::{NnError, Result};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

fn pooled_shape(input_shape: &[usize], window: usize) -> Result<Vec<usize>> {
    if input_shape.len() != 3 {
        return Err(NnError::ShapeMismatch {
            expected: "[C, H, W]".to_string(),
            actual: input_shape.to_vec(),
        });
    }
    if window == 0
        || !input_shape[1].is_multiple_of(window)
        || !input_shape[2].is_multiple_of(window)
    {
        return Err(NnError::InvalidParameter {
            name: "window",
            value: window as f64,
        });
    }
    Ok(vec![
        input_shape[0],
        input_shape[1] / window,
        input_shape[2] / window,
    ])
}

/// Non-overlapping 2-D max pooling (stride = window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxPool2d {
    window: usize,
    cached_input: Option<Tensor>,
    cached_argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with a square window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if `window` is zero.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NnError::InvalidParameter {
                name: "window",
                value: 0.0,
            });
        }
        Ok(Self {
            window,
            cached_input: None,
            cached_argmax: Vec::new(),
        })
    }

    /// The pooling window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Output shape for a `[C, H, W]` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] / [`NnError::InvalidParameter`] for
    /// incompatible shapes.
    pub fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        pooled_shape(input_shape, self.window)
    }

    /// Forward pass; records the argmax locations for `backward`.
    ///
    /// # Errors
    ///
    /// Returns a shape error for incompatible inputs.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let out_shape = self.output_shape(input.shape())?;
        let (c_n, oh_n, ow_n) = (out_shape[0], out_shape[1], out_shape[2]);
        let (in_h, in_w) = (input.shape()[1], input.shape()[2]);
        let mut out = Tensor::zeros(&out_shape);
        self.cached_argmax = vec![0; out.len()];
        for c in 0..c_n {
            for oh in 0..oh_n {
                for ow in 0..ow_n {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dr in 0..self.window {
                        for dc in 0..self.window {
                            let idx =
                                (c * in_h + oh * self.window + dr) * in_w + ow * self.window + dc;
                            let v = input.data()[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    let out_idx = (c * oh_n + oh) * ow_n + ow;
                    out.data_mut()[out_idx] = best;
                    self.cached_argmax[out_idx] = best_idx;
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    /// Backward pass: routes each gradient to the input element that won the
    /// max.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if `forward` has not run or
    /// a shape error for a wrong `grad_output`.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        let out_shape = self.output_shape(input.shape())?;
        if grad_output.shape() != out_shape.as_slice() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{out_shape:?}"),
                actual: grad_output.shape().to_vec(),
            });
        }
        let mut grad_input = Tensor::zeros(input.shape());
        for (out_idx, &g) in grad_output.data().iter().enumerate() {
            grad_input.data_mut()[self.cached_argmax[out_idx]] += g;
        }
        Ok(grad_input)
    }
}

/// Non-overlapping 2-D average pooling (stride = window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvgPool2d {
    window: usize,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with a square window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if `window` is zero.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NnError::InvalidParameter {
                name: "window",
                value: 0.0,
            });
        }
        Ok(Self {
            window,
            cached_shape: None,
        })
    }

    /// The pooling window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Output shape for a `[C, H, W]` input.
    ///
    /// # Errors
    ///
    /// Returns a shape error for incompatible inputs.
    pub fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        pooled_shape(input_shape, self.window)
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns a shape error for incompatible inputs.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let out_shape = self.output_shape(input.shape())?;
        let (c_n, oh_n, ow_n) = (out_shape[0], out_shape[1], out_shape[2]);
        let (in_h, in_w) = (input.shape()[1], input.shape()[2]);
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut out = Tensor::zeros(&out_shape);
        for c in 0..c_n {
            for oh in 0..oh_n {
                for ow in 0..ow_n {
                    let mut acc = 0.0;
                    for dr in 0..self.window {
                        for dc in 0..self.window {
                            acc += input.data()
                                [(c * in_h + oh * self.window + dr) * in_w + ow * self.window + dc];
                        }
                    }
                    out.data_mut()[(c * oh_n + oh) * ow_n + ow] = acc * norm;
                }
            }
        }
        self.cached_shape = Some(input.shape().to_vec());
        Ok(out)
    }

    /// Backward pass: spreads each gradient uniformly over its window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if `forward` has not run or
    /// a shape error for a wrong `grad_output`.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let in_shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?
            .clone();
        let out_shape = self.output_shape(&in_shape)?;
        if grad_output.shape() != out_shape.as_slice() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{out_shape:?}"),
                actual: grad_output.shape().to_vec(),
            });
        }
        let (c_n, oh_n, ow_n) = (out_shape[0], out_shape[1], out_shape[2]);
        let (in_h, in_w) = (in_shape[1], in_shape[2]);
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut grad_input = Tensor::zeros(&in_shape);
        for c in 0..c_n {
            for oh in 0..oh_n {
                for ow in 0..ow_n {
                    let g = grad_output.data()[(c * oh_n + oh) * ow_n + ow] * norm;
                    for dr in 0..self.window {
                        for dc in 0..self.window {
                            grad_input.data_mut()[(c * in_h + oh * self.window + dr) * in_w
                                + ow * self.window
                                + dc] += g;
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_window() {
        assert!(MaxPool2d::new(0).is_err());
        assert!(AvgPool2d::new(0).is_err());
    }

    #[test]
    fn shapes_require_divisible_extents() {
        let pool = MaxPool2d::new(2).expect("ok");
        assert_eq!(pool.output_shape(&[3, 4, 4]).expect("ok"), vec![3, 2, 2]);
        assert!(pool.output_shape(&[3, 5, 4]).is_err());
        assert!(pool.output_shape(&[4, 4]).is_err());
    }

    #[test]
    fn max_pool_picks_maxima() {
        let mut pool = MaxPool2d::new(2).expect("ok");
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).expect("ok");
        let out = pool.forward(&input).expect("ok");
        assert_eq!(out.data(), &[4.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let mut pool = AvgPool2d::new(2).expect("ok");
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).expect("ok");
        let out = pool.forward(&input).expect("ok");
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2).expect("ok");
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).expect("ok");
        pool.forward(&input).expect("ok");
        let grad = pool
            .backward(&Tensor::from_vec(vec![1.0], &[1, 1, 1]).expect("ok"))
            .expect("ok");
        assert_eq!(grad.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let mut pool = AvgPool2d::new(2).expect("ok");
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).expect("ok");
        pool.forward(&input).expect("ok");
        let grad = pool
            .backward(&Tensor::from_vec(vec![1.0], &[1, 1, 1]).expect("ok"))
            .expect("ok");
        assert!(grad.data().iter().all(|&g| (g - 0.25).abs() < 1e-6));
    }

    #[test]
    fn backward_requires_forward() {
        let mut max = MaxPool2d::new(2).expect("ok");
        assert!(max.backward(&Tensor::zeros(&[1, 1, 1])).is_err());
        let mut avg = AvgPool2d::new(2).expect("ok");
        assert!(avg.backward(&Tensor::zeros(&[1, 1, 1])).is_err());
    }

    #[test]
    fn multi_channel_pooling_is_independent_per_channel() {
        let mut pool = MaxPool2d::new(2).expect("ok");
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0], &[2, 2, 2])
            .expect("ok");
        let out = pool.forward(&input).expect("ok");
        assert_eq!(out.data(), &[4.0, -1.0]);
    }
}
