//! Optical multiply-and-accumulate arm.
//!
//! An arm is the fundamental compute primitive of the Lightator optical core
//! (paper Fig. 5): a bus waveguide carrying one WDM channel per activation,
//! a micro-ring per channel holding a weight, and a balanced photodetector
//! that sums the weighted channels. One arm therefore evaluates one dot
//! product of up to `channels` elements per optical cycle.
//!
//! Signed weights are realised the standard way for incoherent photonics: the
//! magnitude is programmed into the MR and the drop port of negatively
//! weighted channels is routed to the negative diode of the balanced
//! detector, so the electrical output is `Σ aᵢ·wᵢ` with `wᵢ ∈ [−1, 1]`.
//!
//! Noise draws are keyed, not streamed: the arm keeps a **MAC cursor** that
//! counts [`OpticalArm::mac`] calls since [`OpticalArm::begin_frame`], and
//! every perturbation is a pure function of
//! `(seed, frame, channel, cursor-derived element)`. Repositioning the
//! cursor with [`OpticalArm::set_mac_cursor`] therefore reproduces — or
//! skips ahead in — the noise sequence exactly, which is what lets callers
//! tile MAC loops across threads bit-exactly.

use crate::error::{PhotonicsError, Result};
use crate::microring::{MicroringConfig, MicroringResonator};
use crate::noise::{NoiseConfig, NoiseInjector};
use crate::units::Power;
use crate::wdm::{CrosstalkModel, WdmGrid};
use serde::{Deserialize, Serialize};

/// Configuration of an optical MAC arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmConfig {
    /// Number of MRs (and hence WDM channels / MAC elements) in the arm.
    /// Lightator uses 9 to natively fit a 3×3 kernel stride.
    pub channels: usize,
    /// Ring design shared by all MRs of the arm.
    pub ring: MicroringConfig,
    /// Noise / non-ideality configuration.
    pub noise: NoiseConfig,
}

impl Default for ArmConfig {
    fn default() -> Self {
        Self {
            channels: 9,
            ring: MicroringConfig::default(),
            noise: NoiseConfig::default(),
        }
    }
}

/// The result of evaluating one dot product on an arm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmOutput {
    /// The analog MAC value, `Σ aᵢ·wᵢ`, after non-idealities.
    pub value: f64,
    /// The ideal (noise-free, crosstalk-free) MAC value for the same inputs.
    pub ideal: f64,
}

impl ArmOutput {
    /// Absolute analog error introduced by the photonic datapath.
    #[must_use]
    pub fn error(&self) -> f64 {
        (self.value - self.ideal).abs()
    }
}

/// An optical MAC arm: per-channel MRs plus a balanced photodetector.
///
/// ```
/// use lightator_photonics::arm::{ArmConfig, OpticalArm};
///
/// # fn main() -> Result<(), lightator_photonics::PhotonicsError> {
/// let mut arm = OpticalArm::new(ArmConfig::default())?;
/// arm.load_weights(&[0.5, -0.25, 0.0, 1.0, -1.0, 0.125, 0.75, -0.5, 0.25])?;
/// arm.begin_frame(1, 0);
/// let out = arm.mac(&[1.0, 0.5, 0.25, 0.0, 1.0, 0.5, 0.25, 0.0, 1.0])?;
/// assert!(out.error() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OpticalArm {
    config: ArmConfig,
    grid: WdmGrid,
    rings: Vec<MicroringResonator>,
    weights: Vec<f64>,
    crosstalk: CrosstalkModel,
    injector: NoiseInjector,
    mac_cursor: u64,
}

impl OpticalArm {
    /// Creates an arm with all weights initialised to zero, positioned on
    /// the `(seed 0, frame 0)` noise stream.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the configuration is
    /// invalid (zero channels or a bad ring design).
    pub fn new(config: ArmConfig) -> Result<Self> {
        if config.channels == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "channels",
                value: 0.0,
            });
        }
        config.ring.validate()?;
        let grid = WdmGrid::lightator_arm(config.channels)?;
        let mut rings = Vec::with_capacity(config.channels);
        for i in 0..config.channels {
            rings.push(MicroringResonator::new(config.ring, grid.wavelength(i)?)?);
        }
        let crosstalk = if config.noise.apply_crosstalk {
            CrosstalkModel::new(grid.clone(), config.ring)
        } else {
            CrosstalkModel::ideal(grid.clone(), config.ring)
        };
        let injector = NoiseInjector::new(config.noise);
        let channels = config.channels;
        Ok(Self {
            config,
            grid,
            rings,
            weights: vec![0.0; channels],
            crosstalk,
            injector,
            mac_cursor: 0,
        })
    }

    /// The arm configuration.
    #[must_use]
    pub fn config(&self) -> &ArmConfig {
        &self.config
    }

    /// Repositions the arm's noise stream on `(seed, frame)` and rewinds the
    /// MAC cursor to zero. MR weights stay loaded. Every subsequent draw is
    /// a pure function of `(seed, frame, channel, element)` where the
    /// element index derives from the MAC cursor.
    pub fn begin_frame(&mut self, seed: u64, frame: u64) {
        self.injector.begin_frame(seed, frame);
        self.mac_cursor = 0;
    }

    /// The number of [`OpticalArm::mac`] calls evaluated since the last
    /// [`OpticalArm::begin_frame`] (or [`OpticalArm::set_mac_cursor`]).
    #[must_use]
    pub fn mac_cursor(&self) -> u64 {
        self.mac_cursor
    }

    /// Repositions the MAC cursor within the current frame's noise stream.
    ///
    /// Because draws are keyed rather than streamed, setting the cursor to
    /// `n` makes the next [`OpticalArm::mac`] call reproduce exactly the
    /// draws of the `n`-th call after [`OpticalArm::begin_frame`] — the
    /// hook parallel tilings use to evaluate disjoint cursor ranges on
    /// cloned arms while matching the sequential bits.
    pub fn set_mac_cursor(&mut self, cursor: u64) {
        self.mac_cursor = cursor;
    }

    /// Number of MAC elements the arm evaluates per cycle.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.config.channels
    }

    /// The WDM grid assigned to this arm.
    #[must_use]
    pub fn grid(&self) -> &WdmGrid {
        &self.grid
    }

    /// The currently loaded signed weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Loads a vector of signed weights in `[-1, 1]` onto the arm's MRs.
    ///
    /// Shorter vectors leave the remaining rings parked (weight 0, no tuning
    /// power), matching how partially filled arms behave for 5×5 / 7×7
    /// kernels (paper Fig. 6).
    ///
    /// # Errors
    ///
    /// * [`PhotonicsError::LengthMismatch`] if more weights than channels are
    ///   supplied.
    /// * [`PhotonicsError::WeightOutOfRange`] if a weight is outside
    ///   `[-1, 1]` or not finite.
    pub fn load_weights(&mut self, weights: &[f64]) -> Result<()> {
        if weights.len() > self.config.channels {
            return Err(PhotonicsError::LengthMismatch {
                expected: self.config.channels,
                actual: weights.len(),
            });
        }
        for &w in weights {
            if !w.is_finite() || !(-1.0..=1.0).contains(&w) {
                return Err(PhotonicsError::WeightOutOfRange { weight: w });
            }
        }
        for (i, ring) in self.rings.iter_mut().enumerate() {
            let w = weights.get(i).copied().unwrap_or(0.0);
            self.weights[i] = w;
            if w == 0.0 {
                ring.park();
            } else {
                // The MR holds the magnitude; the sign selects the BPD rail.
                // Weight 1.0 maps to the maximum representable transmission.
                let magnitude = w.abs().min(ring.config().maximum_transmission());
                ring.set_weight(magnitude)?;
            }
        }
        for w in self.weights.iter_mut().skip(weights.len()) {
            *w = 0.0;
        }
        Ok(())
    }

    /// Evaluates one MAC: `Σ aᵢ·wᵢ` for activations `a ∈ [0, 1]`.
    ///
    /// The activation vector may be shorter than the arm; missing channels
    /// contribute nothing. Non-idealities (VCSEL noise, crosstalk, weight
    /// error, detection noise) are applied according to the arm's
    /// [`NoiseConfig`], keyed by the MAC cursor: lane `i` of cursor `c`
    /// draws intensity/weight noise at element `c·channels + i` and the
    /// balanced detector draws at element `c`. The cursor advances by one
    /// per call.
    ///
    /// # Errors
    ///
    /// * [`PhotonicsError::LengthMismatch`] if more activations than channels
    ///   are supplied.
    /// * [`PhotonicsError::WeightOutOfRange`] if an activation is outside
    ///   `[0, 1]` or not finite (activations are unsigned light intensities).
    pub fn mac(&mut self, activations: &[f64]) -> Result<ArmOutput> {
        if activations.len() > self.config.channels {
            return Err(PhotonicsError::LengthMismatch {
                expected: self.config.channels,
                actual: activations.len(),
            });
        }
        for &a in activations {
            if !a.is_finite() || !(0.0..=1.0).contains(&a) {
                return Err(PhotonicsError::WeightOutOfRange { weight: a });
            }
        }

        let mut intensities: Vec<f64> = (0..self.config.channels)
            .map(|i| activations.get(i).copied().unwrap_or(0.0))
            .collect();
        let ideal: f64 = intensities
            .iter()
            .zip(&self.weights)
            .map(|(a, w)| a * w)
            .sum();

        let lane_base = self.mac_cursor.wrapping_mul(self.config.channels as u64);
        // 1. VCSEL amplitude noise, keyed per lane.
        for (i, value) in intensities.iter_mut().enumerate() {
            *value = self
                .injector
                .perturb_intensity(lane_base.wrapping_add(i as u64), *value);
        }
        // 2. Inter-channel crosstalk along the shared bus.
        self.crosstalk.apply(&mut intensities)?;
        // 3. Weighting by the realised (noisy) MR transmissions, routed to the
        //    positive or negative BPD rail according to the weight sign. Weight
        //    noise is keyed by lane, so parked rings skip their draws without
        //    shifting any other lane's sequence.
        let mut positive = 0.0;
        let mut negative = 0.0;
        for (i, &a) in intensities.iter().enumerate() {
            let w = self.weights[i];
            if w == 0.0 {
                continue;
            }
            let realised = self.rings[i].channel_transmission();
            let realised = self
                .injector
                .perturb_weight(lane_base.wrapping_add(i as u64), realised);
            let product = a * realised;
            if w >= 0.0 {
                positive += product;
            } else {
                negative += product;
            }
        }
        // 4. Balanced detection plus detector-referred noise, keyed by the
        //    MAC cursor (one detection event per call).
        let detected = self
            .injector
            .perturb_detection(self.mac_cursor, positive - negative);
        self.mac_cursor = self.mac_cursor.wrapping_add(1);
        Ok(ArmOutput {
            value: detected,
            ideal,
        })
    }

    /// Total MR tuning power currently drawn by the arm.
    #[must_use]
    pub fn tuning_power(&self) -> Power {
        self.rings
            .iter()
            .map(MicroringResonator::tuning_power)
            .sum()
    }

    /// Number of rings currently holding a non-zero weight.
    #[must_use]
    pub fn active_rings(&self) -> usize {
        self.weights.iter().filter(|w| **w != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_arm() -> OpticalArm {
        OpticalArm::new(ArmConfig {
            noise: NoiseConfig::ideal(),
            ..ArmConfig::default()
        })
        .expect("valid")
    }

    #[test]
    fn rejects_zero_channels() {
        let cfg = ArmConfig {
            channels: 0,
            ..ArmConfig::default()
        };
        assert!(OpticalArm::new(cfg).is_err());
    }

    #[test]
    fn ideal_mac_matches_dot_product() {
        let mut arm = ideal_arm();
        let weights = [0.5, -0.25, 0.0, 0.9, -0.9, 0.125, 0.75, -0.5, 0.25];
        let activations = [1.0, 0.5, 0.25, 0.0, 1.0, 0.5, 0.25, 0.0, 1.0];
        arm.load_weights(&weights).expect("ok");
        arm.begin_frame(0, 0);
        let out = arm.mac(&activations).expect("ok");
        let exact: f64 = weights.iter().zip(activations).map(|(w, a)| w * a).sum();
        assert!((out.ideal - exact).abs() < 1e-12);
        // The only residual error in the ideal configuration comes from the
        // finite MR extinction ratio (weights cannot be realised exactly).
        assert!(
            (out.value - exact).abs() < 0.05,
            "value {} vs exact {exact}",
            out.value
        );
    }

    #[test]
    fn noisy_mac_stays_close_to_ideal() {
        let mut arm = OpticalArm::new(ArmConfig::default()).expect("valid");
        let weights = [0.3, -0.7, 0.2, 0.0, 0.5, -0.1, 0.9, -0.4, 0.6];
        arm.load_weights(&weights).expect("ok");
        arm.begin_frame(9, 0);
        let activations = [0.2, 0.4, 0.6, 0.8, 1.0, 0.1, 0.3, 0.5, 0.7];
        let out = arm.mac(&activations).expect("ok");
        assert!(out.error() < 0.15, "error {}", out.error());
    }

    #[test]
    fn short_vectors_pad_with_zero() {
        let mut arm = ideal_arm();
        arm.load_weights(&[1.0, 1.0]).expect("ok");
        arm.begin_frame(2, 0);
        let out = arm.mac(&[0.5]).expect("ok");
        assert!((out.ideal - 0.5).abs() < 1e-12);
        assert_eq!(arm.active_rings(), 2);
    }

    #[test]
    fn rejects_oversized_inputs() {
        let mut arm = ideal_arm();
        assert!(arm.load_weights(&[0.0; 10]).is_err());
        let too_many = [0.1; 10];
        assert!(arm.mac(&too_many).is_err());
    }

    #[test]
    fn rejects_out_of_range_values() {
        let mut arm = ideal_arm();
        assert!(arm.load_weights(&[1.5]).is_err());
        assert!(arm.load_weights(&[f64::NAN]).is_err());
        arm.load_weights(&[0.5]).expect("ok");
        assert!(arm.mac(&[-0.1]).is_err());
        assert!(arm.mac(&[1.1]).is_err());
    }

    #[test]
    fn zero_weights_draw_no_tuning_power() {
        let mut arm = ideal_arm();
        arm.load_weights(&[0.0; 9]).expect("ok");
        assert_eq!(arm.tuning_power(), Power::zero());
        assert_eq!(arm.active_rings(), 0);
    }

    #[test]
    fn tuning_power_increases_with_active_rings() {
        let mut arm = ideal_arm();
        arm.load_weights(&[0.5, 0.5]).expect("ok");
        let two = arm.tuning_power();
        arm.load_weights(&[0.5; 9]).expect("ok");
        let nine = arm.tuning_power();
        assert!(nine.mw() > two.mw());
    }

    #[test]
    fn negative_weights_produce_negative_outputs() {
        let mut arm = ideal_arm();
        arm.load_weights(&[-0.8]).expect("ok");
        arm.begin_frame(5, 0);
        let out = arm.mac(&[1.0]).expect("ok");
        assert!(out.value < -0.6);
    }

    #[test]
    fn reloading_weights_overwrites_previous_state() {
        let mut arm = ideal_arm();
        arm.load_weights(&[0.5; 9]).expect("ok");
        arm.load_weights(&[0.25]).expect("ok");
        assert_eq!(arm.active_rings(), 1);
        assert_eq!(arm.weights()[1], 0.0);
    }

    #[test]
    fn mac_cursor_repositions_the_noise_stream() {
        let weights = [0.3, -0.7, 0.2, 0.1, 0.5, -0.1, 0.9, -0.4, 0.6];
        let activations = [0.2, 0.4, 0.6, 0.8, 1.0, 0.1, 0.3, 0.5, 0.7];
        let mut arm = OpticalArm::new(ArmConfig::default()).expect("valid");
        arm.load_weights(&weights).expect("ok");
        arm.begin_frame(7, 4);
        let sequential: Vec<f64> = (0..5)
            .map(|_| arm.mac(&activations).expect("ok").value)
            .collect();
        // Replaying any cursor position on a fresh clone reproduces the bits.
        for (cursor, expected) in sequential.iter().enumerate() {
            let mut replay = OpticalArm::new(ArmConfig::default()).expect("valid");
            replay.load_weights(&weights).expect("ok");
            replay.begin_frame(7, 4);
            replay.set_mac_cursor(cursor as u64);
            let out = replay.mac(&activations).expect("ok");
            assert_eq!(out.value.to_bits(), expected.to_bits());
            assert_eq!(replay.mac_cursor(), cursor as u64 + 1);
        }
    }

    /// Regression test for the cross-channel spare-coupling bug at the arm
    /// level: the perturbation each channel contributes must be unaffected
    /// by ablating another channel. The old sequential sampler failed this
    /// from the second MAC call onward.
    #[test]
    fn channel_ablation_does_not_shift_other_channels() {
        let weights = [0.3, -0.7, 0.2, 0.1, 0.5, -0.1, 0.9, -0.4, 0.6];
        let activations = [0.2, 0.4, 0.6, 0.8, 1.0, 0.1, 0.3, 0.5, 0.7];
        let run = |noise: NoiseConfig| -> Vec<f64> {
            let mut arm = OpticalArm::new(ArmConfig {
                noise,
                ..ArmConfig::default()
            })
            .expect("valid");
            arm.load_weights(&weights).expect("ok");
            arm.begin_frame(3, 1);
            (0..8)
                .map(|_| arm.mac(&activations).expect("ok").value)
                .collect()
        };
        let base = NoiseConfig::default();
        let full = run(base);
        let no_weight = run(NoiseConfig {
            weight_sigma: 0.0,
            ..base
        });
        let no_vcsel = run(NoiseConfig {
            vcsel_relative_sigma: 0.0,
            ..base
        });
        let no_detector = run(NoiseConfig {
            detector_relative_sigma: 0.0,
            ..base
        });
        for call in 0..full.len() {
            // The weight-noise contribution (full − no_weight) must be the
            // same whether or not detector noise is enabled: detection noise
            // is additive and keyed independently, so it cancels exactly.
            let weight_delta_with_detector = full[call] - no_weight[call];
            let weight_delta_without = {
                let no_det_no_weight = {
                    let cfg = NoiseConfig {
                        detector_relative_sigma: 0.0,
                        weight_sigma: 0.0,
                        ..base
                    };
                    run(cfg)
                };
                no_detector[call] - no_det_no_weight[call]
            };
            assert!(
                (weight_delta_with_detector - weight_delta_without).abs() < 1e-12,
                "call {call}: weight-noise delta changed when detector noise was ablated \
                 ({weight_delta_with_detector} vs {weight_delta_without})"
            );
            // Same independence for the VCSEL channel.
            let vcsel_delta = full[call] - no_vcsel[call];
            assert!(vcsel_delta.is_finite());
        }
    }
}
