//! Open-loop serving soak: fixed micro-batching vs the adaptive
//! SLO-driven controller, plus a sustained mixed-traffic soak.
//!
//! Closed-loop serving benchmarks self-throttle — clients wait for
//! responses, so a slow server sees less load and queueing collapse
//! stays invisible. This harness offers traffic *open-loop* through
//! [`lightator_serve::load`]: seeded Poisson arrivals on the simulated
//! clock at a rate chosen above the fixed configuration's capacity, so
//! both configurations face the exact same overload.
//!
//! **Headline (asserted outside smoke mode):** on an encode-heavy
//! classifier (weight programming dominates the per-frame latency,
//! which is exactly where batch amortization pays), the adaptive
//! controller must either sustain **≥ 1.3×** the fixed configuration's
//! admitted throughput, or — if the fixed arm keeps up — cut the p99
//! queue wait by **≥ 2×** at the same offered load.
//!
//! A second scenario soaks the full request mix (acquire-dominated,
//! with image kernels, classifies and video streams on both priority
//! lanes) under bursty arrivals and reports sustained sim-QPS,
//! p50/p99/p99.9 queue wait and drop rate as `BENCH_serve_soak.json`.
//!
//! Smoke mode (`LIGHTATOR_BENCH_SMOKE=1`, the CI bench-smoke step) runs
//! thousands of requests instead of millions and skips the headline
//! assertion — shared runners measure nothing reliably; the full run is
//! the artifact that carries the claim.

use lightator_bench::emit::{self, BenchMetric};
use lightator_core::ca::CaConfig;
use lightator_core::config::OcGeometry;
use lightator_core::platform::{ImageKernel, Platform, Workload};
use lightator_core::stream::StreamConfig;
use lightator_nn::layers::{Activation, Flatten, Linear};
use lightator_nn::model::Sequential;
use lightator_photonics::units::Time;
use lightator_serve::{
    run_soak, ArrivalProcess, MetricsSnapshot, ServeError, Server, SloConfig, SoakConfig,
    SoakOutcome, TrafficMix,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SENSOR: usize = 8;
const SHARDS: usize = 4;
/// Deep enough to absorb the arrivals that land while every shard is
/// mid-way through a maximum-size (64-frame) adaptive batch — large
/// batches make service bursty in simulated time, and a shallower queue
/// would charge that burstiness as drops rather than queue wait.
const QUEUE_DEPTH: usize = SHARDS * 128;
const FIXED_BATCH: usize = 4;
/// Offered load relative to the measured fixed-arm capacity: well past
/// saturation, where adaptive batching has headroom to harvest and the
/// fixed arm must shed load.
const OVERLOAD_FACTOR: f64 = 1.5;

/// The edge-sized classifier served by the comparison arms.
fn classifier() -> Sequential {
    let mut rng = SmallRng::seed_from_u64(21);
    // CA halves the 8x8 sensor to [1, 4, 4] = 16 inputs.
    let mut model = Sequential::new(&[1, 4, 4]);
    model.push(Flatten::new());
    model.push(Linear::new(16, 64, &mut rng).expect("linear")); // lightator: allow(no-unwrap) - static shapes
    model.push(Activation::relu());
    model.push(Linear::new(64, 64, &mut rng).expect("linear")); // lightator: allow(no-unwrap) - static shapes
    model.push(Activation::relu());
    model.push(Linear::new(64, 4, &mut rng).expect("linear")); // lightator: allow(no-unwrap) - static shapes
    model
}

/// The comparison arms run an *edge-sized* optical core: 12 banks, 8 of
/// them reserved for compressive acquisition, leaving ~216 compute MRs.
/// The 64x64 hidden layer (4096 weights) then needs 19 DAC reload passes
/// per frame, so weight encoding dominates the frame latency — exactly
/// the regime where batch amortization pays, since batched frames after
/// the first reuse the programmed weights and skip the encode stages.
fn edge_platform() -> Result<Platform, ServeError> {
    Ok(Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .compressive_acquisition(CaConfig::default())
        .geometry(OcGeometry {
            bank_columns: 4,
            bank_rows: 3,
            ..OcGeometry::default()
        })
        .build()?)
}

/// The paper-default platform (analog noise on) for the mixed soak.
fn platform() -> Result<Platform, ServeError> {
    Ok(Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .compressive_acquisition(CaConfig::default())
        .build()?)
}

/// The serving arms of the comparison.
#[derive(Clone, Copy)]
enum Arm {
    /// `max_batch = FIXED_BATCH`, constant flush deadline.
    Fixed,
    /// AIMD controller between 1 and 64 frames per batch.
    Adaptive,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Fixed => "fixed",
            Arm::Adaptive => "adaptive",
        }
    }
}

/// Builds one classify server for the requested arm. Both arms share
/// shard count, queue depth, stealing and lane weighting — the only
/// difference is the batching policy under test.
fn classify_server(arm: Arm) -> Result<Server, ServeError> {
    let builder = Server::builder(edge_platform()?)
        .shards(SHARDS)
        .queue_depth(QUEUE_DEPTH)
        .workload(Workload::Classify {
            model: classifier(),
        });
    match arm {
        Arm::Fixed => builder
            .max_batch(FIXED_BATCH)
            .flush_deadline(Time::from_us(2.0)),
        Arm::Adaptive => builder.slo(SloConfig {
            target_queue_wait: Time::from_us(40.0),
            min_batch: 1,
            max_batch: 64,
        }),
    }
    .build()
}

/// One arm's soak result: harness tallies plus the server-side metrics.
struct ArmReport {
    outcome: SoakOutcome,
    snapshot: MetricsSnapshot,
}

/// Offers `requests` classify arrivals at `mean_qps` to a fresh server
/// for the arm.
fn soak_classify(arm: Arm, mean_qps: f64, requests: u64) -> Result<ArmReport, ServeError> {
    let server = classify_server(arm)?;
    let config = SoakConfig {
        seed: 11,
        requests,
        width: SENSOR,
        height: SENSOR,
        frame_pool: 32,
        arrivals: ArrivalProcess::Poisson { mean_qps },
        mix: TrafficMix::default(),
    };
    let outcome = run_soak(&server, &config)?;
    let snapshot = server.shutdown();
    assert_eq!(
        outcome.offered(),
        outcome.admitted() + outcome.dropped(),
        "open-loop accounting must be exact"
    );
    Ok(ArmReport { outcome, snapshot })
}

/// Measures the fixed arm's saturated service rate: offer far more than
/// it can serve and read back completed frames per simulated second.
fn fixed_capacity_qps(requests: u64) -> Result<f64, ServeError> {
    let report = soak_classify(Arm::Fixed, 1e9, requests)?;
    Ok(report.snapshot.sustained_qps())
}

/// The sustained mixed-traffic soak on the adaptive configuration:
/// all four request kinds, both lanes, bursty arrivals.
fn soak_mixed(requests: u64) -> Result<ArmReport, ServeError> {
    let server = Server::builder(platform()?)
        .shards(SHARDS)
        .queue_depth(QUEUE_DEPTH)
        .slo(SloConfig {
            target_queue_wait: Time::from_us(40.0),
            min_batch: 1,
            max_batch: 64,
        })
        .workload(Workload::Classify {
            model: classifier(),
        })
        .workload(Workload::Acquire)
        .workload(Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        })
        .workload(Workload::VideoStream {
            kernel: ImageKernel::SobelX,
            stream: StreamConfig {
                block_size: 2,
                delta_threshold: 0.05,
            },
        })
        .build()?;
    let config = SoakConfig {
        seed: 29,
        requests,
        width: SENSOR,
        height: SENSOR,
        frame_pool: 32,
        arrivals: ArrivalProcess::Bursty {
            calm_qps: 2e5,
            burst_qps: 2e6,
            cycle: 1000,
            burst_len: 200,
        },
        mix: TrafficMix {
            classify: 0.15,
            acquire: 0.6,
            kernel: 0.15,
            stream: 0.1,
            kernel_filter: ImageKernel::SobelX,
            stream_frames: 4,
            interactive_fraction: 0.7,
        },
    };
    let outcome = run_soak(&server, &config)?;
    let snapshot = server.shutdown();
    Ok(ArmReport { outcome, snapshot })
}

fn print_arm(label: &str, report: &ArmReport) {
    let snap = &report.snapshot;
    println!(
        "  {label:<9} offered {:>9} ({:.0} qps) | sustained {:>9.0} qps | \
         drop {:>6.2}% | queue wait p50 {:.2} us, p99 {:.2} us, p99.9 {:.2} us",
        report.outcome.offered(),
        report.outcome.offered_qps(),
        snap.sustained_qps(),
        100.0 * snap.drop_rate(),
        snap.p50_queue_wait.us(),
        snap.p99_queue_wait.us(),
        snap.p99_9_queue_wait.us(),
    );
}

fn main() -> Result<(), ServeError> {
    let smoke = std::env::var("LIGHTATOR_BENCH_SMOKE").is_ok();
    let (probe_requests, arm_requests, mixed_requests) = if smoke {
        (500, 2_000, 2_000)
    } else {
        (10_000, 100_000, 2_000_000)
    };

    println!(
        "== open-loop serve soak ({}) ==",
        if smoke { "smoke" } else { "full" }
    );

    let capacity = fixed_capacity_qps(probe_requests)?;
    let offered = OVERLOAD_FACTOR * capacity;
    println!(
        "fixed-arm capacity {capacity:.0} qps (sim); offering {offered:.0} qps \
         ({OVERLOAD_FACTOR}x) to both arms"
    );

    let fixed = soak_classify(Arm::Fixed, offered, arm_requests)?;
    let adaptive = soak_classify(Arm::Adaptive, offered, arm_requests)?;
    print_arm(Arm::Fixed.name(), &fixed);
    print_arm(Arm::Adaptive.name(), &adaptive);

    let tput_ratio = adaptive.snapshot.sustained_qps() / fixed.snapshot.sustained_qps();
    let p99_ratio = fixed.snapshot.p99_queue_wait.ns() / adaptive.snapshot.p99_queue_wait.ns();
    println!(
        "adaptive vs fixed at equal offered load: {tput_ratio:.2}x sustained \
         throughput, {p99_ratio:.2}x lower p99 queue wait \
         (claim: >= 1.3x throughput or >= 2x lower p99)"
    );

    println!("mixed-traffic soak (adaptive, bursty arrivals):");
    let mixed = soak_mixed(mixed_requests)?;
    print_arm("mixed", &mixed);
    println!(
        "  lanes: interactive p99 {:.2} us over {} admitted, batch p99 {:.2} us over {} admitted",
        mixed.snapshot.p99_interactive_wait.us(),
        mixed.snapshot.admitted_interactive,
        mixed.snapshot.p99_batch_wait.us(),
        mixed.snapshot.admitted_batch,
    );

    let metrics = [
        BenchMetric::new("fixed_capacity_qps", capacity, "req/s"),
        BenchMetric::new("offered_qps", offered, "req/s"),
        BenchMetric::new(
            "fixed_sustained_qps",
            fixed.snapshot.sustained_qps(),
            "req/s",
        ),
        BenchMetric::new(
            "adaptive_sustained_qps",
            adaptive.snapshot.sustained_qps(),
            "req/s",
        ),
        BenchMetric::new(
            "fixed_p50_queue_wait_us",
            fixed.snapshot.p50_queue_wait.us(),
            "us",
        ),
        BenchMetric::new(
            "fixed_p99_queue_wait_us",
            fixed.snapshot.p99_queue_wait.us(),
            "us",
        ),
        BenchMetric::new(
            "fixed_p99_9_queue_wait_us",
            fixed.snapshot.p99_9_queue_wait.us(),
            "us",
        ),
        BenchMetric::new(
            "adaptive_p50_queue_wait_us",
            adaptive.snapshot.p50_queue_wait.us(),
            "us",
        ),
        BenchMetric::new(
            "adaptive_p99_queue_wait_us",
            adaptive.snapshot.p99_queue_wait.us(),
            "us",
        ),
        BenchMetric::new(
            "adaptive_p99_9_queue_wait_us",
            adaptive.snapshot.p99_9_queue_wait.us(),
            "us",
        ),
        BenchMetric::new("fixed_drop_rate", fixed.snapshot.drop_rate(), "fraction"),
        BenchMetric::new(
            "adaptive_drop_rate",
            adaptive.snapshot.drop_rate(),
            "fraction",
        ),
        BenchMetric::new("throughput_ratio", tput_ratio, "x"),
        BenchMetric::new("p99_ratio", p99_ratio, "x"),
        BenchMetric::new("mixed_offered", mixed.outcome.offered() as f64, "req"),
        BenchMetric::new(
            "mixed_sustained_qps",
            mixed.snapshot.sustained_qps(),
            "req/s",
        ),
        BenchMetric::new(
            "mixed_p50_queue_wait_us",
            mixed.snapshot.p50_queue_wait.us(),
            "us",
        ),
        BenchMetric::new(
            "mixed_p99_queue_wait_us",
            mixed.snapshot.p99_queue_wait.us(),
            "us",
        ),
        BenchMetric::new(
            "mixed_p99_9_queue_wait_us",
            mixed.snapshot.p99_9_queue_wait.us(),
            "us",
        ),
        BenchMetric::new("mixed_drop_rate", mixed.snapshot.drop_rate(), "fraction"),
    ];
    match emit::emit("serve_soak", &metrics) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("failed to emit BENCH_serve_soak.json: {err}");
            std::process::exit(1);
        }
    }

    // Headline claim — full runs only; smoke exercises the harness.
    assert!(
        smoke || tput_ratio >= 1.3 || p99_ratio >= 2.0,
        "adaptive batching must beat fixed: got {tput_ratio:.2}x throughput, \
         {p99_ratio:.2}x p99 (need >= 1.3x or >= 2x)"
    );
    Ok(())
}
