//! Error type for the serving layer.

use lightator_core::CoreError;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the Lightator serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request queue was full; the request was rejected instead of
    /// blocking the caller (admission control).
    Overloaded {
        /// Configured queue depth the request bounced off.
        queue_depth: usize,
    },
    /// The request targets a workload no shard group serves.
    UnknownWorkload {
        /// Label of the requested workload (`classify`, `kernel:sobel-x`,
        /// ...).
        label: String,
    },
    /// The request itself is malformed (an empty video stream, or one
    /// longer than the configured `max_stream_frames`).
    InvalidRequest {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The response was taken through the wrong accessor: frame requests
    /// resolve through [`crate::Pending::wait`], video-stream requests
    /// through [`crate::Pending::wait_stream`].
    ResponseKind {
        /// What the used accessor expected.
        expected: &'static str,
        /// What the request actually produced.
        got: &'static str,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The server configuration is invalid.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The operating system refused to spawn a shard worker thread.
    WorkerSpawn {
        /// The underlying I/O error, rendered.
        reason: String,
    },
    /// The shard worker panicked while serving the batch holding this
    /// request; the request was abandoned rather than left hanging.
    WorkerPanicked,
    /// An error bubbled up from the platform while serving the request.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { queue_depth } => write!(
                f,
                "request rejected: the queue already holds {queue_depth} requests \
                 (retry later or raise queue_depth)"
            ),
            Self::UnknownWorkload { label } => write!(
                f,
                "no shard group serves workload `{label}` \
                 (register it on the builder before `build()`)"
            ),
            Self::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            Self::ResponseKind { expected, got } => write!(
                f,
                "the request produced a {got} response, not a {expected} one \
                 (frame requests resolve through `wait`, video streams through \
                 `wait_stream`)"
            ),
            Self::ShuttingDown => write!(f, "the server is shutting down"),
            Self::InvalidConfig { reason } => {
                write!(f, "invalid server configuration: {reason}")
            }
            Self::WorkerSpawn { reason } => {
                write!(f, "could not spawn a shard worker thread: {reason}")
            }
            Self::WorkerPanicked => {
                write!(f, "the shard worker panicked while serving this request")
            }
            Self::Core(err) => write!(f, "platform error: {err}"),
        }
    }
}

impl StdError for ServeError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Self::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(err: CoreError) -> Self {
        Self::Core(err)
    }
}

/// Convenience result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let err = ServeError::Overloaded { queue_depth: 8 };
        assert!(err.to_string().contains("8"));
        assert!(err.source().is_none());

        let err = ServeError::UnknownWorkload {
            label: "kernel:sobel-x".into(),
        };
        assert!(err.to_string().contains("kernel:sobel-x"));

        let err: ServeError = CoreError::ModelMismatch {
            reason: "bad shape".into(),
        }
        .into();
        assert!(err.to_string().contains("bad shape"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
