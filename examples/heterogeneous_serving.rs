//! Heterogeneous serving: one server routing workload groups to different
//! execution backends — classify on the photonic core, the Sobel kernel on
//! the Eyeriss electronic reference — with per-backend telemetry.
//!
//! ```text
//! cargo run --release --example heterogeneous_serving
//! ```
//!
//! Both groups lower the *same* `CompiledPlan`; only the execution target
//! (and therefore the latency/energy meters) differs. The metrics table at
//! the end breaks throughput, energy and plan reuse down per backend.

use std::sync::Arc;

use lightator_suite::baselines::electronic::ElectronicBaseline;
use lightator_suite::baselines::reference::ElectronicReference;
use lightator_suite::core::ca::CaConfig;
use lightator_suite::nn::layers::{Activation, Flatten, Linear};
use lightator_suite::nn::model::Sequential;
use lightator_suite::sensor::frame::RgbFrame;
use lightator_suite::serve::{Request, ServeError, Server};
use lightator_suite::{BackendId, ImageKernel, Platform, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SENSOR: usize = 8;
const FRAMES: usize = 24;
const SHARDS: usize = 2;

fn classifier() -> Sequential {
    let mut rng = SmallRng::seed_from_u64(5);
    // 2x2 compressive acquisition halves the 8x8 sensor to [1, 4, 4].
    let mut model = Sequential::new(&[1, 4, 4]);
    model.push(Flatten::new());
    model.push(Linear::new(16, 24, &mut rng).expect("linear"));
    model.push(Activation::relu());
    model.push(Linear::new(24, 4, &mut rng).expect("linear"));
    model
}

fn main() -> Result<(), ServeError> {
    // Register the electronic reference beside the implicit photonic
    // default; both become resolvable session targets.
    let platform = Platform::builder()
        .sensor_resolution(SENSOR, SENSOR)
        .compressive_acquisition(CaConfig::default())
        .register_backend(Arc::new(ElectronicReference::new(
            ElectronicBaseline::eyeriss(),
        )))
        .build()?;
    let eyeriss = BackendId::new("electronic:eyeriss");

    let server = Server::builder(platform)
        .shards(SHARDS)
        .max_batch(4)
        .queue_depth(32)
        .workload(Workload::Classify {
            model: classifier(),
        })
        .workload_on(
            Workload::ImageKernel {
                kernel: ImageKernel::SobelX,
            },
            eyeriss.clone(),
        )
        .build()?;
    println!(
        "serving {:?} across backends {:?}\n",
        server.workloads(),
        server
            .backends()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    let mut rng = SmallRng::seed_from_u64(7);
    for index in 0..FRAMES {
        let data: Vec<f64> = (0..SENSOR * SENSOR * 3).map(|_| rng.gen::<f64>()).collect();
        let frame = RgbFrame::new(SENSOR, SENSOR, data).expect("frame");
        if index % 2 == 0 {
            let report = server.run(Request::Classify { frame })?;
            if index == 0 {
                println!(
                    "photonic classify: class {} in {:.3} us",
                    report.class().expect("class"),
                    report.latency().us()
                );
            }
        } else {
            let report = server.run_on(
                &eyeriss,
                Request::ImageKernel {
                    kernel: ImageKernel::SobelX,
                    frame,
                },
            )?;
            if index == 1 {
                println!(
                    "electronic sobel-x:  frame in {:.3} us",
                    report.latency().us()
                );
            }
        }
    }

    let metrics = server.shutdown();
    println!("\n== server metrics ==\n{}", metrics.table());
    for backend in &metrics.backends {
        println!(
            "{}: {:.0} frames/s (sim), {:.3} nJ/frame",
            backend.backend,
            backend.throughput_fps(),
            backend.energy_per_frame().nj()
        );
    }
    assert_eq!(metrics.backends.len(), 2, "two backends served traffic");
    assert_eq!(metrics.completed as usize, FRAMES);
    Ok(())
}
