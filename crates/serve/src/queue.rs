//! The bounded per-group request queue and the micro-batcher's drain rules.
//!
//! Every admitted request gets a monotone **ticket** — its first global
//! frame index within the workload group — and a **weight** — how many
//! frame indices it consumes (1 for single-frame requests, the frame count
//! for video streams). Tickets drive two guarantees:
//!
//! * **Determinism.** A shard seeks its session to the first ticket of the
//!   batch it drained; because a drain only takes a run of requests whose
//!   tickets are contiguous *by weight*, every frame executes at exactly
//!   the frame index a single sequential session would have used.
//! * **FIFO fairness.** Shards always pop from the front, so no request is
//!   overtaken within its group.
//!
//! Admission control is strictly non-blocking: a full queue rejects with
//! [`ServeError::Overloaded`] rather than stalling the caller.

use crate::error::{Result, ServeError};
use crate::metrics::VirtualClock;
use crate::request::{Payload, ResponseSlot};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Real-time backstop for the straggler wait: the simulated flush deadline
/// only advances while other shards complete work, so an otherwise idle
/// server flushes partial batches after this wall-clock pause instead.
const STRAGGLER_BACKSTOP: Duration = Duration::from_micros(200);

/// One admitted request, queued for a shard group.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    pub(crate) payload: Payload,
    /// First global frame index of this request within its workload group.
    pub(crate) ticket: u64,
    /// Frame indices the request consumes (`payload.weight()`).
    pub(crate) weight: u64,
    /// Simulated arrival time (virtual-clock stamp at admission).
    pub(crate) arrival_ns: u64,
    pub(crate) slot: Arc<ResponseSlot>,
}

#[derive(Debug)]
struct QueueState {
    deque: VecDeque<QueuedRequest>,
    next_ticket: u64,
    shutdown: bool,
}

/// The bounded MPMC queue one workload group's shards drain.
#[derive(Debug)]
pub(crate) struct SharedQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl SharedQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(QueueState {
                deque: VecDeque::new(),
                next_ticket: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Requests currently waiting in this queue.
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").deque.len() // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
    }

    /// Admits one request, assigning it the group's next ticket and
    /// advancing the ticket counter by the payload's weight (one frame
    /// index per frame the request carries).
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::ShuttingDown`] once shutdown began.
    pub(crate) fn push(
        &self,
        payload: Payload,
        arrival_ns: u64,
        slot: Arc<ResponseSlot>,
    ) -> Result<u64> {
        let weight = payload.weight();
        let mut state = self.state.lock().expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if state.deque.len() >= self.capacity {
            return Err(ServeError::Overloaded {
                queue_depth: self.capacity,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += weight;
        state.deque.push_back(QueuedRequest {
            payload,
            ticket,
            weight,
            arrival_ns,
            slot,
        });
        drop(state);
        self.ready.notify_one();
        Ok(ticket)
    }

    /// Begins shutdown: no further admissions, all waiting shards wake up
    /// and drain whatever is still queued before exiting.
    pub(crate) fn shutdown(&self) {
        self.state.lock().expect("queue poisoned").shutdown = true; // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        self.ready.notify_all();
    }

    /// Blocks for work, then drains one micro-batch of up to `max_batch`
    /// contiguous-ticket requests.
    ///
    /// Flush rules: a batch flushes once it reaches `max_batch`, once the
    /// queue ran dry and the simulated flush deadline (or its real-time
    /// idle backstop) expired, or once the queue's head is no longer
    /// contiguous with the batch (another shard drained past us). Returns
    /// `None` when the queue shut down and nothing is left to drain.
    pub(crate) fn wait_batch(
        &self,
        max_batch: usize,
        flush_deadline_ns: u64,
        clock: &VirtualClock,
    ) -> Option<Vec<QueuedRequest>> {
        let mut state = self.state.lock().expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        loop {
            if !state.deque.is_empty() {
                break;
            }
            if state.shutdown {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
        }
        let mut batch = Vec::with_capacity(max_batch);
        Self::drain_contiguous(&mut state, &mut batch, max_batch);
        if flush_deadline_ns > 0 {
            let opened_ns = clock.now();
            while batch.len() < max_batch && !state.shutdown {
                if !state.deque.is_empty() {
                    // Head is non-contiguous with our batch: flush early.
                    break;
                }
                if clock.now().saturating_sub(opened_ns) >= flush_deadline_ns {
                    break;
                }
                let (next, timeout) = self
                    .ready
                    .wait_timeout(state, STRAGGLER_BACKSTOP)
                    .expect("queue poisoned"); // lightator: allow(no-unwrap) — poisoned lock means a shard panicked
                state = next;
                let was_empty = state.deque.is_empty();
                Self::drain_contiguous(&mut state, &mut batch, max_batch);
                if timeout.timed_out() && was_empty {
                    // Idle backstop: nothing arrived in real time either.
                    break;
                }
            }
        }
        Some(batch)
    }

    /// Pops queue-front requests into `batch` while their tickets stay
    /// contiguous and the batch has room.
    fn drain_contiguous(state: &mut QueueState, batch: &mut Vec<QueuedRequest>, max_batch: usize) {
        while batch.len() < max_batch {
            let contiguous = match (batch.last(), state.deque.front()) {
                (_, None) => false,
                (None, Some(_)) => true,
                (Some(last), Some(front)) => front.ticket == last.ticket + last.weight,
            };
            if !contiguous {
                return;
            }
            batch.push(state.deque.pop_front().expect("front checked above")); // lightator: allow(no-unwrap) — loop guard checked the front
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightator_sensor::frame::RgbFrame;

    fn frame() -> Payload {
        Payload::Frame(RgbFrame::filled(2, 2, [0.5, 0.5, 0.5]).expect("ok"))
    }

    fn stream(frames: usize) -> Payload {
        Payload::Stream(vec![
            RgbFrame::filled(2, 2, [0.5, 0.5, 0.5]).expect("ok");
            frames
        ])
    }

    fn slot() -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot::new())
    }

    #[test]
    fn tickets_are_assigned_in_admission_order() {
        let queue = SharedQueue::new(4);
        assert_eq!(queue.push(frame(), 0, slot()).expect("ok"), 0);
        assert_eq!(queue.push(frame(), 0, slot()).expect("ok"), 1);
        assert_eq!(queue.push(frame(), 0, slot()).expect("ok"), 2);
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn stream_requests_advance_tickets_by_their_frame_count() {
        let queue = SharedQueue::new(8);
        assert_eq!(queue.push(stream(3), 0, slot()).expect("ok"), 0);
        assert_eq!(queue.push(frame(), 0, slot()).expect("ok"), 3);
        assert_eq!(queue.push(stream(2), 0, slot()).expect("ok"), 4);
        let clock = VirtualClock::new();
        // Weighted tickets still drain as one contiguous run.
        let batch = queue.wait_batch(8, 0, &clock).expect("work");
        assert_eq!(
            batch
                .iter()
                .map(|r| (r.ticket, r.weight))
                .collect::<Vec<_>>(),
            vec![(0, 3), (3, 1), (4, 2)]
        );
    }

    #[test]
    fn a_full_queue_rejects_instead_of_blocking() {
        let queue = SharedQueue::new(2);
        queue.push(frame(), 0, slot()).expect("ok");
        queue.push(frame(), 0, slot()).expect("ok");
        assert_eq!(
            queue.push(frame(), 0, slot()),
            Err(ServeError::Overloaded { queue_depth: 2 })
        );
        // Rejections do not consume tickets.
        let clock = VirtualClock::new();
        let batch = queue.wait_batch(4, 0, &clock).expect("work");
        assert_eq!(
            batch.iter().map(|r| r.ticket).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn wait_batch_drains_up_to_max_batch_in_fifo_order() {
        let queue = SharedQueue::new(8);
        for _ in 0..5 {
            queue.push(frame(), 0, slot()).expect("ok");
        }
        let clock = VirtualClock::new();
        let first = queue.wait_batch(3, 0, &clock).expect("work");
        assert_eq!(
            first.iter().map(|r| r.ticket).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let second = queue.wait_batch(3, 0, &clock).expect("work");
        assert_eq!(
            second.iter().map(|r| r.ticket).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn shutdown_rejects_new_work_and_wakes_waiters() {
        let queue = Arc::new(SharedQueue::new(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.wait_batch(4, 0, &VirtualClock::new()))
        };
        queue.shutdown();
        assert!(waiter.join().expect("no panic").is_none());
        assert_eq!(
            queue.push(frame(), 0, slot()),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn shutdown_still_drains_queued_work() {
        let queue = SharedQueue::new(4);
        queue.push(frame(), 0, slot()).expect("ok");
        queue.shutdown();
        let clock = VirtualClock::new();
        assert_eq!(queue.wait_batch(4, 0, &clock).expect("drain").len(), 1);
        assert!(queue.wait_batch(4, 0, &clock).is_none());
    }

    #[test]
    fn straggler_wait_extends_a_partial_batch() {
        let queue = Arc::new(SharedQueue::new(8));
        queue.push(frame(), 0, slot()).expect("ok");
        let worker = {
            let queue = Arc::clone(&queue);
            // A generous simulated deadline that never expires (the clock
            // stays at zero): the batch closes on max_batch.
            std::thread::spawn(move || queue.wait_batch(2, u64::MAX, &VirtualClock::new()))
        };
        // Feed the straggler from this thread; the worker either drains
        // both up front or picks it up in its wait_timeout loop.
        queue.push(frame(), 0, slot()).expect("ok");
        let batch = worker.join().expect("no panic").expect("work");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1].ticket, batch[0].ticket + 1);
    }
}
