//! Ablation: optical-core geometry sweep (bank count, arms per bank) versus
//! latency, power and efficiency — the design-space the paper fixes at
//! 96 banks × 6 arms × 9 MRs.

// Bench targets: criterion_group! expands to undocumented functions.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightator_core::config::{LightatorConfig, OcGeometry};
use lightator_core::sim::ArchitectureSimulator;
use lightator_nn::quant::{Precision, PrecisionSchedule};
use lightator_nn::spec::NetworkSpec;

fn geometry(bank_rows: usize, arms_per_bank: usize) -> OcGeometry {
    OcGeometry {
        mrs_per_arm: 9,
        arms_per_bank,
        bank_columns: 8,
        bank_rows,
        ca_banks: 8,
    }
}

fn bench_geometry(c: &mut Criterion) {
    let schedule = PrecisionSchedule::Uniform(Precision::w4a4());
    let network = NetworkSpec::vgg9(10);

    println!("Ablation — optical-core geometry sweep (VGG9, [4:4])");
    println!(
        "{:<20} {:>8} {:>14} {:>14} {:>10}",
        "geometry", "MRs", "latency (us)", "max power (W)", "KFPS/W"
    );
    for (rows, arms) in [(6usize, 6usize), (12, 6), (24, 6), (12, 4), (12, 8)] {
        let g = geometry(rows, arms);
        let config = LightatorConfig {
            geometry: g,
            ..LightatorConfig::paper()
        };
        let sim = ArchitectureSimulator::new(config).expect("valid");
        let report = sim.simulate(&network, schedule).expect("ok");
        println!(
            "{:<20} {:>8} {:>14.2} {:>14.2} {:>10.2}",
            format!("8x{rows} banks, {arms} arms"),
            g.mrs(),
            report.frame_latency.us(),
            report.max_power.watts(),
            report.kfps_per_watt()
        );
    }

    let mut group = c.benchmark_group("ablation_geometry");
    group.sample_size(10);
    for rows in [6usize, 12, 24] {
        let config = LightatorConfig {
            geometry: geometry(rows, 6),
            ..LightatorConfig::paper()
        };
        let sim = ArchitectureSimulator::new(config).expect("valid");
        group.bench_with_input(BenchmarkId::new("simulate_vgg9", rows), &rows, |b, _| {
            b.iter(|| sim.simulate(&network, schedule).expect("ok"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_geometry);
criterion_main!(benches);
