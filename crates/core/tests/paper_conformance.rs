//! Conformance tests tying the implementation back to specific statements in
//! the paper's text (§3, §4 and §5). Each test quotes the claim it checks.

use lightator_core::ca::{CaConfig, CompressiveAcquisitor};
use lightator_core::config::{LightatorConfig, OcGeometry};
use lightator_core::energy::EnergyModel;
use lightator_core::mapping::{HardwareMapper, SummationUsage};
use lightator_core::oc::MvmBank;
use lightator_core::sim::ArchitectureSimulator;
use lightator_nn::quant::{Precision, PrecisionSchedule};
use lightator_nn::spec::{ConvSpec, LayerSpec, NetworkSpec};
use lightator_sensor::crc::CRC_COMPARATORS;
use lightator_sensor::dmva::DRIVER_TRANSISTORS;
use lightator_sensor::frame::{Channel, RgbFrame};

/// "MRs are organized into groups of 9 inside each arm ... each set of 6 arms
/// is treated as a bank. In total, 96 banks are arranged in an array with 8
/// columns and 12 rows ... the MVM banks collectively house 5184 MRs. This
/// implies that, at maximum, 5184 MAC operations can be executed in each
/// operational cycle."
#[test]
fn section4_core_dimensions() {
    let g = OcGeometry::paper();
    assert_eq!(g.mrs_per_arm, 9);
    assert_eq!(g.arms_per_bank, 6);
    assert_eq!(g.bank_columns, 8);
    assert_eq!(g.bank_rows, 12);
    assert_eq!(g.banks(), 96);
    assert_eq!(g.mrs(), 5184);
    assert_eq!(g.macs_per_cycle(), 5184);
}

/// "Each CRC unit contains 15 voltage comparators" and "The VCSEL driver
/// circuit comprises 16 parallel driving transistors that encode 4-bit data."
#[test]
fn section3_dmva_component_counts() {
    assert_eq!(CRC_COMPARATORS, 15);
    assert_eq!(DRIVER_TRANSISTORS, 16);
}

/// Fig. 6: "each bank can execute 6 strides" for 3x3, "2 strides" for 5x5
/// with "2 MRs ... unused", and for 7x7 "the entire bank being dedicated to a
/// single stride" with "5 MRs per bank ... inactive".
#[test]
fn figure6_stride_configurations() {
    let mapper = HardwareMapper::new(OcGeometry::paper()).expect("mapper");
    let bank = MvmBank::new(6, 9);
    let conv = |kernel: usize| {
        LayerSpec::Conv(ConvSpec {
            in_channels: 8,
            out_channels: 8,
            kernel,
            stride: 1,
            padding: kernel / 2,
            in_height: 16,
            in_width: 16,
        })
    };

    let k3 = mapper.map_layer(&conv(3)).expect("3x3 maps");
    assert_eq!(k3.strides_per_bank, 6);
    assert_eq!(bank.strides_for_kernel(3), 6);
    assert_eq!(k3.unused_mrs_per_stride, 0);
    assert_eq!(k3.summation, SummationUsage::None);

    let k5 = mapper.map_layer(&conv(5)).expect("5x5 maps");
    assert_eq!(k5.strides_per_bank, 2);
    assert_eq!(bank.strides_for_kernel(5), 2);
    assert_eq!(k5.unused_mrs_per_stride, 2);
    assert_eq!(k5.summation, SummationUsage::FirstStage);

    let k7 = mapper.map_layer(&conv(7)).expect("7x7 maps");
    assert_eq!(k7.strides_per_bank, 1);
    assert_eq!(bank.strides_for_kernel(7), 1);
    assert_eq!(k7.unused_mrs_per_stride, 5);
    assert_eq!(k7.summation, SummationUsage::BothStages);
}

/// Eq. 1: the fused CA coefficients are the products of the pooling
/// coefficient (0.25 for 2x2) and the BT.601 weights (0.299, 0.587, 0.114).
#[test]
fn equation1_fused_coefficients() {
    let ca = CompressiveAcquisitor::new(CaConfig {
        pooling_window: 2,
        rgb_to_grayscale: true,
    })
    .expect("ca");
    let weights = ca.weights();
    assert_eq!(
        weights.len(),
        12,
        "Eq. 1 has 4 pixels x 3 channels = 12 terms"
    );
    for w in &weights {
        let expected = 0.25
            * match w.channel {
                Channel::Red => 0.299,
                Channel::Green => 0.587,
                Channel::Blue => 0.114,
            };
        assert!((w.value - expected).abs() < 1e-12);
    }
}

/// "the major share of power consumption ... DACs contribute to more than
/// 85% of the total power consumption" (Fig. 9 discussion) — our constants
/// are representative rather than extracted, so we assert dominance (>50%)
/// and that the DAC share is by far the largest single component.
#[test]
fn figure9_dac_dominance() {
    let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("sim");
    let report = sim
        .simulate(
            &NetworkSpec::vgg9(10),
            PrecisionSchedule::Uniform(Precision::w3a4()),
        )
        .expect("simulate");
    for layer in report.layers.iter().filter(|l| l.kind != "pool") {
        let values = layer.power.values();
        let dac = values[1].watts();
        for (i, v) in values.iter().enumerate() {
            if i != 1 {
                assert!(
                    dac > v.watts(),
                    "layer {}: DAC ({dac} W) must exceed component {i} ({} W)",
                    layer.index,
                    v.watts()
                );
            }
        }
    }
}

/// Table 1: the paper's area constraint is ~20-60 mm^2; the Lightator
/// configuration and its estimated die area respect it.
#[test]
fn table1_area_constraint() {
    let config = LightatorConfig::paper();
    let energy = EnergyModel::new(config.clone()).expect("energy model");
    assert!(config.area.mm2() >= 20.0 && config.area.mm2() <= 60.0);
    assert!(energy.area().mm2() <= 60.0);
}

/// §5 observation (3): "As we reduce the weight bit-width, the power
/// consumption can be reduced at the cost of accuracy degradation" — the
/// power half of the statement, across all three workload families.
#[test]
fn observation3_power_reduction_with_bit_width() {
    let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("sim");
    for network in [
        NetworkSpec::lenet(),
        NetworkSpec::vgg9(10),
        NetworkSpec::vgg9(100),
    ] {
        let p44 = sim
            .simulate(&network, PrecisionSchedule::Uniform(Precision::w4a4()))
            .expect("simulate")
            .max_power;
        let p34 = sim
            .simulate(&network, PrecisionSchedule::Uniform(Precision::w3a4()))
            .expect("simulate")
            .max_power;
        let p24 = sim
            .simulate(&network, PrecisionSchedule::Uniform(Precision::w2a4()))
            .expect("simulate")
            .max_power;
        assert!(
            p44.watts() > p34.watts() && p34.watts() > p24.watts(),
            "{}",
            network.name()
        );
        // Roughly 2x per dropped bit, as the binary-weighted DAC model implies.
        let ratio = p44.watts() / p34.watts();
        assert!(
            ratio > 1.4 && ratio < 2.6,
            "{}: 4->3 bit ratio {ratio}",
            network.name()
        );
    }
}

/// §3: "This step can be readily skipped depending on the workload" — the CA
/// is optional, and skipping it changes only the first layer's input size,
/// not the ability to run the network.
#[test]
fn compressive_acquisition_is_optional() {
    let sim = ArchitectureSimulator::new(LightatorConfig::paper()).expect("sim");
    let schedule = PrecisionSchedule::Uniform(Precision::w4a4());
    let net = NetworkSpec::vgg9(10);
    let without = sim.simulate(&net, schedule).expect("without CA");
    let (with, saving) = sim.simulate_with_ca(&net, schedule, 2).expect("with CA");
    assert!(with.frame_latency.ns() < without.frame_latency.ns());
    assert!(saving > 0.0);
}

/// The CA's fused single-pass output is bit-for-bit the grayscale+pool
/// reference on an arbitrary non-uniform frame (not just uniform fills).
#[test]
fn ca_equivalence_on_structured_frame() {
    let size = 16;
    let mut data = Vec::with_capacity(size * size * 3);
    for row in 0..size {
        for col in 0..size {
            data.push((row as f64 / size as f64).clamp(0.0, 1.0));
            data.push((col as f64 / size as f64).clamp(0.0, 1.0));
            data.push(((row + col) as f64 / (2 * size) as f64).clamp(0.0, 1.0));
        }
    }
    let frame = RgbFrame::new(size, size, data).expect("frame");
    for window in [2, 4, 8] {
        let ca = CompressiveAcquisitor::new(CaConfig {
            pooling_window: window,
            rgb_to_grayscale: true,
        })
        .expect("ca");
        let fused = ca.acquire(&frame).expect("fused");
        let reference = ca.reference(&frame).expect("reference");
        for (a, b) in fused.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
