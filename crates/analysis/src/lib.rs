//! Static analysis for the Lightator workspace: a determinism lint and a
//! compile-time plan verifier.
//!
//! The crate has two layers:
//!
//! - **Syntactic** ([`lexer`], [`rules`], [`scan`]): a hand-rolled Rust
//!   token scanner (no external parser) walks the workspace sources and
//!   enforces the determinism contract — no wall-clock reads in simulation
//!   crates, no hash-ordered collections, no unseeded RNG constructors, no
//!   `unwrap()`/`expect("…")` in library paths, no `unsafe` anywhere.
//!   Rules are steered per crate class by `analysis.cfg` and individual
//!   findings can be waived with `// lightator: allow(rule)`.
//! - **Semantic** (re-exported from `lightator_core::verify`):
//!   [`verify_plan`] statically checks a lowered [`CompiledPlan`] against
//!   a [`Backend`] — shape propagation, precision-schedule consistency,
//!   capability matrix, energy-model presence — before anything executes.
//!   `Session::open` runs the structural subset on every open and
//!   `ServerBuilder::validate()` dry-runs a full deployment at startup.
//!
//! The `lint_workspace` binary ties both to CI: it prints
//! `path:line:col: rule: message` diagnostics, emits a machine-readable
//! `BENCH_lint_workspace.json` findings artifact ([`report`]) and, with
//! `--gate`, exits non-zero when unsuppressed findings remain.
//!
//! [`CompiledPlan`]: lightator_core::CompiledPlan
//! [`Backend`]: lightator_core::Backend

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

// The semantic layer: static plan verification lives in `lightator-core`
// (it needs the `Backend`/`CompiledPlan` types) and is surfaced here so
// `lightator_analysis::verify_plan` is the one entry point for both
// analysis families.
pub use lightator_core::verify::{
    capability_matrix, performance_spec, verify_plan, verify_plan_structural, Capability, PlanCheck,
};

pub use lexer::{lex, Token, TokenKind};
pub use rules::{AnalysisConfig, Rule};
pub use scan::{lint_source, scan_workspace, Finding, ScanReport};
