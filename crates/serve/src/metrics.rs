//! Serving telemetry: the virtual clock, the queue-wait histogram and the
//! public [`MetricsSnapshot`].
//!
//! All serving time is **simulated** time. Each shard models one Lightator
//! chip with its own timeline: a batch of `B` frames occupies the shard for
//! `B × frame_latency` of simulated time, starting no earlier than the
//! newest request it contains arrived and no earlier than the shard's
//! previous batch finished. A global virtual clock tracks the latest
//! completion so arrivals are stamped causally. Measuring in simulated time
//! keeps the figures meaningful for the accelerator (KFPS-scale latencies)
//! and independent of how many host CPUs happen to run the simulation.

use lightator_photonics::units::Time;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets in [`LatencyHistogram`].
const BUCKETS: usize = 64;

/// The server-wide simulated clock (nanoseconds).
///
/// Advanced to each batch's completion time; read to stamp request
/// arrivals. Monotone by construction (`fetch_max`).
#[derive(Debug, Default)]
pub(crate) struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub(crate) fn now(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Moves the clock forward to `ns` (never backwards).
    pub(crate) fn advance_to(&self, ns: u64) {
        self.now_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Lock-free fixed-bucket latency histogram over simulated nanoseconds.
///
/// Bucket `i` covers `[2^(i-1), 2^i)` ns (bucket 0 is exactly zero), so 64
/// buckets span any `u64` latency with ≤ 2× quantile resolution — plenty
/// for p50/p95/p99 queueing-latency tracking without allocation on the
/// serving path.
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        // Bit width of the sample, saturated into the last bucket.
        ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub(crate) fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0 < q <= 1`), or zero when the histogram is empty.
    pub(crate) fn quantile(&self, q: f64) -> Time {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Time::from_ns(0.0);
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper_ns = if i == 0 { 0u64 } else { 1u64 << i };
                return Time::from_ns(upper_ns as f64);
            }
        }
        unreachable!("rank is bounded by the total sample count")
    }
}

/// Per-shard counters, updated by the owning worker thread.
#[derive(Debug)]
pub(crate) struct ShardMetrics {
    pub(crate) label: String,
    pub(crate) batches: AtomicU64,
    pub(crate) frames: AtomicU64,
    /// `batch_sizes[s - 1]` counts batches of exactly `s` frames.
    pub(crate) batch_sizes: Vec<AtomicU64>,
    /// Weight-encoding passes of the shard session's compiled plan — a
    /// healthy shard compiles once at spawn and stays at 1.
    pub(crate) plan_encodes: AtomicU64,
    /// Executions the shard served from its cached plan encoding.
    pub(crate) plan_hits: AtomicU64,
}

/// Shared mutable telemetry behind the public snapshot.
#[derive(Debug)]
pub(crate) struct MetricsInner {
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) errored: AtomicU64,
    /// Frames served across all successful requests: one per frame
    /// request, the processed frame count per stream request. The
    /// numerator of [`MetricsSnapshot::throughput_fps`].
    pub(crate) served_frames: AtomicU64,
    pub(crate) stream_frames: AtomicU64,
    pub(crate) stream_blocks_total: AtomicU64,
    pub(crate) stream_blocks_skipped: AtomicU64,
    pub(crate) queue_wait: LatencyHistogram,
    pub(crate) first_start_ns: AtomicU64,
    pub(crate) last_completion_ns: AtomicU64,
    pub(crate) shards: Vec<ShardMetrics>,
}

impl MetricsInner {
    pub(crate) fn new(shard_labels: Vec<String>, max_batch: usize) -> Self {
        Self {
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            served_frames: AtomicU64::new(0),
            stream_frames: AtomicU64::new(0),
            stream_blocks_total: AtomicU64::new(0),
            stream_blocks_skipped: AtomicU64::new(0),
            queue_wait: LatencyHistogram::new(),
            first_start_ns: AtomicU64::new(u64::MAX),
            last_completion_ns: AtomicU64::new(0),
            shards: shard_labels
                .into_iter()
                .map(|label| ShardMetrics {
                    label,
                    batches: AtomicU64::new(0),
                    frames: AtomicU64::new(0),
                    batch_sizes: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
                    plan_encodes: AtomicU64::new(0),
                    plan_hits: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    pub(crate) fn snapshot(&self, queued: usize) -> MetricsSnapshot {
        let first = self.first_start_ns.load(Ordering::Relaxed);
        let last = self.last_completion_ns.load(Ordering::Relaxed);
        let span_ns = if first == u64::MAX {
            0.0
        } else {
            last.saturating_sub(first) as f64
        };
        MetricsSnapshot {
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            errored: self.errored.load(Ordering::Relaxed),
            served_frames: self.served_frames.load(Ordering::Relaxed),
            stream_frames: self.stream_frames.load(Ordering::Relaxed),
            stream_blocks_total: self.stream_blocks_total.load(Ordering::Relaxed),
            stream_blocks_skipped: self.stream_blocks_skipped.load(Ordering::Relaxed),
            queued,
            p50_queue_wait: self.queue_wait.quantile(0.50),
            p95_queue_wait: self.queue_wait.quantile(0.95),
            p99_queue_wait: self.queue_wait.quantile(0.99),
            simulated_span: Time::from_ns(span_ns),
            plan_encodes: self
                .shards
                .iter()
                .map(|s| s.plan_encodes.load(Ordering::Relaxed))
                .sum(),
            plan_hits: self
                .shards
                .iter()
                .map(|s| s.plan_hits.load(Ordering::Relaxed))
                .sum(),
            shards: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    shard: s.label.clone(),
                    batches: s.batches.load(Ordering::Relaxed),
                    frames: s.frames.load(Ordering::Relaxed),
                    batch_sizes: s
                        .batch_sizes
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    plan_encodes: s.plan_encodes.load(Ordering::Relaxed),
                    plan_hits: s.plan_hits.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Point-in-time view of the server's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests served successfully (a whole video stream counts once).
    pub completed: u64,
    /// Requests bounced by admission control (queue full).
    pub rejected: u64,
    /// Requests whose execution returned an error.
    pub errored: u64,
    /// Frames served across all successful requests (one per frame
    /// request, the processed frame count per video stream).
    pub served_frames: u64,
    /// Frames served inside video-stream requests.
    pub stream_frames: u64,
    /// Delta-gate blocks across all served stream frames.
    pub stream_blocks_total: u64,
    /// Delta-gate blocks served from the DMVA feedback path (skipped).
    pub stream_blocks_skipped: u64,
    /// Requests currently queued across all workload groups.
    pub queued: usize,
    /// Median simulated queueing latency (arrival → batch start).
    pub p50_queue_wait: Time,
    /// 95th-percentile simulated queueing latency.
    pub p95_queue_wait: Time,
    /// 99th-percentile simulated queueing latency.
    pub p99_queue_wait: Time,
    /// Simulated time between the first batch start and the latest batch
    /// completion — the denominator of [`MetricsSnapshot::throughput_fps`].
    pub simulated_span: Time,
    /// Weight-encoding passes across all shard plans: each shard compiles
    /// its workload group's plan exactly once at spawn, so this equals the
    /// shard count in a healthy pool.
    pub plan_encodes: u64,
    /// Executions served from the shards' cached plan encodings.
    pub plan_hits: u64,
    /// Per-shard batch statistics, one entry per worker thread.
    pub shards: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Fraction of stream blocks served from the feedback path, or zero
    /// when no stream frames were served.
    #[must_use]
    pub fn stream_skip_ratio(&self) -> f64 {
        if self.stream_blocks_total == 0 {
            return 0.0;
        }
        self.stream_blocks_skipped as f64 / self.stream_blocks_total as f64
    }

    /// Sustained serving throughput in frames per simulated second.
    ///
    /// Because every shard is an independent virtual chip, this scales with
    /// the shard count when the offered load saturates the pool — the
    /// system-level payoff of the paper's per-chip KFPS figure.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        if self.simulated_span.seconds() == 0.0 {
            return 0.0;
        }
        self.served_frames as f64 / self.simulated_span.seconds()
    }

    /// Renders the snapshot as the metrics table printed by
    /// `examples/serving.rs`.
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<26} {:>12}", "completed requests", self.completed);
        let _ = writeln!(out, "{:<26} {:>12}", "rejected (overload)", self.rejected);
        let _ = writeln!(out, "{:<26} {:>12}", "errored", self.errored);
        let _ = writeln!(out, "{:<26} {:>12}", "stream frames", self.stream_frames);
        let _ = writeln!(
            out,
            "{:<26} {:>11.1}%",
            "stream blocks skipped",
            self.stream_skip_ratio() * 100.0
        );
        let _ = writeln!(out, "{:<26} {:>12}", "queued now", self.queued);
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p50 queue wait",
            self.p50_queue_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p95 queue wait",
            self.p95_queue_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} us",
            "p99 queue wait",
            self.p99_queue_wait.us()
        );
        let _ = writeln!(
            out,
            "{:<26} {:>12.0}",
            "throughput (frames/s, sim)",
            self.throughput_fps()
        );
        let _ = writeln!(out, "{:<26} {:>12}", "plan encodes", self.plan_encodes);
        let _ = writeln!(out, "{:<26} {:>12}", "plan cache hits", self.plan_hits);
        let _ = writeln!(out, "per-shard batches (size: count) and plan reuse:");
        for shard in &self.shards {
            let sizes: Vec<String> = shard
                .batch_sizes
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(i, count)| format!("{}: {}", i + 1, count))
                .collect();
            let _ = writeln!(
                out,
                "  {:<16} {:>5} frames in {:>4} batches (mean {:.2}) [{}] \
                 plan: {} encode{}, {} hits",
                shard.shard,
                shard.frames,
                shard.batches,
                shard.mean_batch_size(),
                sizes.join(", "),
                shard.plan_encodes,
                if shard.plan_encodes == 1 { "" } else { "s" },
                shard.plan_hits,
            );
        }
        out
    }
}

/// Batch statistics of one shard (worker thread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard label: `<workload>/<index>`.
    pub shard: String,
    /// Batches executed.
    pub batches: u64,
    /// Frames served.
    pub frames: u64,
    /// `batch_sizes[s - 1]` counts batches of exactly `s` frames — the
    /// micro-batcher's batch-size distribution.
    pub batch_sizes: Vec<u64>,
    /// Weight-encoding passes of this shard's compiled plan (1 in a
    /// healthy shard: compiled once at spawn, never re-encoded).
    pub plan_encodes: u64,
    /// Executions this shard served from its cached plan encoding.
    pub plan_hits: u64,
}

impl ShardSnapshot {
    /// Mean frames per batch on this shard.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.frames as f64 / self.batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let clock = VirtualClock::new();
        clock.advance_to(10);
        clock.advance_to(5);
        assert_eq!(clock.now(), 10);
        clock.advance_to(25);
        assert_eq!(clock.now(), 25);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bracket_the_samples() {
        let hist = LatencyHistogram::new();
        for ns in [0u64, 3, 3, 40, 40, 40, 500, 500, 6_000, 70_000] {
            hist.record(ns);
        }
        let p50 = hist.quantile(0.50);
        let p95 = hist.quantile(0.95);
        let p99 = hist.quantile(0.99);
        assert!(p50.ns() <= p95.ns());
        assert!(p95.ns() <= p99.ns());
        // p50 falls in the bucket of the 40 ns samples: (32, 64].
        assert_eq!(p50.ns(), 64.0);
        // p99 lands on the largest sample's bucket.
        assert!(p99.ns() >= 70_000.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.quantile(0.99).ns(), 0.0);
    }

    #[test]
    fn zero_latency_lands_in_the_zero_bucket() {
        let hist = LatencyHistogram::new();
        hist.record(0);
        assert_eq!(hist.quantile(1.0).ns(), 0.0);
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let inner = MetricsInner::new(vec!["classify/0".into()], 4);
        inner.completed.fetch_add(7, Ordering::Relaxed);
        inner.served_frames.fetch_add(7, Ordering::Relaxed);
        inner.shards[0].batches.fetch_add(2, Ordering::Relaxed);
        inner.shards[0].frames.fetch_add(7, Ordering::Relaxed);
        inner.shards[0].batch_sizes[3].fetch_add(1, Ordering::Relaxed);
        inner.shards[0].batch_sizes[2].fetch_add(1, Ordering::Relaxed);
        inner.first_start_ns.fetch_min(100, Ordering::Relaxed);
        inner.last_completion_ns.fetch_max(1_100, Ordering::Relaxed);
        let snap = inner.snapshot(3);
        assert_eq!(snap.completed, 7);
        assert_eq!(snap.queued, 3);
        assert_eq!(snap.simulated_span.ns(), 1_000.0);
        assert!((snap.throughput_fps() - 7.0 / 1e-6).abs() < 1.0);
        assert!((snap.shards[0].mean_batch_size() - 3.5).abs() < 1e-12);
        let table = snap.table();
        assert!(table.contains("classify/0"));
        assert!(table.contains("4: 1"));
    }
}
