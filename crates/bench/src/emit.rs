//! Machine-readable benchmark artifacts: `BENCH_<name>.json`.
//!
//! Every headline harness (the `headline_claims` bin, the `plan_reuse`
//! bench) writes its measured numbers as a small JSON document so the perf
//! trajectory can be tracked across PRs without scraping stdout:
//!
//! ```json
//! {
//!   "bench": "plan_reuse",
//!   "seed_commit": "413702c...",
//!   "metrics": [
//!     { "name": "single_scene_speedup", "value": 1.62, "units": "x" }
//!   ]
//! }
//! ```
//!
//! The workspace is dependency-free offline (the vendored `serde` stub is a
//! no-op), so this module hand-writes the JSON and ships a minimal
//! recursive-descent [`validate`] parser used by the unit tests, by the
//! emitting harnesses themselves (write → read back → validate) and by the
//! CI bench-smoke step.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One measured number: name, value and units.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Metric identifier, stable across PRs (e.g. `single_scene_speedup`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Units label (e.g. `x`, `frames/s`, `KFPS/W`, `%`).
    pub units: String,
}

impl BenchMetric {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, value: f64, units: &str) -> Self {
        Self {
            name: name.to_string(),
            value,
            units: units.to_string(),
        }
    }
}

/// The commit the numbers were measured against: `LIGHTATOR_SEED_COMMIT`
/// when set (CI exports it), otherwise `git rev-parse HEAD`, otherwise
/// `"unknown"`.
#[must_use]
pub fn seed_commit() -> String {
    if let Ok(commit) = std::env::var("LIGHTATOR_SEED_COMMIT") {
        if !commit.trim().is_empty() {
            return commit.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the `BENCH_*.json` document.
#[must_use]
pub fn render(bench: &str, seed_commit: &str, metrics: &[BenchMetric]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{}\",", escape(bench));
    let _ = writeln!(out, "  \"seed_commit\": \"{}\",", escape(seed_commit));
    let _ = writeln!(out, "  \"metrics\": [");
    for (i, metric) in metrics.iter().enumerate() {
        let value = if metric.value.is_finite() {
            format!("{}", metric.value)
        } else {
            "null".to_string()
        };
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"value\": {}, \"units\": \"{}\" }}{}",
            escape(&metric.name),
            value,
            escape(&metric.units),
            if i + 1 < metrics.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Writes `BENCH_<bench>.json` into `LIGHTATOR_BENCH_DIR` (or the current
/// directory), validates the written bytes parse, and returns the path.
///
/// # Errors
///
/// Propagates I/O errors; an invalid render (a bug in this module) is
/// reported as [`std::io::ErrorKind::InvalidData`].
pub fn emit(bench: &str, metrics: &[BenchMetric]) -> std::io::Result<PathBuf> {
    let dir = std::env::var("LIGHTATOR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(dir).join(format!("BENCH_{bench}.json"));
    let body = render(bench, &seed_commit(), metrics);
    std::fs::write(&path, &body)?;
    let written = std::fs::read_to_string(&path)?;
    validate(&written).map_err(|reason| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("emitted {} does not parse: {reason}", path.display()),
        )
    })?;
    Ok(path)
}

/// Minimal JSON well-formedness check (objects, arrays, strings, numbers,
/// literals): returns the parsed metric-name strings on success.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn validate(json: &str) -> Result<Vec<String>, String> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
        metric_names: Vec::new(),
    };
    parser.skip_ws();
    parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.pos));
    }
    Ok(parser.metric_names)
}

/// Recursive-descent JSON scanner behind [`validate`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    metric_names: Vec<String>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected byte `{}` at offset {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            if key == "name" && self.peek() == Some(b'"') {
                let name = self.string()?;
                self.metric_names.push(name);
            } else {
                self.value()?;
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(String::from_utf8_lossy(&out).into_owned());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at offset {}",
                                            self.pos
                                        ))
                                    }
                                }
                            }
                            // Content of the escape is not reconstructed;
                            // well-formedness is all validate() promises.
                            out.push(b'?');
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    // Multi-byte UTF-8 passes through byte-wise: the input
                    // is a &str, so it is valid UTF-8 by construction.
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0usize;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0usize;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad fraction at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0usize;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad exponent at offset {start}"));
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Vec<BenchMetric> {
        vec![
            BenchMetric::new("single_scene_speedup", 1.62, "x"),
            BenchMetric::new("cached_throughput", 123.456, "frames/s"),
        ]
    }

    #[test]
    fn rendered_documents_parse_and_carry_the_metric_names() {
        let json = render("plan_reuse", "abc123", &metrics());
        let names = validate(&json).expect("valid JSON");
        assert_eq!(names, vec!["single_scene_speedup", "cached_throughput"]);
        assert!(json.contains("\"bench\": \"plan_reuse\""));
        assert!(json.contains("\"seed_commit\": \"abc123\""));
        assert!(json.contains("\"units\": \"frames/s\""));
    }

    #[test]
    fn non_finite_values_render_as_null() {
        let json = render("edge", "c", &[BenchMetric::new("bad", f64::INFINITY, "x")]);
        validate(&json).expect("null is valid JSON");
        assert!(json.contains("\"value\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        let json = render("quo\"te", "a\\b", &[BenchMetric::new("n\new", 1.0, "x")]);
        validate(&json).expect("escaped JSON parses");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("{").is_err());
        assert!(validate("{\"a\": }").is_err());
        assert!(validate("[1, 2,]").is_err());
        assert!(validate("{\"a\": 1} trailing").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("01abc").is_err());
    }

    #[test]
    fn validator_accepts_plain_values() {
        assert!(validate("null").is_ok());
        assert!(validate("[1, -2.5, 3e-4, true, \"x\"]").is_ok());
    }

    #[test]
    fn emit_writes_and_validates_a_file() {
        let dir = std::env::temp_dir().join("lightator-bench-emit-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::env::set_var("LIGHTATOR_BENCH_DIR", &dir);
        let path = emit("emit_unit_test", &metrics()).expect("emitted");
        std::env::remove_var("LIGHTATOR_BENCH_DIR");
        assert!(path.ends_with("BENCH_emit_unit_test.json"));
        let body = std::fs::read_to_string(&path).expect("readable");
        let names = validate(&body).expect("parses");
        assert_eq!(names.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
