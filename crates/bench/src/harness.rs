//! Shared helpers for the experiment harness.

use lightator_core::config::LightatorConfig;
use lightator_core::sim::ArchitectureSimulator;
use lightator_core::CoreError;
use lightator_nn::quant::{Precision, PrecisionSchedule};

/// The three uniform precisions evaluated throughout the paper.
pub const PRECISIONS: [Precision; 3] = [
    Precision {
        weight_bits: 4,
        activation_bits: 4,
    },
    Precision {
        weight_bits: 3,
        activation_bits: 4,
    },
    Precision {
        weight_bits: 2,
        activation_bits: 4,
    },
];

/// The five Lightator variants of Table 1 (three uniform, two mixed).
#[must_use]
pub fn lightator_variants() -> Vec<(String, PrecisionSchedule)> {
    let uniform = PRECISIONS
        .iter()
        .map(|&p| (format!("Lightator {p}"), PrecisionSchedule::Uniform(p)));
    let mixed = [
        (
            "Lightator-MX [4:4][3:4]".to_string(),
            PrecisionSchedule::Mixed {
                first: Precision {
                    weight_bits: 4,
                    activation_bits: 4,
                },
                rest: Precision {
                    weight_bits: 3,
                    activation_bits: 4,
                },
            },
        ),
        (
            "Lightator-MX [4:4][2:4]".to_string(),
            PrecisionSchedule::Mixed {
                first: Precision {
                    weight_bits: 4,
                    activation_bits: 4,
                },
                rest: Precision {
                    weight_bits: 2,
                    activation_bits: 4,
                },
            },
        ),
    ];
    uniform.chain(mixed).collect()
}

/// Builds the paper-default architecture simulator.
///
/// # Errors
///
/// Propagates configuration errors (cannot occur for the paper defaults).
pub fn simulator() -> Result<ArchitectureSimulator, CoreError> {
    ArchitectureSimulator::new(LightatorConfig::paper())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_lightator_variants_match_table_one() {
        let variants = lightator_variants();
        assert_eq!(variants.len(), 5);
        assert_eq!(variants[0].0, "Lightator [4:4]");
        assert_eq!(variants[3].0, "Lightator-MX [4:4][3:4]");
    }

    #[test]
    fn simulator_builds() {
        assert!(simulator().is_ok());
    }
}
