//! Capture scenarios: the ADC-less read-out chain under structured scenes,
//! exercising the sensor the way the Lightator node uses it.

use lightator_photonics::units::Wavelength;
use lightator_sensor::array::{SensorArray, SensorArrayConfig};
use lightator_sensor::bayer::BayerPattern;
use lightator_sensor::dmva::{ActivationSource, DmvaLane};
use lightator_sensor::frame::{Channel, RgbFrame};
use lightator_sensor::pixel::{Pixel, PixelConfig};

fn gradient_scene(size: usize) -> RgbFrame {
    let mut data = Vec::with_capacity(size * size * 3);
    for row in 0..size {
        for col in 0..size {
            data.push(row as f64 / (size - 1) as f64);
            data.push(col as f64 / (size - 1) as f64);
            data.push(((row + col) as f64 / (2 * (size - 1)) as f64).clamp(0.0, 1.0));
        }
    }
    RgbFrame::new(size, size, data).expect("frame")
}

/// A horizontal red gradient produces monotonically non-decreasing codes down
/// the red photosite columns — the 4-bit read-out preserves scene structure.
#[test]
fn codes_follow_scene_gradients() {
    let sensor = SensorArray::new(SensorArrayConfig::with_resolution(16, 16).expect("config"))
        .expect("sensor");
    let frame = sensor.capture(&gradient_scene(16)).expect("capture");
    // Red sites live at even rows/even cols for RGGB; walk one column of them.
    let mut last = 0u8;
    for row in (0..16).step_by(2) {
        let code = frame.code(row, 0).expect("code");
        assert_eq!(frame.channel_at(row, 0), Channel::Red);
        assert!(
            code >= last,
            "red gradient must not decrease: {code} < {last}"
        );
        last = code;
    }
}

/// All four Bayer layouts capture the same uniform scene to the same code
/// statistics — the pattern changes which site sees which channel, not the
/// overall response.
#[test]
fn bayer_patterns_agree_on_uniform_scenes() {
    let scene = RgbFrame::filled(8, 8, [0.5, 0.5, 0.5]).expect("scene");
    let mut sums = Vec::new();
    for pattern in [
        BayerPattern::Rggb,
        BayerPattern::Bggr,
        BayerPattern::Grbg,
        BayerPattern::Gbrg,
    ] {
        let mut config = SensorArrayConfig::with_resolution(8, 8).expect("config");
        config.pattern = pattern;
        let sensor = SensorArray::new(config).expect("sensor");
        let frame = sensor.capture(&scene).expect("capture");
        sums.push(frame.codes().iter().map(|&c| u32::from(c)).sum::<u32>());
    }
    assert!(
        sums.windows(2).all(|w| w[0] == w[1]),
        "sums {sums:?} differ across patterns"
    );
}

/// The DMVA lane reproduces the paper's layer-by-layer reuse: the same lane
/// serves the pixel path for the first layer and the feedback path for every
/// later layer, with consistent intensity scaling.
#[test]
fn dmva_lane_switches_between_layers() {
    let mut lane = DmvaLane::with_defaults(Wavelength::from_nm(1550.0)).expect("lane");
    let pixel = Pixel::new(PixelConfig::default()).expect("pixel");

    // Layer 1: driven by the pixel voltage.
    assert_eq!(lane.source(), ActivationSource::PixelArray);
    let v_bright = pixel.output_voltage(0.9).expect("voltage");
    let first_layer = lane.activate(v_bright, 0).expect("activate");
    assert!(first_layer > 0.5);

    // Later layers: driven by the previous layer's 4-bit output.
    lane.select(ActivationSource::PreviousLayer);
    let later = lane.activate(v_bright, 3).expect("activate");
    let later_strong = lane.activate(v_bright, 14).expect("activate");
    assert!(
        later < first_layer,
        "code 3 must be dimmer than the bright pixel"
    );
    assert!(later_strong > later);
}

/// Full-well scenes never overflow the 4-bit range, and the darkest scene
/// produces all-zero codes: the CRC ladder covers exactly the pixel swing.
#[test]
fn code_range_is_exactly_four_bits() {
    let sensor = SensorArray::new(SensorArrayConfig::with_resolution(8, 8).expect("config"))
        .expect("sensor");
    let white = sensor
        .capture(&RgbFrame::filled(8, 8, [1.0, 1.0, 1.0]).expect("scene"))
        .expect("capture");
    assert!(white.codes().iter().all(|&c| c <= 15));
    assert!(white.codes().iter().any(|&c| c >= 13));
    let black = sensor
        .capture(&RgbFrame::black(8, 8).expect("scene"))
        .expect("capture");
    assert!(black.codes().iter().all(|&c| c == 0));
}

/// Normalised codes and the raw mosaic stay ordered the same way: the
/// ADC-less path is a monotone (if coarse) transform of the analog scene.
#[test]
fn normalized_codes_track_mosaic_intensities() {
    let sensor = SensorArray::new(SensorArrayConfig::with_resolution(16, 16).expect("config"))
        .expect("sensor");
    let scene = gradient_scene(16);
    let mosaic = sensor.capture_mosaic(&scene).expect("mosaic");
    let digital = sensor.capture(&scene).expect("capture");
    let normalized = digital.normalized();
    for row in 0..16 {
        for col in 0..15 {
            let a_analog = mosaic.intensity(row, col).expect("analog");
            let b_analog = mosaic.intensity(row, col + 1).expect("analog");
            let a_code = normalized[row * 16 + col];
            let b_code = normalized[row * 16 + col + 1];
            if a_analog + 0.12 < b_analog {
                assert!(a_code <= b_code, "codes must follow clear analog ordering");
            }
        }
    }
}
