//! The determinism rule set and its `analysis.cfg` configuration table.
//!
//! Rules are grouped by **crate class**: every crate in the workspace maps
//! to one class (`sim`, `metering`, ...) and every rule names the classes
//! it applies to. The built-in table encodes the repository's determinism
//! contract — simulation output is a pure function of `(seed, frame
//! index)` — and the `analysis.cfg` file at the workspace root carries the
//! same table in the shared `key = value` text format, so deployments can
//! tighten or relax it without recompiling.

use lightator_core::textcfg::{malformed_value, split_key_value};
use lightator_core::CoreError;

/// One lint rule of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `Instant`/`SystemTime` wall-clock reads: simulated time comes
    /// from the architecture model, never the host clock.
    NoWallClock,
    /// No `std::collections::HashMap`/`HashSet`: their iteration order is
    /// randomized per process, which breaks run-to-run determinism.
    NoHashCollections,
    /// No unseeded RNG constructors (`from_entropy`, `thread_rng`,
    /// `OsRng`): every random draw must flow from the platform seed.
    /// Seeded constructors — `SmallRng::seed_from_u64` and the
    /// counter-based `CounterRng::new(seed, frame)` — are the compliant
    /// set.
    NoUnseededRng,
    /// No `unwrap()`/`expect("…")` in library paths: fallible operations
    /// propagate `Result` so callers keep the error context.
    NoUnwrap,
    /// No `unsafe` blocks anywhere in the workspace.
    NoUnsafe,
}

impl Rule {
    /// Every rule, in diagnostic order.
    pub const ALL: [Rule; 5] = [
        Rule::NoWallClock,
        Rule::NoHashCollections,
        Rule::NoUnseededRng,
        Rule::NoUnwrap,
        Rule::NoUnsafe,
    ];

    /// The rule's stable kebab-case name, as used in `analysis.cfg` keys,
    /// `// lightator: allow(…)` suppressions and JSON findings.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoHashCollections => "no-hash-collections",
            Rule::NoUnseededRng => "no-unseeded-rng",
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoUnsafe => "no-unsafe",
        }
    }

    /// Parses a rule name (the inverse of [`Rule::name`]).
    #[must_use]
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|rule| rule.name() == name)
    }

    /// One-line description used in diagnostics.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NoWallClock => {
                "wall-clock read in a simulation path; simulated time must \
                 come from the architecture model, not the host clock"
            }
            Rule::NoHashCollections => {
                "std HashMap/HashSet has randomized iteration order; use \
                 BTreeMap/BTreeSet (or a Vec) to keep runs deterministic"
            }
            Rule::NoUnseededRng => {
                "unseeded RNG constructor; every random draw must flow from \
                 the platform seed"
            }
            Rule::NoUnwrap => {
                "unwrap()/expect() in a library path; propagate Result (or \
                 suppress with a documented invariant)"
            }
            Rule::NoUnsafe => "unsafe code is forbidden across the workspace",
        }
    }
}

/// The class-partitioned rule table: which crates form which class, and
/// which classes each rule applies to.
///
/// Matching is by crate name (the `<name>` of `crates/<name>`; the
/// workspace-root `src`/`tests` compile into the umbrella crate, class
/// `suite`). A crate named in no class gets **every** rule — unknown code
/// is held to the strictest contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// `(class, crate names)` rows, in declaration order.
    classes: Vec<(String, Vec<String>)>,
    /// `(rule, classes)` rows; the pseudo-class `all` matches every crate.
    rules: Vec<(Rule, Vec<String>)>,
}

impl Default for AnalysisConfig {
    /// The built-in table — identical to the `analysis.cfg` shipped at the
    /// workspace root (a test keeps the two in sync).
    fn default() -> Self {
        let classes = [
            ("sim", vec!["core", "photonics", "sensor", "nn"]),
            ("metering", vec!["bench", "serve"]),
            ("baselines", vec!["baselines"]),
            // Tracing is simulated-time only; the lone wall-clock read (the
            // export annotation) carries an explicit suppression.
            ("telemetry", vec!["telemetry"]),
            ("tooling", vec!["analysis", "suite"]),
        ];
        let rules = [
            // Wall-clock metering is the one legitimate host-time consumer,
            // so the `metering` class is exempt from no-wall-clock.
            (
                Rule::NoWallClock,
                vec!["sim", "baselines", "telemetry", "tooling"],
            ),
            (Rule::NoHashCollections, vec!["all"]),
            (Rule::NoUnseededRng, vec!["all"]),
            (Rule::NoUnwrap, vec!["all"]),
            (Rule::NoUnsafe, vec!["all"]),
        ];
        Self {
            classes: classes
                .into_iter()
                .map(|(class, crates)| {
                    (
                        class.to_string(),
                        crates.into_iter().map(str::to_string).collect(),
                    )
                })
                .collect(),
            rules: rules
                .into_iter()
                .map(|(rule, classes)| (rule, classes.into_iter().map(str::to_string).collect()))
                .collect(),
        }
    }
}

impl AnalysisConfig {
    /// The class a crate belongs to, if any class names it.
    #[must_use]
    pub fn class_of(&self, crate_name: &str) -> Option<&str> {
        self.classes
            .iter()
            .find(|(_, crates)| crates.iter().any(|c| c == crate_name))
            .map(|(class, _)| class.as_str())
    }

    /// Whether `rule` applies to code in `crate_name`. Crates outside
    /// every class get the full rule set.
    #[must_use]
    pub fn applies(&self, rule: Rule, crate_name: &str) -> bool {
        let Some((_, classes)) = self.rules.iter().find(|(r, _)| *r == rule) else {
            return false;
        };
        if classes.iter().any(|c| c == "all") {
            return true;
        }
        match self.class_of(crate_name) {
            Some(class) => classes.iter().any(|c| c == class),
            None => true,
        }
    }

    /// Serialises the table to the shared `key = value` text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# Lightator static-analysis rule table (lightator-analysis)\n");
        out.push_str("# class.<name> partitions the workspace crates; rule.<rule> lists the\n");
        out.push_str("# classes it applies to (`all` matches every crate).\n");
        out.push_str("# Seeded RNG constructors (SmallRng::seed_from_u64, CounterRng::new)\n");
        out.push_str("# satisfy no-unseeded-rng; from_entropy/thread_rng/OsRng are flagged.\n");
        for (class, crates) in &self.classes {
            out.push_str(&format!("class.{class} = {}\n", crates.join(", ")));
        }
        for (rule, classes) in &self.rules {
            out.push_str(&format!("rule.{} = {}\n", rule.name(), classes.join(", ")));
        }
        out
    }

    /// Parses the `key = value` table produced by
    /// [`AnalysisConfig::to_text`]. Missing rows keep the built-in
    /// defaults for *rules*, while any `class.` row replaces the whole
    /// built-in class table (partial class tables would silently reclass
    /// crates).
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, unknown rule names and empty value lists with
    /// an error naming the offending key.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let mut config = Self::default();
        let mut classes: Vec<(String, Vec<String>)> = Vec::new();
        for raw in text.lines() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (key, value) = split_key_value(trimmed)?;
            let items: Vec<String> = value
                .split(',')
                .map(|item| item.trim().to_string())
                .filter(|item| !item.is_empty())
                .collect();
            if items.is_empty() {
                return Err(malformed_value(key, "expected a comma-separated list"));
            }
            if let Some(class) = key.strip_prefix("class.") {
                if class.is_empty() {
                    return Err(malformed_value(key, "class rows need a class name"));
                }
                classes.push((class.to_string(), items));
            } else if let Some(name) = key.strip_prefix("rule.") {
                let Some(rule) = Rule::parse(name) else {
                    return Err(malformed_value(
                        key,
                        "unknown rule (expected no-wall-clock, no-hash-collections, \
                         no-unseeded-rng, no-unwrap or no-unsafe)",
                    ));
                };
                if let Some(row) = config.rules.iter_mut().find(|(r, _)| *r == rule) {
                    row.1 = items;
                }
            } else {
                return Err(malformed_value(
                    key,
                    "unknown analysis configuration key (expected class.* or rule.*)",
                ));
            }
        }
        if !classes.is_empty() {
            config.classes = classes;
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::parse(rule.name()), Some(rule));
            assert!(!rule.describe().is_empty());
        }
        assert_eq!(Rule::parse("no-such-rule"), None);
    }

    #[test]
    fn default_table_encodes_the_determinism_contract() {
        let config = AnalysisConfig::default();
        assert_eq!(config.class_of("core"), Some("sim"));
        assert_eq!(config.class_of("bench"), Some("metering"));
        assert_eq!(config.class_of("not-a-crate"), None);
        // Wall clocks: banned in sim, allowed for metering.
        assert!(config.applies(Rule::NoWallClock, "core"));
        assert!(!config.applies(Rule::NoWallClock, "bench"));
        assert!(!config.applies(Rule::NoWallClock, "serve"));
        // The telemetry crate traces in simulated time only, so it is held
        // to the wall-clock ban like the simulation crates.
        assert_eq!(config.class_of("telemetry"), Some("telemetry"));
        assert!(config.applies(Rule::NoWallClock, "telemetry"));
        // Everything else applies everywhere.
        for crate_name in ["core", "bench", "serve", "analysis", "unknown"] {
            assert!(config.applies(Rule::NoHashCollections, crate_name));
            assert!(config.applies(Rule::NoUnwrap, crate_name));
            assert!(config.applies(Rule::NoUnsafe, crate_name));
        }
        // Unknown crates get the strictest contract.
        assert!(config.applies(Rule::NoWallClock, "unknown"));
    }

    #[test]
    fn config_round_trips_through_text() {
        let config = AnalysisConfig::default();
        let parsed = AnalysisConfig::from_text(&config.to_text()).expect("parse");
        assert_eq!(parsed, config);
    }

    #[test]
    fn overrides_replace_rule_rows() {
        let parsed = AnalysisConfig::from_text("rule.no-wall-clock = all\n").expect("parse");
        assert!(parsed.applies(Rule::NoWallClock, "bench"));
        // Unmentioned rules keep their defaults.
        assert!(parsed.applies(Rule::NoUnwrap, "core"));
    }

    #[test]
    fn malformed_tables_are_rejected_with_context() {
        assert!(AnalysisConfig::from_text("rule.no-such = all").is_err());
        assert!(AnalysisConfig::from_text("class. = core").is_err());
        assert!(AnalysisConfig::from_text("bogus.key = 1").is_err());
        assert!(AnalysisConfig::from_text("rule.no-unwrap = ").is_err());
        assert!(AnalysisConfig::from_text("no equals").is_err());
    }
}
