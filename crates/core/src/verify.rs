//! Static plan verification: prove a [`CompiledPlan`] and a [`Backend`]
//! agree *before* any frame executes.
//!
//! Lowering a workload produces a plan; running it trusts that the plan's
//! label, precision schedule, model shapes and weight encodings all match
//! what the backend will actually execute. This module checks that
//! agreement statically:
//!
//! * [`verify_plan_structural`] — the pure plan/backend contract: the
//!   backend executes and supports the workload, the plan was lowered from
//!   *this* workload, the weight bank was encoded under the precision the
//!   backend runs at, every weighted layer carries an encoding, and shape
//!   propagation through the lowered model succeeds and lands on the
//!   workload's expected input/output shapes.
//! * [`verify_plan`] — everything structural **plus** energy-model
//!   presence: the backend can produce a [`SimulationReport`] for the
//!   workload's performance spec (latency, power, KFPS/W), so a report
//!   built from this pair is never missing its figures of merit.
//! * [`capability_matrix`] — the `supports()`/`executes()`/verified view
//!   of every backend a [`Platform`] resolves against a workload list.
//!
//! [`Session::open`](crate::platform::Session) runs the structural pass on
//! every lowering, and `lightator-analysis` re-exports the whole module as
//! its semantic layer; the serve crate dry-runs entire `ServeConfig`s
//! through it at build time.
//!
//! [`SimulationReport`]: crate::sim::SimulationReport

use crate::backend::{Backend, BackendId};
use crate::error::{CoreError, Result};
use crate::plan::CompiledPlan;
use crate::platform::{Platform, PlatformConfig, Workload};
use lightator_nn::quant::PrecisionSchedule;
use lightator_nn::spec::{NetworkSpec, NetworkSpecBuilder};

/// Successful outcome of a plan verification: which backend/workload pair
/// passed and the names of the individual checks that ran.
///
/// The check names are stable strings (`"backend-executes"`,
/// `"schedule-consistent"`, ...) so diagnostics and tests can assert which
/// layers of the contract were exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCheck {
    /// The backend the plan was verified against.
    pub backend: BackendId,
    /// Label of the verified workload (`"classify"`, `"kernel:sobel-x"`, ...).
    pub workload: String,
    /// Names of the checks that ran and passed, in execution order.
    pub checks: Vec<&'static str>,
}

/// One row of the [`capability_matrix`]: what a backend claims about a
/// workload and whether a lowered plan actually verifies against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capability {
    /// The backend this row describes.
    pub backend: BackendId,
    /// Whether the backend executes plans at all (`false` for rooflines).
    pub executes: bool,
    /// Label of the workload this row describes.
    pub workload: String,
    /// The backend's own [`Backend::supports`] answer.
    pub supported: bool,
    /// Whether compiling and structurally verifying a plan succeeds
    /// end to end (always `false` when `executes` or `supported` is).
    pub verified: bool,
}

fn mismatch(reason: String) -> CoreError {
    CoreError::ModelMismatch { reason }
}

/// Structurally verifies `plan` against `backend` for `workload`:
/// capability, identity, precision-schedule, encoding and shape checks,
/// without running the backend's performance model.
///
/// This is the pass `Session::open` runs on every lowering — cheap enough
/// for the hot path, strict enough that a plan/backend mismatch can never
/// reach execution.
///
/// # Errors
///
/// Returns [`CoreError::ModelMismatch`] naming the first violated check:
/// a non-executing (analytical) backend, an unsupported workload, a plan
/// lowered from a different workload, a weight bank encoded under a
/// schedule the backend does not run at, a weighted layer without its
/// encoding, or a lowered model whose shapes do not propagate to the
/// workload's expected input/output.
pub fn verify_plan_structural(
    plan: &CompiledPlan,
    workload: &Workload,
    config: &PlatformConfig,
    backend: &dyn Backend,
) -> Result<PlanCheck> {
    let mut checks = Vec::new();
    let label = workload.label();

    if !backend.executes() {
        return Err(mismatch(format!(
            "backend `{}` is analytical (executes() == false) and cannot run \
             the `{label}` plan; it only answers performance queries",
            backend.id()
        )));
    }
    checks.push("backend-executes");

    if !backend.supports(workload) {
        return Err(mismatch(format!(
            "backend `{}` does not support the `{label}` workload",
            backend.id()
        )));
    }
    checks.push("workload-supported");

    if plan.label() != label {
        return Err(mismatch(format!(
            "plan was lowered from workload `{}` but is being verified \
             against `{label}`",
            plan.label()
        )));
    }
    checks.push("plan-identity");

    // Schedule consistency: when the backend's precision label parses as a
    // photonic precision schedule, the plan's weight bank must have been
    // encoded under exactly that schedule. Labels outside the photonic
    // precision range (the fp32 reference's "[32:32]") are opaque here —
    // those backends re-quantize from the lowered model themselves.
    match PrecisionSchedule::parse_label(&backend.precision(config)) {
        Ok(precision) => {
            if precision != plan.schedule() {
                return Err(mismatch(format!(
                    "plan weight bank was encoded under schedule {} but \
                     backend `{}` executes at {}",
                    plan.schedule().label(),
                    backend.id(),
                    precision.label()
                )));
            }
            checks.push("schedule-consistent");
        }
        Err(_) => checks.push("schedule-opaque"),
    }

    // Shape propagation through the lowered model, against the shape the
    // workload contract promises.
    let acquired = config.acquired_shape();
    match workload {
        Workload::Acquire => {
            if plan.model().is_some() {
                return Err(mismatch(
                    "acquisition-only plans must not carry a lowered model".to_string(),
                ));
            }
        }
        Workload::Classify { .. } | Workload::ImageKernel { .. } | Workload::VideoStream { .. } => {
            let model = plan.model().ok_or_else(|| {
                mismatch(format!("the `{label}` plan is missing its lowered model"))
            })?;
            // Classify models are exempt from the acquired-shape check at
            // this (structural) layer: `Session::evaluate` feeds dataset
            // tensors to the model directly, bypassing the sensor, so a
            // 28x28 MNIST model on a 128x128 platform is a legal session.
            // The frame-ingest check runs in `verify_plan`, which guards
            // the serving path where every input *is* an acquired frame.
            let expected_input: Option<Vec<usize>> = match workload {
                Workload::VideoStream { stream, .. } => {
                    let edge = stream.block_size + 2;
                    Some(vec![1, edge, edge])
                }
                Workload::ImageKernel { .. } => Some(acquired.to_vec()),
                _ => None,
            };
            if let Some(expected) = expected_input {
                if model.input_shape() != expected.as_slice() {
                    return Err(mismatch(format!(
                        "the `{label}` plan's lowered model takes input shape \
                         {:?} but the platform feeds it {:?}",
                        model.input_shape(),
                        expected
                    )));
                }
            }
            let output = model.output_shape()?;
            if output.is_empty() || output.contains(&0) {
                return Err(mismatch(format!(
                    "the `{label}` plan's lowered model propagates to a \
                     degenerate output shape {output:?}"
                )));
            }
            let weighted = model.weighted_layer_count();
            if plan.encoded_layer_count() != weighted {
                return Err(mismatch(format!(
                    "the `{label}` plan encodes {} of {weighted} weighted \
                     layers; the MR weight bank is incomplete",
                    plan.encoded_layer_count()
                )));
            }
            checks.push("weights-encoded");
        }
    }
    checks.push("shape-propagation");

    Ok(PlanCheck {
        backend: backend.id(),
        workload: label,
        checks,
    })
}

/// Fully verifies `plan` against `backend`: every
/// [`verify_plan_structural`] check plus energy-model presence — the
/// backend must produce a performance report for the workload's spec, so
/// any [`Report`](crate::platform::Report) built from this pair carries
/// its latency/power/KFPS/W figures.
///
/// # Errors
///
/// Everything [`verify_plan_structural`] rejects, plus mapping/simulation
/// errors from the backend's performance model.
pub fn verify_plan(
    plan: &CompiledPlan,
    workload: &Workload,
    config: &PlatformConfig,
    backend: &dyn Backend,
) -> Result<PlanCheck> {
    let mut check = verify_plan_structural(plan, workload, config, backend)?;
    // Frame-ingest shape: on the serving path every input is an acquired
    // frame, so a classify model must take exactly the acquired shape
    // (structurally legal evaluate-only sessions are not served frames).
    if let Workload::Classify { .. } = workload {
        if let Some(model) = plan.model() {
            let acquired = config.acquired_shape();
            if model.input_shape() != acquired {
                return Err(mismatch(format!(
                    "the classify model takes input shape {:?} but acquired \
                     frames have shape {acquired:?}; it cannot serve frames \
                     on this platform",
                    model.input_shape()
                )));
            }
        }
        check.checks.push("frame-ingest-shape");
    }
    let spec = performance_spec(workload, config)?;
    backend.performance(&spec, config).map_err(|source| {
        mismatch(format!(
            "backend `{}` has no energy/performance model for the \
             `{}` workload: {source}",
            backend.id(),
            workload.label()
        ))
    })?;
    check.checks.push("energy-model");
    Ok(check)
}

/// The `supports()`/`executes()` capability matrix of every backend a
/// platform resolves, crossed with `workloads`: each row records the
/// backend's own claims plus whether a plan actually compiles and
/// verifies against it.
///
/// Rows are ordered backend-major in [`Platform::backend_ids`] order, so
/// the matrix is deterministic for a fixed platform.
#[must_use]
pub fn capability_matrix(platform: &Platform, workloads: &[Workload]) -> Vec<Capability> {
    let config = platform.config();
    let mut rows = Vec::new();
    for id in platform.backend_ids() {
        let Ok(backend) = platform.backend(&id) else {
            continue;
        };
        for workload in workloads {
            let supported = backend.supports(workload);
            let verified = backend.executes()
                && supported
                && CompiledPlan::compile(workload, config, config.seed)
                    .and_then(|plan| {
                        verify_plan_structural(&plan, workload, config, backend.as_ref())
                    })
                    .is_ok();
            rows.push(Capability {
                backend: id.clone(),
                executes: backend.executes(),
                workload: workload.label(),
                supported,
                verified,
            });
        }
    }
    rows
}

/// Derives the performance spec a [`Report`](crate::platform::Report) for
/// `workload` would simulate: the model-derived network for classify, the
/// acquisition conv for acquire, the 3×3 filter conv for kernels/streams.
///
/// # Errors
///
/// Propagates spec-construction errors (e.g. a classify model whose input
/// shape cannot be mapped onto the simulator).
pub fn performance_spec(workload: &Workload, config: &PlatformConfig) -> Result<NetworkSpec> {
    let label = workload.label();
    match workload {
        Workload::Classify { model } => crate::platform::workload::network_spec_of(model, &label),
        Workload::Acquire => acquisition_spec_of(config),
        Workload::ImageKernel { .. } | Workload::VideoStream { .. } => {
            Ok(NetworkSpecBuilder::new(&label, config.acquired_shape())
                .conv(1, 3, 1, 1)
                .map_err(CoreError::from)?
                .build())
        }
    }
}

/// Spec of the acquisition pass itself: the fused CA convolution, or the
/// per-photosite readout without CA. (The platform's session path uses the
/// same derivation.)
pub(crate) fn acquisition_spec_of(config: &PlatformConfig) -> Result<NetworkSpec> {
    let (h, w) = (config.sensor.height, config.sensor.width);
    let builder = match &config.ca {
        Some(ca) => NetworkSpecBuilder::new("acquire+ca", [3, h, w]).conv(
            1,
            ca.pooling_window,
            ca.pooling_window,
            0,
        ),
        None => NetworkSpecBuilder::new("acquire", [1, h, w]).conv(1, 1, 1, 0),
    };
    Ok(builder.map_err(CoreError::from)?.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PhotonicBackend;
    use crate::platform::ImageKernel;
    use lightator_nn::quant::{Precision, PrecisionSchedule};

    fn paper_platform() -> Platform {
        Platform::builder()
            .sensor_resolution(16, 16)
            .build()
            .expect("platform")
    }

    #[test]
    fn matching_plan_and_backend_verify_with_all_checks() {
        let platform = paper_platform();
        let config = platform.config();
        let workload = Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        };
        let plan = CompiledPlan::compile(&workload, config, config.seed).expect("plan");
        let backend = PhotonicBackend::new();
        let check = verify_plan(&plan, &workload, config, &backend).expect("verified");
        assert_eq!(check.backend, BackendId::photonic());
        assert_eq!(check.workload, "kernel:sobel-x");
        for name in [
            "backend-executes",
            "workload-supported",
            "plan-identity",
            "schedule-consistent",
            "weights-encoded",
            "shape-propagation",
            "energy-model",
        ] {
            assert!(check.checks.contains(&name), "missing check `{name}`");
        }
    }

    #[test]
    fn schedule_mismatch_is_rejected() {
        let platform = paper_platform();
        let config = platform.config();
        let workload = Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        };
        // Plan encoded under the platform's [4:4]; backend executes [2:4].
        let plan = CompiledPlan::compile(&workload, config, config.seed).expect("plan");
        let variant = PhotonicBackend::with_schedule(
            "photonic:w2a4",
            "Lightator [2:4]",
            PrecisionSchedule::Uniform(Precision::w2a4()),
        );
        let err = verify_plan_structural(&plan, &workload, config, &variant)
            .expect_err("schedule mismatch");
        assert!(err.to_string().contains("encoded under schedule"));
    }

    #[test]
    fn plan_workload_identity_mismatch_is_rejected() {
        let platform = paper_platform();
        let config = platform.config();
        let lowered_from = Workload::ImageKernel {
            kernel: ImageKernel::SobelX,
        };
        let verified_against = Workload::Acquire;
        let plan = CompiledPlan::compile(&lowered_from, config, config.seed).expect("plan");
        let err = verify_plan_structural(&plan, &verified_against, config, &PhotonicBackend::new())
            .expect_err("identity mismatch");
        assert!(err.to_string().contains("lowered from workload"));
    }

    #[test]
    fn acquire_plans_verify_without_a_model() {
        let platform = paper_platform();
        let config = platform.config();
        let plan = CompiledPlan::compile(&Workload::Acquire, config, config.seed).expect("plan");
        let check = verify_plan(&plan, &Workload::Acquire, config, &PhotonicBackend::new())
            .expect("verified");
        assert!(check.checks.contains(&"shape-propagation"));
        assert!(!check.checks.contains(&"weights-encoded"));
    }

    #[test]
    fn classify_frame_shape_mismatch_fails_the_full_verify_only() {
        use lightator_nn::layers::{Flatten, Linear};
        use lightator_nn::model::Sequential;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let platform = paper_platform(); // acquired [1, 8, 8]
        let config = platform.config();
        let mut rng = SmallRng::seed_from_u64(3);
        // A 4x4-input model on an 8x8-acquired platform.
        let mut model = Sequential::new(&[1, 4, 4]);
        model.push(Flatten::new());
        model.push(Linear::new(16, 3, &mut rng).expect("linear"));
        let workload = Workload::Classify { model };
        let plan = CompiledPlan::compile(&workload, config, config.seed).expect("plan");
        let backend = PhotonicBackend::new();
        // Structurally fine (evaluate-only sessions are legal) ...
        verify_plan_structural(&plan, &workload, config, &backend).expect("structural ok");
        // ... but the frame-serving contract rejects it.
        let err = verify_plan(&plan, &workload, config, &backend).expect_err("frame shape");
        assert!(err.to_string().contains("cannot serve frames"));
    }

    #[test]
    fn capability_matrix_covers_every_backend_workload_pair() {
        let platform = paper_platform();
        let workloads = [
            Workload::Acquire,
            Workload::ImageKernel {
                kernel: ImageKernel::Laplacian,
            },
        ];
        let matrix = capability_matrix(&platform, &workloads);
        assert_eq!(matrix.len(), 2); // photonic default only
        assert!(matrix.iter().all(|row| row.executes && row.supported));
        assert!(matrix.iter().all(|row| row.verified));
    }
}
