//! Machine-readable findings artifact: `BENCH_lint_workspace.json`.
//!
//! The lint gate writes its result in the same `BENCH_*.json` shape the
//! bench harnesses emit (hand-rendered JSON, `bench`/`seed_commit`/
//! `metrics` header), extended with a `findings` array carrying every
//! diagnostic — suppressed ones included, so the artifact records exactly
//! which escape hatches the tree uses. The written bytes are round-tripped
//! through [`lightator_bench::emit::validate`] before the gate exits, and
//! CI re-validates them with `python3 -m json.tool`.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::rules::Rule;
use crate::scan::{Finding, ScanReport};
use lightator_bench::emit::{self, BenchMetric};

/// Escapes a string for a JSON string literal (same escapes as the bench
/// writer).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The summary metrics of a scan: files scanned, total/unsuppressed/
/// suppressed finding counts, plus a per-rule unsuppressed count.
#[must_use]
pub fn metrics_of(report: &ScanReport) -> Vec<BenchMetric> {
    let unsuppressed = report.unsuppressed().len();
    let mut metrics = vec![
        BenchMetric::new("files_scanned", report.files_scanned as f64, "files"),
        BenchMetric::new("findings_total", report.findings.len() as f64, "findings"),
        BenchMetric::new("findings_unsuppressed", unsuppressed as f64, "findings"),
        BenchMetric::new(
            "findings_suppressed",
            (report.findings.len() - unsuppressed) as f64,
            "findings",
        ),
    ];
    for rule in Rule::ALL {
        let count = report
            .findings
            .iter()
            .filter(|f| f.rule == rule && !f.suppressed)
            .count();
        metrics.push(BenchMetric::new(
            &format!("rule.{}.unsuppressed", rule.name()),
            count as f64,
            "findings",
        ));
    }
    metrics
}

fn render_finding(finding: &Finding) -> String {
    format!(
        "    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
         \"suppressed\": {}, \"message\": \"{}\" }}",
        escape(finding.rule.name()),
        escape(&finding.path),
        finding.line,
        finding.col,
        finding.suppressed,
        escape(&finding.message)
    )
}

/// Renders the full artifact: the `BENCH_*` header and metrics followed by
/// the `findings` array.
#[must_use]
pub fn render(report: &ScanReport, seed_commit: &str) -> String {
    // Reuse the bench renderer for the header, then splice the findings
    // array in before the closing brace so both documents stay one format.
    let base = emit::render("lint_workspace", seed_commit, &metrics_of(report));
    let mut out = base
        .strip_suffix('}')
        .map_or_else(|| base.clone(), |prefix| prefix.to_string());
    // `  ]\n` of the metrics array is still there; continue the object.
    let trimmed = out.trim_end().to_string();
    out = trimmed;
    out.push_str(",\n  \"findings\": [\n");
    let rendered: Vec<String> = report.findings.iter().map(render_finding).collect();
    out.push_str(&rendered.join(",\n"));
    if !rendered.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}");
    out
}

/// Writes `BENCH_lint_workspace.json` into `LIGHTATOR_BENCH_DIR` (or the
/// current directory), validates the written bytes with the bench JSON
/// parser, and returns the path.
///
/// # Errors
///
/// Propagates I/O errors; an artifact that fails validation (a bug in
/// this module) is reported as [`std::io::ErrorKind::InvalidData`].
pub fn write_artifact(report: &ScanReport) -> std::io::Result<PathBuf> {
    let dir = std::env::var("LIGHTATOR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(dir).join("BENCH_lint_workspace.json");
    let body = render(report, &emit::seed_commit());
    std::fs::write(&path, &body)?;
    let written = std::fs::read_to_string(&path)?;
    emit::validate(&written).map_err(|reason| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("emitted {} does not parse: {reason}", path.display()),
        )
    })?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::AnalysisConfig;
    use crate::scan::lint_source;

    fn sample_report() -> ScanReport {
        let source = "let a = x.unwrap();\n\
                      let b = Instant::now(); // lightator: allow(no-wall-clock)\n";
        ScanReport {
            files_scanned: 1,
            findings: lint_source("crates/core/src/lib.rs", source, &AnalysisConfig::default()),
        }
    }

    #[test]
    fn artifact_parses_with_the_bench_validator() {
        let report = sample_report();
        let json = render(&report, "deadbeef");
        let names = emit::validate(&json).expect("valid JSON");
        assert!(names.iter().any(|n| n == "files_scanned"));
        assert!(names.iter().any(|n| n == "findings_unsuppressed"));
        assert!(json.contains("\"findings\": ["));
        assert!(json.contains("\"rule\": \"no-unwrap\""));
        assert!(json.contains("\"suppressed\": true"));
    }

    #[test]
    fn empty_reports_render_an_empty_findings_array() {
        let report = ScanReport::default();
        let json = render(&report, "deadbeef");
        emit::validate(&json).expect("valid JSON");
        assert!(json.contains("\"findings\": [\n  ]"));
    }

    #[test]
    fn metrics_count_suppressed_and_unsuppressed_separately() {
        let metrics = metrics_of(&sample_report());
        let value = |name: &str| {
            metrics
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.value)
                .unwrap_or(f64::NAN)
        };
        assert_eq!(value("findings_total"), 2.0);
        assert_eq!(value("findings_unsuppressed"), 1.0);
        assert_eq!(value("findings_suppressed"), 1.0);
        assert_eq!(value("rule.no-unwrap.unsuppressed"), 1.0);
        assert_eq!(value("rule.no-wall-clock.unsuppressed"), 0.0);
    }

    #[test]
    fn messages_with_quotes_and_newlines_escape_cleanly() {
        let mut report = sample_report();
        report.findings[0].message = "a \"quoted\"\nmessage\twith\\escapes".to_string();
        let json = render(&report, "deadbeef");
        emit::validate(&json).expect("valid JSON");
    }
}
