//! Offline stub of `criterion` for the Lightator workspace.
//!
//! The build environment has no crates.io access, so this crate provides a
//! compile-compatible subset of criterion 0.5: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Benchmarks really
//! execute and report a median wall-clock time per iteration, but there is no
//! statistical analysis, plotting or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    fn new(sample_count: u32) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Runs `routine` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn run_bench(full_id: &str, sample_count: u32, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    match bencher.median() {
        Some(t) => println!("bench {full_id:<50} median {t:>12.3?}"),
        None => println!("bench {full_id:<50} (no samples)"),
    }
}

/// Scales the stub's default sample count down from criterion's 100.
const DEFAULT_SAMPLES: u32 = 10;

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion enforces >= 10; the stub just needs a positive count and
        // deliberately caps it to keep `cargo bench` cheap offline.
        self.sample_count = (n as u32).clamp(1, 20);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(&full, self.sample_count, |b| routine(b));
        self
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.sample_count, |b| routine(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_count: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut routine: F,
    ) -> &mut Self {
        run_bench(&id.into_id(), self.sample_count, |b| routine(b));
        self
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled_sum", 7), &7u64, |b, &n| {
            b.iter(|| (0..n * 100).sum::<u64>())
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(21) * 2));
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
