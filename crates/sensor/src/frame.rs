//! Image frame containers exchanged between the sensor, the compressive
//! acquisitor and the DNN stack.
//!
//! Intensities are normalised to `[0, 1]`: 0 is dark, 1 is the sensor's
//! full-well illumination. Frames are stored row-major.

use crate::error::{Result, SensorError};
use serde::{Deserialize, Serialize};

/// Which colour channel a value belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// Red channel.
    Red,
    /// Green channel.
    Green,
    /// Blue channel.
    Blue,
}

impl Channel {
    /// All channels in storage order.
    pub const ALL: [Channel; 3] = [Channel::Red, Channel::Green, Channel::Blue];

    /// Storage index of the channel within an interleaved RGB triple.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Channel::Red => 0,
            Channel::Green => 1,
            Channel::Blue => 2,
        }
    }

    /// The ITU-R BT.601 luma weight used by the paper's compressive
    /// acquisitor for RGB-to-grayscale conversion (Eq. 1).
    #[must_use]
    pub fn grayscale_weight(self) -> f64 {
        match self {
            Channel::Red => 0.299,
            Channel::Green => 0.587,
            Channel::Blue => 0.114,
        }
    }
}

/// A normalised RGB frame (row-major, interleaved channels).
///
/// ```
/// use lightator_sensor::frame::RgbFrame;
///
/// # fn main() -> Result<(), lightator_sensor::SensorError> {
/// let frame = RgbFrame::filled(4, 4, [0.5, 0.25, 0.75])?;
/// assert_eq!(frame.height(), 4);
/// assert_eq!(frame.pixel(0, 0)?, [0.5, 0.25, 0.75]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RgbFrame {
    height: usize,
    width: usize,
    data: Vec<f64>,
}

impl RgbFrame {
    /// Creates a frame from interleaved RGB data (`height × width × 3`
    /// samples).
    ///
    /// # Errors
    ///
    /// * [`SensorError::InvalidDimensions`] if either dimension is zero.
    /// * [`SensorError::DataLengthMismatch`] if the data length is wrong.
    /// * [`SensorError::IntensityOutOfRange`] if a sample is outside `[0,1]`.
    pub fn new(height: usize, width: usize, data: Vec<f64>) -> Result<Self> {
        if height == 0 || width == 0 {
            return Err(SensorError::InvalidDimensions { height, width });
        }
        let expected = height * width * 3;
        if data.len() != expected {
            return Err(SensorError::DataLengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        for &v in &data {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SensorError::IntensityOutOfRange { value: v });
            }
        }
        Ok(Self {
            height,
            width,
            data,
        })
    }

    /// Creates a frame with every pixel set to the same RGB triple.
    ///
    /// # Errors
    ///
    /// Same as [`RgbFrame::new`].
    pub fn filled(height: usize, width: usize, rgb: [f64; 3]) -> Result<Self> {
        let mut data = Vec::with_capacity(height * width * 3);
        for _ in 0..height * width {
            data.extend_from_slice(&rgb);
        }
        Self::new(height, width, data)
    }

    /// Creates an all-black frame.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidDimensions`] if a dimension is zero.
    pub fn black(height: usize, width: usize) -> Result<Self> {
        Self::filled(height, width, [0.0, 0.0, 0.0])
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raw interleaved data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The RGB triple at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::PixelOutOfRange`] for coordinates outside the
    /// frame.
    pub fn pixel(&self, row: usize, col: usize) -> Result<[f64; 3]> {
        self.check_coords(row, col)?;
        let base = (row * self.width + col) * 3;
        Ok([self.data[base], self.data[base + 1], self.data[base + 2]])
    }

    /// Sets the RGB triple at `(row, col)`.
    ///
    /// # Errors
    ///
    /// * [`SensorError::PixelOutOfRange`] for coordinates outside the frame.
    /// * [`SensorError::IntensityOutOfRange`] if a component is not in `[0,1]`.
    pub fn set_pixel(&mut self, row: usize, col: usize, rgb: [f64; 3]) -> Result<()> {
        self.check_coords(row, col)?;
        for &v in &rgb {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SensorError::IntensityOutOfRange { value: v });
            }
        }
        let base = (row * self.width + col) * 3;
        self.data[base..base + 3].copy_from_slice(&rgb);
        Ok(())
    }

    /// Reference grayscale conversion using the BT.601 weights; used by the
    /// compressive-acquisitor tests as the golden model.
    #[must_use]
    pub fn to_grayscale(&self) -> GrayFrame {
        let mut data = Vec::with_capacity(self.height * self.width);
        for chunk in self.data.chunks_exact(3) {
            data.push(
                chunk[0] * Channel::Red.grayscale_weight()
                    + chunk[1] * Channel::Green.grayscale_weight()
                    + chunk[2] * Channel::Blue.grayscale_weight(),
            );
        }
        GrayFrame {
            height: self.height,
            width: self.width,
            data,
        }
    }

    fn check_coords(&self, row: usize, col: usize) -> Result<()> {
        if row >= self.height || col >= self.width {
            return Err(SensorError::PixelOutOfRange {
                row,
                col,
                height: self.height,
                width: self.width,
            });
        }
        Ok(())
    }
}

/// A single-channel (grayscale) frame with values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayFrame {
    height: usize,
    width: usize,
    data: Vec<f64>,
}

impl GrayFrame {
    /// Creates a grayscale frame from row-major samples.
    ///
    /// # Errors
    ///
    /// Mirrors [`RgbFrame::new`]: dimension, length and range checks.
    pub fn new(height: usize, width: usize, data: Vec<f64>) -> Result<Self> {
        if height == 0 || width == 0 {
            return Err(SensorError::InvalidDimensions { height, width });
        }
        if data.len() != height * width {
            return Err(SensorError::DataLengthMismatch {
                expected: height * width,
                actual: data.len(),
            });
        }
        for &v in &data {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SensorError::IntensityOutOfRange { value: v });
            }
        }
        Ok(Self {
            height,
            width,
            data,
        })
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raw row-major samples.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Value at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::PixelOutOfRange`] for out-of-frame coordinates.
    pub fn value(&self, row: usize, col: usize) -> Result<f64> {
        if row >= self.height || col >= self.width {
            return Err(SensorError::PixelOutOfRange {
                row,
                col,
                height: self.height,
                width: self.width,
            });
        }
        Ok(self.data[row * self.width + col])
    }

    /// Reference average pooling with a square window and equal stride; the
    /// golden model for the compressive acquisitor's pooling path.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] if `window` is zero or does
    /// not divide both dimensions.
    pub fn average_pool(&self, window: usize) -> Result<GrayFrame> {
        if window == 0 || !self.height.is_multiple_of(window) || !self.width.is_multiple_of(window)
        {
            return Err(SensorError::InvalidParameter {
                name: "window",
                value: window as f64,
            });
        }
        let oh = self.height / window;
        let ow = self.width / window;
        let mut data = vec![0.0; oh * ow];
        for orow in 0..oh {
            for ocol in 0..ow {
                let mut acc = 0.0;
                for dr in 0..window {
                    for dc in 0..window {
                        acc += self.data[(orow * window + dr) * self.width + ocol * window + dc];
                    }
                }
                data[orow * ow + ocol] = acc / (window * window) as f64;
            }
        }
        GrayFrame::new(oh, ow, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_dimensions_and_data() {
        assert!(RgbFrame::new(0, 4, vec![]).is_err());
        assert!(RgbFrame::new(2, 2, vec![0.0; 11]).is_err());
        assert!(RgbFrame::new(1, 1, vec![0.0, 0.5, 1.5]).is_err());
        assert!(RgbFrame::new(1, 1, vec![0.0, 0.5, 1.0]).is_ok());
    }

    #[test]
    fn pixel_round_trip() {
        let mut f = RgbFrame::black(3, 3).expect("valid");
        f.set_pixel(1, 2, [0.1, 0.2, 0.3]).expect("ok");
        assert_eq!(f.pixel(1, 2).expect("ok"), [0.1, 0.2, 0.3]);
        assert!(f.pixel(3, 0).is_err());
        assert!(f.set_pixel(0, 0, [1.1, 0.0, 0.0]).is_err());
    }

    #[test]
    fn grayscale_uses_bt601_weights() {
        let f = RgbFrame::filled(2, 2, [1.0, 0.0, 0.0]).expect("valid");
        let g = f.to_grayscale();
        assert!((g.value(0, 0).expect("ok") - 0.299).abs() < 1e-12);
        let f = RgbFrame::filled(2, 2, [1.0, 1.0, 1.0]).expect("valid");
        let g = f.to_grayscale();
        assert!((g.value(1, 1).expect("ok") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_pool_reduces_dimensions() {
        let data: Vec<f64> = (0..16).map(|i| f64::from(i) / 16.0).collect();
        let g = GrayFrame::new(4, 4, data).expect("valid");
        let pooled = g.average_pool(2).expect("ok");
        assert_eq!(pooled.height(), 2);
        assert_eq!(pooled.width(), 2);
        // Top-left 2x2 window contains 0/16, 1/16, 4/16, 5/16.
        let expected = (0.0 + 1.0 + 4.0 + 5.0) / 16.0 / 4.0;
        assert!((pooled.value(0, 0).expect("ok") - expected).abs() < 1e-12);
    }

    #[test]
    fn average_pool_rejects_non_dividing_window() {
        let g = GrayFrame::new(4, 4, vec![0.0; 16]).expect("valid");
        assert!(g.average_pool(3).is_err());
        assert!(g.average_pool(0).is_err());
    }

    #[test]
    fn channel_weights_sum_to_one() {
        let total: f64 = Channel::ALL.iter().map(|c| c.grayscale_weight()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
