//! Property-based tests for the Lightator core.

use lightator_core::ca::{CaConfig, CompressiveAcquisitor};
use lightator_core::config::{LightatorConfig, OcGeometry};
use lightator_core::energy::EnergyModel;
use lightator_core::mapping::HardwareMapper;
use lightator_core::oc::PhotonicMacUnit;
use lightator_nn::quant::Precision;
use lightator_nn::spec::{ConvSpec, LayerSpec, LinearSpec};
use lightator_photonics::noise::NoiseConfig;
use lightator_sensor::frame::RgbFrame;
use proptest::prelude::*;

proptest! {
    /// Every kernel size that fits a bank follows the Fig. 6 arithmetic:
    /// arms_per_stride = ceil(k² / 9) and strides_per_bank = 6 / arms.
    #[test]
    fn kernel_mapping_arithmetic(kernel in 1usize..8) {
        let mapper = HardwareMapper::new(OcGeometry::paper()).unwrap();
        let layer = LayerSpec::Conv(ConvSpec {
            in_channels: 4,
            out_channels: 8,
            kernel,
            stride: 1,
            padding: kernel / 2,
            in_height: 16,
            in_width: 16,
        });
        let m = mapper.map_layer(&layer).unwrap();
        let expected_arms = kernel * kernel / 9 + usize::from(kernel * kernel % 9 != 0);
        prop_assert_eq!(m.arms_per_stride, expected_arms.max(1));
        if expected_arms <= 6 {
            prop_assert_eq!(m.strides_per_bank, 6 / expected_arms.max(1));
        }
        prop_assert!(m.compute_cycles * m.strides_per_cycle >= m.total_strides);
        prop_assert!(m.active_mrs <= OcGeometry::paper().mrs());
    }

    /// Fully connected layers of any size map with the 9-MAC segmentation
    /// and never claim more MRs than the core has.
    #[test]
    fn fc_mapping_bounded(in_features in 1usize..4096, out_features in 1usize..512) {
        let mapper = HardwareMapper::new(OcGeometry::paper()).unwrap();
        let layer = LayerSpec::Linear(LinearSpec { in_features, out_features });
        let m = mapper.map_layer(&layer).unwrap();
        let segments = in_features.div_ceil(9);
        prop_assert_eq!(m.total_strides, segments * out_features);
        prop_assert!(m.active_mrs <= OcGeometry::paper().mrs());
        prop_assert!(m.weight_reloads >= 1);
    }

    /// Layer power decreases (weakly) as the weight bit-width shrinks, for
    /// any mapped layer.
    #[test]
    fn power_monotone_in_weight_bits(out_channels in 1usize..64, spatial in 4usize..32) {
        let mapper = HardwareMapper::new(OcGeometry::paper()).unwrap();
        let energy = EnergyModel::new(LightatorConfig::paper()).unwrap();
        let layer = LayerSpec::Conv(ConvSpec {
            in_channels: 3,
            out_channels,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_height: spatial,
            in_width: spatial,
        });
        let mapping = mapper.map_layer(&layer).unwrap();
        let p4 = energy.layer_power(&mapping, Precision::w4a4(), false).total().mw();
        let p3 = energy.layer_power(&mapping, Precision::w3a4(), false).total().mw();
        let p2 = energy.layer_power(&mapping, Precision::w2a4(), false).total().mw();
        prop_assert!(p4 >= p3);
        prop_assert!(p3 >= p2);
        prop_assert!(p2 > 0.0);
    }

    /// The fused CA weighted sum equals grayscale conversion followed by
    /// average pooling for arbitrary frames.
    #[test]
    fn ca_equivalence(values in proptest::collection::vec(0.0f64..1.0, 48)) {
        let frame = RgbFrame::new(4, 4, values).unwrap();
        let ca = CompressiveAcquisitor::new(CaConfig::default()).unwrap();
        let fused = ca.acquire(&frame).unwrap();
        let reference = ca.reference(&frame).unwrap();
        for (a, b) in fused.data().iter().zip(reference.data()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The photonic MAC unit stays within a bounded error of the exact dot
    /// product for ideal optics, regardless of vector length.
    #[test]
    fn photonic_dot_bounded_error(
        pairs in proptest::collection::vec((-1.0f64..1.0, 0.0f64..1.0), 1..40),
        seed in 0u64..500,
    ) {
        let weights: Vec<f64> = pairs.iter().map(|(w, _)| *w).collect();
        let activations: Vec<f64> = pairs.iter().map(|(_, a)| *a).collect();
        let mut unit = PhotonicMacUnit::new(NoiseConfig::ideal(), seed).unwrap();
        let value = unit.dot(&weights, &activations).unwrap();
        let exact: f64 = weights.iter().zip(&activations).map(|(w, a)| w * a).sum();
        // Finite extinction ratio costs at most ~2% per product term.
        let bound = 0.03 * weights.len() as f64 + 1e-6;
        prop_assert!((value - exact).abs() <= bound, "error {} bound {}", (value - exact).abs(), bound);
    }

    /// CA output dimensions are exactly `in / window` (`== ceil(in/window)`
    /// for the divisible frames the CA accepts), for any window and frame
    /// multiple.
    #[test]
    fn ca_output_dims_follow_the_window(
        window in 1usize..=4,
        row_blocks in 1usize..=4,
        col_blocks in 1usize..=4,
        grayscale in proptest::bool::ANY,
    ) {
        let (h, w) = (row_blocks * window, col_blocks * window);
        let values: Vec<f64> = (0..h * w * 3).map(|i| (i % 17) as f64 / 16.0).collect();
        let frame = RgbFrame::new(h, w, values).unwrap();
        let ca = CompressiveAcquisitor::new(CaConfig {
            pooling_window: window,
            rgb_to_grayscale: grayscale,
        })
        .unwrap();
        let out = ca.acquire(&frame).unwrap();
        prop_assert_eq!(out.height(), h.div_ceil(window));
        prop_assert_eq!(out.width(), w.div_ceil(window));
        prop_assert_eq!(out.height(), h / window);
        prop_assert_eq!(out.width(), w / window);
    }

    /// Pooled CA values are bounded by the input's intensity range: the
    /// fused weights of every output sum to 1, so the weighted sum is a
    /// convex combination of input samples.
    #[test]
    fn ca_pooled_values_bounded_by_input_range(
        values in proptest::collection::vec(0.0f64..1.0, 48),
        window in 1usize..=2,
        grayscale in proptest::bool::ANY,
    ) {
        let frame = RgbFrame::new(4, 4, values).unwrap();
        let ca = CompressiveAcquisitor::new(CaConfig {
            pooling_window: window,
            rgb_to_grayscale: grayscale,
        })
        .unwrap();
        let lo = frame.data().iter().copied().fold(f64::INFINITY, f64::min);
        let hi = frame.data().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let out = ca.acquire(&frame).unwrap();
        for &v in out.data() {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12,
                "pooled value {v} escaped the input range [{lo}, {hi}]");
        }
    }

    /// `pooling_window = 1` + `rgb_to_grayscale = false` is a bit-exact
    /// identity: the CA reads the single wavelength its MRs are tuned to
    /// (the green plane) with a unit weight, so no rounding may occur.
    #[test]
    fn ca_window_one_without_grayscale_is_bit_exact_identity(
        values in proptest::collection::vec(0.0f64..1.0, 27),
    ) {
        let frame = RgbFrame::new(3, 3, values).unwrap();
        let ca = CompressiveAcquisitor::new(CaConfig {
            pooling_window: 1,
            rgb_to_grayscale: false,
        })
        .unwrap();
        let out = ca.acquire(&frame).unwrap();
        for (pixel, &got) in frame.data().chunks_exact(3).zip(out.data()) {
            prop_assert_eq!(pixel[1].to_bits(), got.to_bits(),
                "identity drifted: {} vs {}", pixel[1], got);
        }
    }

    /// Frames not divisible by the pooling window error cleanly (a typed
    /// `CoreError`, never a panic or a silently padded result), at both
    /// the acquisitor and the platform builder.
    #[test]
    fn ca_non_divisible_frames_error_cleanly(
        extra_h in 1usize..=3,
        extra_w in 0usize..=3,
        window in 2usize..=4,
    ) {
        let (h, w) = (window + extra_h, window + extra_w);
        prop_assume!(!h.is_multiple_of(window) || !w.is_multiple_of(window));
        let frame = RgbFrame::new(h, w, vec![0.5; h * w * 3]).unwrap();
        let ca = CompressiveAcquisitor::new(CaConfig {
            pooling_window: window,
            rgb_to_grayscale: true,
        })
        .unwrap();
        let err = ca.acquire(&frame).unwrap_err();
        prop_assert!(err.to_string().contains("pooling"),
            "unexpected error text: {err}");
    }

    /// Geometry arithmetic is self-consistent for arbitrary configurations.
    #[test]
    fn geometry_consistency(
        mrs in 1usize..16,
        arms in 1usize..12,
        cols in 1usize..12,
        rows in 1usize..16,
    ) {
        let g = OcGeometry {
            mrs_per_arm: mrs,
            arms_per_bank: arms,
            bank_columns: cols,
            bank_rows: rows,
            ca_banks: 0,
        };
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.mrs(), mrs * arms * cols * rows);
        prop_assert_eq!(g.macs_per_cycle(), g.mrs());
        prop_assert_eq!(g.arms(), arms * cols * rows);
    }
}
