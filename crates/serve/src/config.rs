//! Server configuration and its `key = value` text round-trip.
//!
//! [`ServeConfig`] reuses the dependency-free text format of
//! [`lightator_core::textcfg`], so a platform file and a serve file share
//! one syntax:
//!
//! ```
//! use lightator_serve::ServeConfig;
//!
//! # fn main() -> Result<(), lightator_serve::ServeError> {
//! let config = ServeConfig {
//!     shards: 4,
//!     ..ServeConfig::default()
//! };
//! assert_eq!(ServeConfig::from_text(&config.to_text())?, config);
//! # Ok(())
//! # }
//! ```

use crate::error::{Result, ServeError};
use lightator_core::textcfg::{
    malformed_value, parse_bool, parse_f64, parse_u64, parse_usize, split_key_value, write_line,
};
use lightator_photonics::units::Time;

/// Largest simulated duration (in ns) a config may carry: beyond 2^53 ns a
/// `f64` no longer represents every nanosecond exactly, so converting to
/// the u64 nanosecond clock would silently garble the value.
const MAX_CONFIG_NS: f64 = 9_007_199_254_740_992.0; // 2^53

/// Latency-SLO controller settings for the adaptive micro-batcher.
///
/// When a [`ServeConfig`] carries an `slo`, every shard runs an AIMD-style
/// controller around its batch formation: while the observed queue wait of
/// drained batches stays at or under [`SloConfig::target_queue_wait`], the
/// shard *additively* grows its batch-size limit (toward
/// [`SloConfig::max_batch`]) and stretches its flush deadline — bigger
/// batches amortise the per-batch weight-encode cost into more frames.
/// When a batch overshoots the target, the controller *multiplicatively*
/// halves the flush deadline, and halves the batch limit too (toward
/// [`SloConfig::min_batch`]) unless the overshooting batch was full — a
/// full, late batch signals queueing backlog, which bigger batches drain
/// faster, so the limit grows instead. Serialised as the
/// `serve.slo.target_queue_wait_ns` / `serve.slo.min_batch` /
/// `serve.slo.max_batch` text keys.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Queue-wait target (simulated time, arrival → batch start) the
    /// controller steers each shard's p99-ish batch wait toward.
    pub target_queue_wait: Time,
    /// Lower bound of the adaptive batch-size limit.
    pub min_batch: usize,
    /// Upper bound of the adaptive batch-size limit. This — not
    /// [`ServeConfig::max_batch`] — caps batch sizes when the controller is
    /// active.
    pub max_batch: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            target_queue_wait: Time::from_us(2.0),
            min_batch: 1,
            max_batch: 64,
        }
    }
}

/// Complete description of one serving deployment: how many shards serve
/// each workload group, how requests batch, and how much queueing the
/// admission controller tolerates.
///
/// Build values through [`crate::ServerBuilder`]; round-trip them through
/// [`ServeConfig::to_text`] / [`ServeConfig::from_text`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads per workload group, each owning one virtual Lightator
    /// chip (its own seeded `Session`).
    pub shards: usize,
    /// Largest number of frames one `run_batch` call serves (the weights
    /// are programmed once per batch).
    pub max_batch: usize,
    /// Bound on queued requests per workload group; requests beyond it are
    /// rejected with [`ServeError::Overloaded`] instead of blocking.
    pub queue_depth: usize,
    /// How long (in simulated time) a shard holds a partial batch open for
    /// stragglers before flushing it. Zero flushes as soon as the queue is
    /// drained.
    pub flush_deadline: Time,
    /// Distance between consecutive shard noise seeds. Zero (the default)
    /// keeps every shard on the platform seed, which — together with the
    /// frame-indexed noise streams — makes pooled serving bit-identical to
    /// sequential execution. A non-zero stride decorrelates the shards'
    /// analog noise, modelling physically distinct chips.
    pub seed_stride: u64,
    /// Largest number of frames one [`crate::Request::VideoStream`] may
    /// carry; longer streams are rejected at admission with
    /// [`ServeError::InvalidRequest`] so one client cannot monopolise a
    /// shard's timeline.
    pub max_stream_frames: usize,
    /// Intra-session worker threads tiling each shard's MAC loops. Zero
    /// (the default) inherits the platform's `workers` setting; tiling is
    /// bit-exact, so the knob only affects per-shard throughput.
    pub workers: usize,
    /// Per-workload-group backend assignments: `(workload label, backend
    /// id)` pairs, e.g. `("kernel:sobel-x", "electronic:eyeriss")`.
    /// Workloads not listed here run on the photonic default. An explicit
    /// [`crate::ServerBuilder::workload_on`] call overrides the assignment
    /// for that registration. Serialised as `serve.backend.<label>` keys.
    pub backends: Vec<(String, String)>,
    /// Latency-SLO controller for adaptive batching. `None` (the default)
    /// keeps the fixed [`ServeConfig::max_batch`] /
    /// [`ServeConfig::flush_deadline`] batcher; `Some` makes every shard
    /// adapt its batch-size limit and flush deadline between
    /// [`SloConfig::min_batch`] and [`SloConfig::max_batch`] to hold
    /// [`SloConfig::target_queue_wait`]. Serialised as the
    /// `serve.slo.target_queue_wait_ns`, `serve.slo.min_batch` and
    /// `serve.slo.max_batch` text keys (writing any one of them enables the
    /// controller; the others keep [`SloConfig::default`]).
    pub slo: Option<SloConfig>,
    /// Work stealing between a workload group's shards (the
    /// `serve.steal` text key). When `true` (the default) admission routes
    /// runs of consecutive tickets onto per-shard sub-deques and an idle
    /// shard drains the front run of its fullest sibling — work moves, frame
    /// indices don't, so report bits stay identical to sequential
    /// execution. `false` keeps a single shared deque per group.
    pub steal: bool,
    /// Consecutive priority-first drains allowed before a shard must take
    /// the queue head even if it is batch-lane (the `serve.interactive_weight`
    /// text key). Bounds batch-lane starvation under interactive floods:
    /// out of every `interactive_weight + 1` mixed drains, at least one
    /// starts at the head. Values are clamped to at least 1.
    pub interactive_weight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            max_batch: 4,
            queue_depth: 32,
            flush_deadline: Time::from_ns(0.0),
            seed_stride: 0,
            max_stream_frames: 256,
            workers: 0,
            backends: Vec::new(),
            slo: None,
            steal: true,
            interactive_weight: 4,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the violated
    /// constraint: zero shards, a zero batch bound, a zero queue depth, a
    /// non-finite/negative/oversized flush deadline, or inconsistent SLO
    /// bounds.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "at least one shard is needed per workload group".into(),
            });
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_batch must admit at least one frame per batch".into(),
            });
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "queue_depth must admit at least one queued request".into(),
            });
        }
        if !self.flush_deadline.ns().is_finite() || self.flush_deadline.ns() < 0.0 {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "flush_deadline must be a finite, non-negative simulated time \
                     (got {} ns); NaN or infinite deadlines would silently \
                     convert to 0 ns on the integer clock",
                    self.flush_deadline.ns()
                ),
            });
        }
        if self.flush_deadline.ns() > MAX_CONFIG_NS {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "flush_deadline of {} ns exceeds 2^53 ns (~104 simulated \
                     days), past which f64 cannot represent every nanosecond \
                     and the u64 clock conversion garbles the value",
                    self.flush_deadline.ns()
                ),
            });
        }
        if let Some(slo) = &self.slo {
            let target = slo.target_queue_wait.ns();
            if !target.is_finite() || target <= 0.0 || target > MAX_CONFIG_NS {
                return Err(ServeError::InvalidConfig {
                    reason: format!(
                        "slo.target_queue_wait must be a finite, positive \
                         simulated time no larger than 2^53 ns (got {target} ns)"
                    ),
                });
            }
            if slo.min_batch == 0 {
                return Err(ServeError::InvalidConfig {
                    reason: "slo.min_batch must admit at least one frame per batch".into(),
                });
            }
            if slo.max_batch < slo.min_batch {
                return Err(ServeError::InvalidConfig {
                    reason: format!(
                        "slo.max_batch ({}) must be at least slo.min_batch ({})",
                        slo.max_batch, slo.min_batch
                    ),
                });
            }
        }
        if self.interactive_weight == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "interactive_weight must allow at least one priority-first drain".into(),
            });
        }
        if self.max_stream_frames == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_stream_frames must admit at least one frame per stream".into(),
            });
        }
        for (label, backend) in &self.backends {
            if label.is_empty() || backend.is_empty() {
                return Err(ServeError::InvalidConfig {
                    reason: "backend assignments need a workload label and a backend id".into(),
                });
            }
            if self
                .backends
                .iter()
                .filter(|(other, _)| other == label)
                .count()
                > 1
            {
                return Err(ServeError::InvalidConfig {
                    reason: format!("workload `{label}` is assigned a backend twice"),
                });
            }
        }
        Ok(())
    }

    /// The largest batch any shard may form under this configuration: the
    /// SLO controller's [`SloConfig::max_batch`] cap when one is active,
    /// [`ServeConfig::max_batch`] otherwise.
    #[must_use]
    pub fn effective_max_batch(&self) -> usize {
        match &self.slo {
            Some(slo) => slo.max_batch.max(1),
            None => self.max_batch.max(1),
        }
    }

    /// The configured backend id for a workload label, if any.
    #[must_use]
    pub fn backend_for(&self, label: &str) -> Option<&str> {
        self.backends
            .iter()
            .find(|(assigned, _)| assigned == label)
            .map(|(_, backend)| backend.as_str())
    }

    /// Serialises the configuration to the `key = value` text format shared
    /// with `PlatformConfig`.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# Lightator serve configuration\n");
        write_line(&mut out, "serve.shards", self.shards);
        write_line(&mut out, "serve.max_batch", self.max_batch);
        write_line(&mut out, "serve.queue_depth", self.queue_depth);
        write_line(
            &mut out,
            "serve.flush_deadline_ns",
            self.flush_deadline.ns(),
        );
        write_line(&mut out, "serve.seed_stride", self.seed_stride);
        write_line(&mut out, "serve.max_stream_frames", self.max_stream_frames);
        write_line(&mut out, "serve.workers", self.workers);
        write_line(&mut out, "serve.steal", self.steal);
        write_line(
            &mut out,
            "serve.interactive_weight",
            self.interactive_weight,
        );
        if let Some(slo) = &self.slo {
            write_line(
                &mut out,
                "serve.slo.target_queue_wait_ns",
                slo.target_queue_wait.ns(),
            );
            write_line(&mut out, "serve.slo.min_batch", slo.min_batch);
            write_line(&mut out, "serve.slo.max_batch", slo.max_batch);
        }
        for (label, backend) in &self.backends {
            write_line(&mut out, &format!("serve.backend.{label}"), backend);
        }
        out
    }

    /// Parses the `key = value` text format produced by
    /// [`ServeConfig::to_text`].
    ///
    /// Missing keys keep their defaults; unknown keys and malformed values
    /// are rejected with an error naming the offending line. The result is
    /// *not* re-validated here; call [`ServeConfig::validate`] (or let
    /// `ServerBuilder::build` do it).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] wrapping the text-format error for
    /// syntax errors, unknown keys or unparsable values.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut config = Self::default();
        for raw in text.lines() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (key, value) = split_key_value(trimmed)?;
            match key {
                "serve.shards" => config.shards = parse_usize(key, value)?,
                "serve.max_batch" => config.max_batch = parse_usize(key, value)?,
                "serve.queue_depth" => config.queue_depth = parse_usize(key, value)?,
                "serve.flush_deadline_ns" => {
                    config.flush_deadline = Time::from_ns(parse_f64(key, value)?);
                }
                "serve.seed_stride" => config.seed_stride = parse_u64(key, value)?,
                "serve.max_stream_frames" => {
                    config.max_stream_frames = parse_usize(key, value)?;
                }
                "serve.workers" => config.workers = parse_usize(key, value)?,
                "serve.steal" => config.steal = parse_bool(key, value)?,
                "serve.interactive_weight" => {
                    config.interactive_weight = parse_usize(key, value)?;
                }
                "serve.slo.target_queue_wait_ns" => {
                    config
                        .slo
                        .get_or_insert_with(SloConfig::default)
                        .target_queue_wait = Time::from_ns(parse_f64(key, value)?);
                }
                "serve.slo.min_batch" => {
                    config.slo.get_or_insert_with(SloConfig::default).min_batch =
                        parse_usize(key, value)?;
                }
                "serve.slo.max_batch" => {
                    config.slo.get_or_insert_with(SloConfig::default).max_batch =
                        parse_usize(key, value)?;
                }
                assignment if assignment.starts_with("serve.backend.") => {
                    let label = &assignment["serve.backend.".len()..];
                    if label.is_empty() || value.is_empty() {
                        return Err(malformed_value(
                            assignment,
                            "backend assignments need a workload label and a backend id",
                        )
                        .into());
                    }
                    config.backends.push((label.to_string(), value.to_string()));
                }
                unknown => {
                    return Err(malformed_value(
                        unknown,
                        "unknown serve configuration key (check for typos)",
                    )
                    .into());
                }
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_round_trips() {
        let config = ServeConfig::default();
        assert_eq!(
            ServeConfig::from_text(&config.to_text()).expect("parse"),
            config
        );
    }

    #[test]
    fn customised_config_round_trips() {
        let config = ServeConfig {
            shards: 4,
            max_batch: 8,
            queue_depth: 128,
            flush_deadline: Time::from_us(2.5),
            seed_stride: 17,
            max_stream_frames: 48,
            workers: 2,
            backends: Vec::new(),
            slo: Some(SloConfig {
                target_queue_wait: Time::from_us(1.5),
                min_batch: 2,
                max_batch: 32,
            }),
            steal: false,
            interactive_weight: 7,
        };
        let text = config.to_text();
        assert!(text.contains("serve.slo.target_queue_wait_ns = 1500"));
        assert!(text.contains("serve.steal = false"));
        assert!(text.contains("serve.interactive_weight = 7"));
        assert_eq!(ServeConfig::from_text(&text).expect("parse"), config);
    }

    #[test]
    fn a_single_slo_key_enables_the_controller_with_defaults() {
        let parsed = ServeConfig::from_text("serve.slo.max_batch = 16\n").expect("parse");
        let slo = parsed.slo.clone().expect("controller enabled");
        assert_eq!(slo.max_batch, 16);
        assert_eq!(slo.min_batch, SloConfig::default().min_batch);
        assert_eq!(
            slo.target_queue_wait,
            SloConfig::default().target_queue_wait
        );
        assert_eq!(parsed.effective_max_batch(), 16);
        // Without an SLO the fixed bound is the effective one.
        assert_eq!(
            ServeConfig::default().effective_max_batch(),
            ServeConfig::default().max_batch
        );
    }

    #[test]
    fn backend_assignments_round_trip_through_the_text_format() {
        let config = ServeConfig {
            shards: 2,
            backends: vec![
                ("kernel:sobel-x".into(), "electronic:eyeriss".into()),
                ("classify".into(), "photonic".into()),
            ],
            ..ServeConfig::default()
        };
        let text = config.to_text();
        assert!(text.contains("serve.backend.kernel:sobel-x = electronic:eyeriss"));
        assert!(text.contains("serve.backend.classify = photonic"));
        let parsed = ServeConfig::from_text(&text).expect("parse");
        assert_eq!(parsed, config);
        assert_eq!(
            parsed.backend_for("kernel:sobel-x"),
            Some("electronic:eyeriss")
        );
        assert_eq!(parsed.backend_for("acquire"), None);
        assert!(parsed.validate().is_ok());
    }

    #[test]
    fn malformed_backend_assignments_are_rejected() {
        let err =
            ServeConfig::from_text("serve.backend. = electronic:eyeriss").expect_err("empty label");
        assert!(err.to_string().contains("workload label"));
        let duplicated = ServeConfig {
            backends: vec![
                ("classify".into(), "photonic".into()),
                ("classify".into(), "electronic:eyeriss".into()),
            ],
            ..ServeConfig::default()
        };
        assert!(duplicated
            .validate()
            .unwrap_err()
            .to_string()
            .contains("assigned a backend twice"));
    }

    #[test]
    fn partial_configs_fall_back_to_defaults() {
        let parsed = ServeConfig::from_text("serve.shards = 3\n").expect("parse");
        assert_eq!(parsed.shards, 3);
        assert_eq!(parsed.max_batch, ServeConfig::default().max_batch);
        assert_eq!(parsed.queue_depth, ServeConfig::default().queue_depth);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let parsed = ServeConfig::from_text("# a comment\n\nserve.max_batch = 6\n").expect("ok");
        assert_eq!(parsed.max_batch, 6);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected_with_context() {
        let err = ServeConfig::from_text("serve.shards = four").expect_err("bad value");
        assert!(err.to_string().contains("serve.shards"));
        let err = ServeConfig::from_text("serve.shardz = 4").expect_err("typo");
        assert!(err.to_string().contains("unknown serve configuration key"));
        assert!(ServeConfig::from_text("no equals sign").is_err());
    }

    #[test]
    fn validation_names_the_violated_constraint() {
        let bad = ServeConfig {
            shards: 0,
            ..ServeConfig::default()
        };
        assert!(bad.validate().unwrap_err().to_string().contains("shard"));
        let bad = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_batch"));
        let bad = ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("queue_depth"));
        let bad = ServeConfig {
            flush_deadline: Time::from_ns(f64::NAN),
            ..ServeConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ServeConfig {
            max_stream_frames: 0,
            ..ServeConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_stream_frames"));
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn oversized_flush_deadlines_are_rejected_with_the_reason() {
        let bad = ServeConfig {
            flush_deadline: Time::from_ns(1e18),
            ..ServeConfig::default()
        };
        let message = bad.validate().unwrap_err().to_string();
        assert!(message.contains("2^53"), "got: {message}");
        let bad = ServeConfig {
            flush_deadline: Time::from_ns(f64::INFINITY),
            ..ServeConfig::default()
        };
        assert!(bad.validate().is_err());
        // The largest exactly-representable deadline passes.
        let edge = ServeConfig {
            flush_deadline: Time::from_ns(9_007_199_254_740_992.0),
            ..ServeConfig::default()
        };
        assert!(edge.validate().is_ok());
    }

    #[test]
    fn slo_validation_names_the_violated_constraint() {
        let bad = ServeConfig {
            slo: Some(SloConfig {
                target_queue_wait: Time::from_ns(0.0),
                ..SloConfig::default()
            }),
            ..ServeConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("target_queue_wait"));
        let bad = ServeConfig {
            slo: Some(SloConfig {
                min_batch: 0,
                ..SloConfig::default()
            }),
            ..ServeConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("slo.min_batch"));
        let bad = ServeConfig {
            slo: Some(SloConfig {
                min_batch: 8,
                max_batch: 4,
                ..SloConfig::default()
            }),
            ..ServeConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("slo.max_batch"));
        let bad = ServeConfig {
            interactive_weight: 0,
            ..ServeConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("interactive_weight"));
        let good = ServeConfig {
            slo: Some(SloConfig::default()),
            ..ServeConfig::default()
        };
        assert!(good.validate().is_ok());
    }
}
