//! Property-based tests for the photonic device models.

use lightator_photonics::arm::{ArmConfig, OpticalArm};
use lightator_photonics::microring::{MicroringConfig, MicroringResonator};
use lightator_photonics::noise::NoiseConfig;
use lightator_photonics::photodetector::{BalancedPhotodetector, PhotodetectorConfig};
use lightator_photonics::units::{Power, Wavelength};
use lightator_photonics::vcsel::{ModulatedVcsel, VcselConfig};
use lightator_photonics::waveguide::{LinkBudget, WaveguideConfig};
use lightator_photonics::wdm::{CrosstalkModel, WdmGrid};
use proptest::prelude::*;

proptest! {
    /// Any representable weight programmed onto an MR yields a transmission
    /// inside [0, 1] and within a small tolerance of the requested weight.
    #[test]
    fn mr_transmission_tracks_weight(weight in 0.0f64..0.95) {
        let mut mr = MicroringResonator::new(
            MicroringConfig::default(),
            Wavelength::from_nm(1550.0),
        ).unwrap();
        mr.set_weight(weight).unwrap();
        let t = mr.channel_transmission();
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((t - weight).abs() < 0.05, "weight {} realised {}", weight, t);
    }

    /// Through-port transmission is bounded in [0, 1] for any probe
    /// wavelength and any tuning state.
    #[test]
    fn mr_transmission_always_physical(
        weight in 0.0f64..1.0,
        probe_nm in 1500.0f64..1600.0,
    ) {
        let mut mr = MicroringResonator::new(
            MicroringConfig::default(),
            Wavelength::from_nm(1550.0),
        ).unwrap();
        mr.set_weight(weight).unwrap();
        let t = mr.transmission_at(Wavelength::from_nm(probe_nm));
        prop_assert!((0.0..=1.0).contains(&t));
        let d = mr.drop_transmission_at(Wavelength::from_nm(probe_nm));
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!(t + d <= 1.0 + 1e-9);
    }

    /// MR tuning power is non-negative and monotonically non-increasing in
    /// the programmed weight (heavier attenuation costs more heater power).
    #[test]
    fn mr_tuning_power_monotone(w_low in 0.05f64..0.45, delta in 0.05f64..0.5) {
        let w_high = w_low + delta;
        let mut mr = MicroringResonator::new(
            MicroringConfig::default(),
            Wavelength::from_nm(1550.0),
        ).unwrap();
        mr.set_weight(w_low).unwrap();
        let p_low = mr.tuning_power().mw();
        mr.set_weight(w_high).unwrap();
        let p_high = mr.tuning_power().mw();
        prop_assert!(p_low >= 0.0 && p_high >= 0.0);
        prop_assert!(p_low >= p_high - 1e-12,
            "weight {} costs {} mW but weight {} costs {} mW", w_low, p_low, w_high, p_high);
    }

    /// VCSEL modulation produces intensities that are monotone in the code
    /// and bounded in [0, 1].
    #[test]
    fn vcsel_codes_monotone(levels in 2u16..64) {
        let m = ModulatedVcsel::new(
            VcselConfig::default(),
            Wavelength::from_nm(1550.0),
            levels,
        ).unwrap();
        let mut last = -1.0;
        for level in 0..levels {
            let i = m.normalized_intensity(level).unwrap();
            prop_assert!((0.0..=1.0).contains(&i));
            prop_assert!(i >= last);
            last = i;
        }
    }

    /// The balanced detector output is antisymmetric under swapping its
    /// inputs and bounded by the full-scale clamp.
    #[test]
    fn bpd_antisymmetric(p_pos in 0.0f64..2.0, p_neg in 0.0f64..2.0) {
        let bpd = BalancedPhotodetector::new(PhotodetectorConfig::default()).unwrap();
        let full = Power::from_mw(2.0);
        let a = bpd.normalized_output(Power::from_mw(p_pos), Power::from_mw(p_neg), full).unwrap();
        let b = bpd.normalized_output(Power::from_mw(p_neg), Power::from_mw(p_pos), full).unwrap();
        prop_assert!((-1.0..=1.0).contains(&a));
        prop_assert!((a + b).abs() < 1e-9);
    }

    /// Link budgets: delivered power never exceeds launch power, and the
    /// required-launch/delivered pair are mutually consistent.
    #[test]
    fn link_budget_consistency(
        length_mm in 0.0f64..50.0,
        couplers in 0u32..4,
        stages in 0u32..6,
        rings in 0u32..54,
        launch_mw in 0.01f64..10.0,
    ) {
        let link = LinkBudget::new(WaveguideConfig::default())
            .with_length_mm(length_mm)
            .with_couplers(couplers)
            .with_splitter_stages(stages)
            .with_rings_passed(rings);
        let launch = Power::from_mw(launch_mw);
        let delivered = link.delivered_power(launch).unwrap();
        prop_assert!(delivered.mw() <= launch.mw() + 1e-12);
        let needed = link.required_launch_power(delivered).unwrap();
        prop_assert!((needed.mw() - launch.mw()).abs() < 1e-6);
    }

    /// Crosstalk factors always lie in [0, 1] and the ideal model never
    /// changes an intensity vector.
    #[test]
    fn crosstalk_bounded(channels in 2usize..12, value in 0.0f64..1.0) {
        let grid = WdmGrid::lightator_arm(channels).unwrap();
        let model = CrosstalkModel::new(grid.clone(), MicroringConfig::default());
        let m = model.matrix().unwrap();
        for row in &m {
            for &x in row {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }
        let ideal = CrosstalkModel::ideal(grid, MicroringConfig::default());
        let mut v = vec![value; channels];
        ideal.apply(&mut v).unwrap();
        prop_assert!(v.iter().all(|&x| (x - value).abs() < 1e-15));
    }

    /// An ideal (noise-free) optical arm reproduces the exact dot product to
    /// within the error allowed by finite extinction ratio, for arbitrary
    /// weights and activations.
    #[test]
    fn arm_mac_approximates_dot_product(
        weights in proptest::collection::vec(-1.0f64..1.0, 9),
        activations in proptest::collection::vec(0.0f64..1.0, 9),
        seed in 0u64..1_000,
    ) {
        let mut arm = OpticalArm::new(ArmConfig {
            noise: NoiseConfig::ideal(),
            ..ArmConfig::default()
        }).unwrap();
        arm.load_weights(&weights).unwrap();
        arm.begin_frame(seed, 0);
        let out = arm.mac(&activations).unwrap();
        let exact: f64 = weights.iter().zip(&activations).map(|(w, a)| w * a).sum();
        prop_assert!((out.ideal - exact).abs() < 1e-12);
        // 9 products, each off by at most ~2% of its magnitude.
        prop_assert!((out.value - exact).abs() < 0.2, "value {} exact {}", out.value, exact);
    }

    /// Arm tuning power scales with the number of active (non-zero) weights.
    #[test]
    fn arm_tuning_power_nonnegative(
        weights in proptest::collection::vec(-1.0f64..1.0, 0..9),
    ) {
        let mut arm = OpticalArm::new(ArmConfig::default()).unwrap();
        arm.load_weights(&weights).unwrap();
        prop_assert!(arm.tuning_power().mw() >= 0.0);
        if arm.active_rings() == 0 {
            prop_assert!(arm.tuning_power().mw() == 0.0);
        }
    }
}
