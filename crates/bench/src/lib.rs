//! Experiment harness regenerating every table and figure of the Lightator
//! paper's evaluation section.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig8`] | Fig. 8 — LeNet layer-wise power breakdown, \[4:4\]/\[3:4\]/\[2:4\] |
//! | [`fig9`] | Fig. 9 — VGG9 layer-wise power breakdown, L8 pie chart, CA saving |
//! | [`table1`] | Table 1 — comparison with photonic accelerators + GPU |
//! | [`fig10`] | Fig. 10 — execution time vs electronic accelerators |
//! | [`headline`] | Abstract/§5 headline claims |
//!
//! Each module exposes `generate()` (the dataset), `render()` (the text
//! table) and is wrapped by both a binary (`cargo run -p lightator-bench
//! --bin fig8_lenet_power`) and a criterion bench (`cargo bench -p
//! lightator-bench`).
//!
//! [`emit`] writes machine-readable `BENCH_*.json` artifacts (metric name,
//! value, units, seed commit) so the `headline_claims` bin and the
//! `plan_reuse` bench leave a trackable perf trail across PRs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod emit;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod harness;
pub mod headline;
pub mod table1;
