//! Typed requests, their routing keys and the client-side response handle.

use crate::error::Result;
use lightator_core::platform::{ImageKernel, Report, Workload};
use lightator_sensor::frame::RgbFrame;
use std::sync::{Condvar, Mutex};

/// One frame of work for the server, typed by the workload that should
/// serve it. The router dispatches each request to the shard group opened
/// for the matching [`Workload`].
#[derive(Debug, Clone)]
pub enum Request {
    /// Classify the frame with the group's trained model.
    Classify {
        /// The scene in front of the sensor.
        frame: RgbFrame,
    },
    /// Acquire the frame (raw or CA-compressed, per the platform).
    Acquire {
        /// The scene in front of the sensor.
        frame: RgbFrame,
    },
    /// Run a 3×3 image kernel over the acquired frame.
    ImageKernel {
        /// The filter to apply; a group must be registered for this exact
        /// kernel.
        kernel: ImageKernel,
        /// The scene in front of the sensor.
        frame: RgbFrame,
    },
}

impl Request {
    /// Label of the workload this request targets (`classify`, `acquire`,
    /// `kernel:sobel-x`, ...), matching [`Workload::label`].
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Request::Classify { .. } => "classify".to_string(),
            Request::Acquire { .. } => "acquire".to_string(),
            Request::ImageKernel { kernel, .. } => format!("kernel:{}", kernel.name()),
        }
    }

    /// Routing key of this request.
    pub(crate) fn kind(&self) -> RequestKind {
        match self {
            Request::Classify { .. } => RequestKind::Classify,
            Request::Acquire { .. } => RequestKind::Acquire,
            Request::ImageKernel { kernel, .. } => RequestKind::Kernel(*kernel),
        }
    }

    /// The scene to serve, surrendered to the queue.
    pub(crate) fn into_frame(self) -> RgbFrame {
        match self {
            Request::Classify { frame }
            | Request::Acquire { frame }
            | Request::ImageKernel { frame, .. } => frame,
        }
    }
}

/// Routing key connecting requests to the shard group serving the matching
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestKind {
    Classify,
    Acquire,
    Kernel(ImageKernel),
}

impl RequestKind {
    /// The routing key a workload's shard group registers under.
    pub(crate) fn of_workload(workload: &Workload) -> Self {
        match workload {
            Workload::Classify { .. } => RequestKind::Classify,
            Workload::Acquire => RequestKind::Acquire,
            Workload::ImageKernel { kernel } => RequestKind::Kernel(*kernel),
        }
    }
}

/// One-shot rendezvous between the client that submitted a request and the
/// shard that serves it.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    outcome: Mutex<Option<Result<Report>>>,
    done: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Publishes the outcome and wakes the waiting client.
    pub(crate) fn fulfil(&self, outcome: Result<Report>) {
        let mut slot = self.outcome.lock().expect("response slot poisoned");
        *slot = Some(outcome);
        self.done.notify_all();
    }

    /// Blocks until the outcome is published, then takes it.
    pub(crate) fn take(&self) -> Result<Report> {
        let mut slot = self.outcome.lock().expect("response slot poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.done.wait(slot).expect("response slot poisoned");
        }
    }
}

/// Handle to a request admitted into the server's queue.
///
/// The server fulfils every admitted request — also during graceful
/// shutdown, which drains the queue before the workers exit — so
/// [`Pending::wait`] always terminates once the request was admitted.
#[derive(Debug)]
pub struct Pending {
    slot: std::sync::Arc<ResponseSlot>,
}

impl Pending {
    pub(crate) fn new(slot: std::sync::Arc<ResponseSlot>) -> Self {
        Self { slot }
    }

    /// Blocks until the shard group serves the request, returning its
    /// [`Report`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::Core`] if the platform rejected the
    /// frame (e.g. a resolution mismatch).
    pub fn wait(self) -> Result<Report> {
        self.slot.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;

    #[test]
    fn labels_match_the_workload_labels() {
        let frame = RgbFrame::filled(4, 4, [0.5, 0.5, 0.5]).expect("ok");
        assert_eq!(
            Request::Classify {
                frame: frame.clone()
            }
            .label(),
            "classify"
        );
        assert_eq!(
            Request::Acquire {
                frame: frame.clone()
            }
            .label(),
            "acquire"
        );
        let request = Request::ImageKernel {
            kernel: ImageKernel::SobelX,
            frame,
        };
        assert_eq!(request.label(), "kernel:sobel-x");
        assert_eq!(request.kind(), RequestKind::Kernel(ImageKernel::SobelX));
    }

    #[test]
    fn workload_kinds_distinguish_kernels() {
        assert_eq!(
            RequestKind::of_workload(&Workload::Acquire),
            RequestKind::Acquire
        );
        assert_ne!(
            RequestKind::of_workload(&Workload::ImageKernel {
                kernel: ImageKernel::SobelX,
            }),
            RequestKind::of_workload(&Workload::ImageKernel {
                kernel: ImageKernel::SobelY,
            })
        );
    }

    #[test]
    fn response_slot_hands_the_outcome_to_the_waiter() {
        let slot = std::sync::Arc::new(ResponseSlot::new());
        let waiter = {
            let slot = std::sync::Arc::clone(&slot);
            std::thread::spawn(move || slot.take())
        };
        slot.fulfil(Err(ServeError::ShuttingDown));
        assert_eq!(
            waiter.join().expect("no panic"),
            Err(ServeError::ShuttingDown)
        );
    }
}
